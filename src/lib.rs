//! # netsample
//!
//! Umbrella crate for the reproduction of *Application of Sampling
//! Methodologies to Network Traffic Characterization* (K. C. Claffy,
//! G. C. Polyzos, H.-W. Braun, SIGCOMM 1993).
//!
//! This crate re-exports the workspace's five libraries so examples and
//! integration tests can exercise the whole system through one dependency:
//!
//! * [`nettrace`] — packet/trace substrate (records, pcap I/O, histograms,
//!   per-second series, capture-clock models);
//! * [`statkit`] — statistics toolkit (moments, quantiles, χ²/K-S/A-D
//!   tests, boxplots, seeded distributions);
//! * [`netsynth`] — synthetic SDSC/E-NSS workload generation calibrated to
//!   the paper's published population statistics;
//! * [`netstat`] (crate `netstat-sim`) — NSFNET statistics-collection
//!   simulation (ARTS/NNStat objects, SNMP counters, capacity-limited
//!   collectors);
//! * [`sampling`] — the paper's core contribution: the five sampling
//!   methods, the disparity-metric suite (χ², significance, cost, X², φ),
//!   and the replication/sweep experiment framework;
//! * [`obskit`] — the observability layer every crate above reports into:
//!   a global registry of counters/gauges/histograms, wall-clock spans,
//!   Prometheus-style exposition, and optional JSONL event tracing;
//! * [`parkit`] — the scoped-thread worker pool the experiment grids run
//!   on: deterministic slot-indexed merge (parallel ≡ serial, bitwise),
//!   chunk-stealing, panic aggregation.
//!
//! See `DESIGN.md` for the system inventory and the per-experiment index,
//! and `EXPERIMENTS.md` for paper-vs-measured results.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use netstat_sim as netstat;
pub use netsynth;
pub use nettrace;
pub use obskit;
pub use parkit;
pub use perfkit;
pub use sampling;
pub use statkit;

/// Workspace version, for example banners.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
