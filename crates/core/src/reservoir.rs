//! Reservoir sampling: a fixed-size uniform sample over a stream of
//! unknown length.
//!
//! The paper's simple random sampling assumes the population size is
//! known (a replayed trace). An operational monitor does not know how
//! many packets the next interval will carry; reservoir sampling
//! (Vitter's Algorithm R) maintains a uniform `n`-subset of everything
//! seen so far, replacing entries with decreasing probability.
//!
//! Because a selection can later be *evicted*, the reservoir does not
//! implement [`crate::sampler::Sampler`] (whose `offer → bool` contract
//! promises final decisions); the sample is read out at the end of the
//! interval, which matches the 15-minute collect-and-reset cycle of the
//! NSFNET statistics pipeline (paper §2).

use nettrace::PacketRecord;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Fixed-capacity uniform reservoir (Vitter's Algorithm R).
#[derive(Debug)]
pub struct ReservoirSampler {
    capacity: usize,
    seed: u64,
    rng: StdRng,
    seen: u64,
    reservoir: Vec<PacketRecord>,
}

impl ReservoirSampler {
    /// A reservoir holding at most `capacity` packets.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        ReservoirSampler {
            capacity,
            seed,
            rng: StdRng::seed_from_u64(seed),
            seen: 0,
            reservoir: Vec::with_capacity(capacity),
        }
    }

    /// Offer one packet from the stream.
    pub fn offer(&mut self, pkt: &PacketRecord) {
        self.seen += 1;
        if self.reservoir.len() < self.capacity {
            self.reservoir.push(*pkt);
            return;
        }
        // Replace a random slot with probability capacity / seen.
        let j = self.rng.random_range(0..self.seen);
        if (j as usize) < self.capacity {
            self.reservoir[j as usize] = *pkt;
        }
    }

    /// The current sample (uniform over everything offered so far).
    /// Order within the reservoir is not meaningful.
    #[must_use]
    pub fn sample(&self) -> &[PacketRecord] {
        &self.reservoir
    }

    /// Total packets offered.
    #[must_use]
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Report the sample and clear for the next collection interval
    /// (collect-and-reset, like the NSFNET 15-minute cycle).
    pub fn drain(&mut self) -> Vec<PacketRecord> {
        self.seen = 0;
        std::mem::take(&mut self.reservoir)
    }

    /// Full reset including the random stream.
    pub fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
        self.seen = 0;
        self.reservoir.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettrace::Micros;

    fn packets(n: usize) -> Vec<PacketRecord> {
        (0..n)
            .map(|i| PacketRecord::new(Micros(i as u64), (i % 1500) as u16 + 1))
            .collect()
    }

    #[test]
    fn fills_up_then_stays_at_capacity() {
        let pkts = packets(100);
        let mut r = ReservoirSampler::new(10, 1);
        for (i, p) in pkts.iter().enumerate() {
            r.offer(p);
            assert_eq!(r.sample().len(), (i + 1).min(10));
        }
        assert_eq!(r.seen(), 100);
        assert_eq!(r.capacity(), 10);
    }

    #[test]
    fn short_stream_keeps_everything() {
        let pkts = packets(5);
        let mut r = ReservoirSampler::new(10, 2);
        for p in &pkts {
            r.offer(p);
        }
        assert_eq!(r.sample().len(), 5);
        let ts: std::collections::HashSet<u64> =
            r.sample().iter().map(|p| p.timestamp.as_u64()).collect();
        assert_eq!(ts.len(), 5);
    }

    #[test]
    fn inclusion_is_uniform() {
        // Every stream position should end in the reservoir with
        // probability capacity/N.
        let n = 50;
        let cap = 10;
        let trials = 20_000u64;
        let pkts = packets(n);
        let mut counts = vec![0u32; n];
        for seed in 0..trials {
            let mut r = ReservoirSampler::new(cap, seed);
            for p in &pkts {
                r.offer(p);
            }
            for p in r.sample() {
                counts[p.timestamp.as_u64() as usize] += 1;
            }
        }
        let expected = cap as f64 / n as f64;
        for (i, &c) in counts.iter().enumerate() {
            let p = f64::from(c) / trials as f64;
            assert!((p - expected).abs() < 0.02, "position {i}: {p}");
        }
    }

    #[test]
    fn drain_resets_interval() {
        let pkts = packets(30);
        let mut r = ReservoirSampler::new(5, 3);
        for p in &pkts {
            r.offer(p);
        }
        let s1 = r.drain();
        assert_eq!(s1.len(), 5);
        assert_eq!(r.seen(), 0);
        assert!(r.sample().is_empty());
        // Works again after drain.
        for p in &pkts {
            r.offer(p);
        }
        assert_eq!(r.sample().len(), 5);
    }

    #[test]
    fn reset_reproduces() {
        let pkts = packets(200);
        let mut r = ReservoirSampler::new(7, 9);
        for p in &pkts {
            r.offer(p);
        }
        let a: Vec<u64> = r.sample().iter().map(|p| p.timestamp.as_u64()).collect();
        r.reset();
        for p in &pkts {
            r.offer(p);
        }
        let b: Vec<u64> = r.sample().iter().map(|p| p.timestamp.as_u64()).collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = ReservoirSampler::new(0, 0);
    }
}
