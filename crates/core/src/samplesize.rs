//! Cochran's sample-size determination (paper §5.1).
//!
//! For estimating a population mean to within a relative accuracy `r`
//! (in percent) at confidence `100(1−α)%`, the required simple random
//! sample size is
//!
//! ```text
//! n = (100 · z · σ / (r · µ))²
//! ```
//!
//! with `z` the standard-normal quantile for the confidence level. The
//! formula assumes an effectively infinite population; the finite-
//! population correction `n' = n / (1 + n/N)` is also provided.
//!
//! The paper's worked examples (reproduced by tests below and by the
//! `samplesize` bench binary): packet sizes (µ = 232, σ = 236) need
//! n ≈ 1590 at ±5% / 95%, and n ≈ 39 752 at ±1%; interarrival times
//! (µ = 2358, σ = 2734) need n ≈ 2066 and n ≈ 51 644.

use statkit::special::normal_quantile;

/// A sample-size requirement specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleSizeSpec {
    /// Population mean µ.
    pub mean: f64,
    /// Population standard deviation σ.
    pub std_dev: f64,
    /// Desired relative accuracy, in percent (e.g. `5.0` for ±5%).
    pub accuracy_pct: f64,
    /// Confidence level in `(0, 1)` (e.g. `0.95`).
    pub confidence: f64,
}

impl SampleSizeSpec {
    /// The z-value for this spec's confidence level (two-sided).
    #[must_use]
    pub fn z_value(&self) -> f64 {
        normal_quantile(1.0 - (1.0 - self.confidence) / 2.0)
    }
}

/// Required simple-random sample size for estimating the mean
/// (infinite-population formula), rounded up.
///
/// ```
/// use sampling::samplesize::{required_sample_size, SampleSizeSpec};
/// // The paper's §5.1 worked example: packet sizes, ±5% at 95%.
/// let n = required_sample_size(&SampleSizeSpec {
///     mean: 232.0,
///     std_dev: 236.0,
///     accuracy_pct: 5.0,
///     confidence: 0.95,
/// });
/// assert!((1588..=1592).contains(&n)); // paper: 1590
/// ```
///
/// # Panics
/// Panics on nonpositive mean/σ/accuracy or a confidence outside (0, 1).
#[must_use]
pub fn required_sample_size(spec: &SampleSizeSpec) -> u64 {
    assert!(spec.mean > 0.0, "mean must be positive");
    assert!(spec.std_dev > 0.0, "std dev must be positive");
    assert!(spec.accuracy_pct > 0.0, "accuracy must be positive");
    assert!(
        spec.confidence > 0.0 && spec.confidence < 1.0,
        "confidence must be in (0,1)"
    );
    let z = spec.z_value();
    let n = (100.0 * z * spec.std_dev / (spec.accuracy_pct * spec.mean)).powi(2);
    n.ceil() as u64
}

/// Finite-population correction: the sample size needed from a
/// population of `population` members, given the infinite-population
/// requirement.
#[must_use]
pub fn finite_population_correction(n_infinite: u64, population: u64) -> u64 {
    assert!(population > 0, "population must be positive");
    let n = n_infinite as f64;
    let corrected = n / (1.0 + n / population as f64);
    corrected.ceil() as u64
}

/// The sampling fraction implied by a sample size over a population.
#[must_use]
pub fn implied_fraction(sample: u64, population: u64) -> f64 {
    assert!(population > 0, "population must be positive");
    sample as f64 / population as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper §5.1: packet sizes, µ = 232, σ = 236.
    fn size_spec(accuracy: f64) -> SampleSizeSpec {
        SampleSizeSpec {
            mean: 232.0,
            std_dev: 236.0,
            accuracy_pct: accuracy,
            confidence: 0.95,
        }
    }

    /// Paper §5.1: interarrivals, µ = 2358, σ = 2734.
    fn ia_spec(accuracy: f64) -> SampleSizeSpec {
        SampleSizeSpec {
            mean: 2358.0,
            std_dev: 2734.0,
            accuracy_pct: accuracy,
            confidence: 0.95,
        }
    }

    #[test]
    fn z_value_at_95_percent() {
        let z = size_spec(5.0).z_value();
        assert!((z - 1.96).abs() < 0.001, "z = {z}");
    }

    #[test]
    fn paper_packet_size_examples() {
        // The paper reports 1590 at ±5% and 39 752 at ±1% (it used
        // z = 1.96 exactly; we match within a packet either way).
        let n5 = required_sample_size(&size_spec(5.0));
        assert!((1588..=1592).contains(&n5), "n5 = {n5}");
        let n1 = required_sample_size(&size_spec(1.0));
        assert!((39_700..=39_800).contains(&n1), "n1 = {n1}");
    }

    #[test]
    fn paper_interarrival_examples() {
        let n5 = required_sample_size(&ia_spec(5.0));
        assert!((2064..=2068).contains(&n5), "n5 = {n5}");
        let n1 = required_sample_size(&ia_spec(1.0));
        assert!((51_550..=51_700).contains(&n1), "n1 = {n1}");
    }

    #[test]
    fn paper_sampling_fraction_remark() {
        // "1,590 constitutes a sampling fraction of around 0.10%" of the
        // 1.6 million packet population.
        let f = implied_fraction(1590, 1_600_000);
        assert!((f - 0.001).abs() < 1e-4, "fraction {f}");
    }

    #[test]
    fn tighter_accuracy_needs_quadratically_more() {
        let n5 = required_sample_size(&size_spec(5.0)) as f64;
        let n1 = required_sample_size(&size_spec(1.0)) as f64;
        assert!((n1 / n5 - 25.0).abs() < 0.1);
    }

    #[test]
    fn higher_confidence_needs_more() {
        let mut spec = size_spec(5.0);
        let n95 = required_sample_size(&spec);
        spec.confidence = 0.99;
        let n99 = required_sample_size(&spec);
        assert!(n99 > n95);
    }

    #[test]
    fn finite_population_correction_shrinks() {
        let n = required_sample_size(&size_spec(1.0)); // ~39.7k
        let corrected = finite_population_correction(n, 1_600_000);
        assert!(corrected < n);
        assert!(corrected > n * 9 / 10); // small correction for 1.6M pop
                                         // Tiny population: correction dominates.
        let tiny = finite_population_correction(n, 1000);
        assert!(tiny <= 1000);
    }

    #[test]
    #[should_panic(expected = "confidence must be in (0,1)")]
    fn bad_confidence_panics() {
        let mut s = size_spec(5.0);
        s.confidence = 1.0;
        let _ = required_sample_size(&s);
    }

    #[test]
    #[should_panic(expected = "accuracy must be positive")]
    fn bad_accuracy_panics() {
        let _ = required_sample_size(&size_spec(0.0));
    }
}
