//! The replication/sweep experiment framework (paper §6–7).
//!
//! An [`Experiment`] fixes a population window and a characterization
//! target, precomputes the population's binned distribution, and then
//! scores replicated runs of any sampling method against it with the φ
//! metric suite. "We ran five replications for each method to avoid
//! misleading outlying samples" (§7); systematic replications vary the
//! starting offset, randomized replications vary the seed.
//!
//! The free functions [`granularity_sweep`] and [`interval_sweep`]
//! produce the two figure families of the paper: φ versus sampling
//! fraction (Figures 6–9) and φ versus interval length (Figures 10–11).
//!
//! ## Parallel execution
//!
//! Every replication is a pure function of `(method, replication index,
//! base seed)` against the precomputed population histogram, so cells
//! are embarrassingly parallel. The `_with` variants ([`Experiment::run_with`],
//! [`Experiment::run_grid_with`], [`granularity_sweep_with`],
//! [`interval_sweep_with`]) take a [`parkit::Pool`] and fan the
//! flattened (cell × replication) task list across its workers; results
//! land in slot vectors by task index, so **parallel output is
//! bit-identical to serial** regardless of worker count or scheduling.
//! The plain entry points delegate to [`parkit::Pool::with_default_jobs`]
//! (the `--jobs` flag / `NETSAMPLE_JOBS`).

use crate::metrics::{disparity, DisparityReport};
use crate::sampler::{select_indices_ts, MethodSpec};
use crate::targets::Target;
use nettrace::{Histogram, Micros, PacketRecord, Trace};
use parkit::Pool;
use statkit::Boxplot;

/// A family of sampling methods parameterized by granularity, used for
/// sweeps where every method is run at the same sampling fraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodFamily {
    /// Every k-th packet.
    Systematic,
    /// One random pick per k-packet bucket.
    StratifiedRandom,
    /// Uniform n-of-N with n = N/k.
    SimpleRandom,
    /// Timer-driven systematic at the rate-equivalent period.
    SystematicTimer,
    /// Timer-driven stratified at the rate-equivalent period.
    StratifiedTimer,
    /// i.i.d. 1-in-k via geometric skips (extension).
    GeometricSkip,
}

impl MethodFamily {
    /// The paper's five families, in its order of presentation.
    #[must_use]
    pub fn paper_five() -> [MethodFamily; 5] {
        [
            MethodFamily::Systematic,
            MethodFamily::StratifiedRandom,
            MethodFamily::SimpleRandom,
            MethodFamily::SystematicTimer,
            MethodFamily::StratifiedTimer,
        ]
    }

    /// The concrete method at packet granularity `k`, with timer periods
    /// chosen so the *expected* sampling fraction matches (`k / mean_pps`
    /// seconds per selection).
    ///
    /// # Panics
    /// Panics if `k` is zero or `mean_pps` is nonpositive.
    #[must_use]
    pub fn at_granularity(&self, k: usize, mean_pps: f64) -> MethodSpec {
        assert!(k > 0, "granularity must be positive");
        assert!(mean_pps > 0.0, "mean packet rate must be positive");
        let period = Micros(((k as f64 / mean_pps) * 1e6).round().max(1.0) as u64);
        match self {
            MethodFamily::Systematic => MethodSpec::Systematic { interval: k },
            MethodFamily::StratifiedRandom => MethodSpec::StratifiedRandom { bucket: k },
            MethodFamily::SimpleRandom => MethodSpec::SimpleRandom {
                fraction: 1.0 / k as f64,
            },
            MethodFamily::SystematicTimer => MethodSpec::SystematicTimer { period },
            MethodFamily::StratifiedTimer => MethodSpec::StratifiedTimer { period },
            MethodFamily::GeometricSkip => MethodSpec::GeometricSkip { mean_interval: k },
        }
    }

    /// Short display name matching the paper's figure legends.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            MethodFamily::Systematic => "systematic",
            MethodFamily::StratifiedRandom => "stratified",
            MethodFamily::SimpleRandom => "random",
            MethodFamily::SystematicTimer => "sys-timer",
            MethodFamily::StratifiedTimer => "strat-timer",
            MethodFamily::GeometricSkip => "geometric",
        }
    }

    /// Whether the family is timer-triggered.
    #[must_use]
    pub fn is_timer_driven(&self) -> bool {
        matches!(
            self,
            MethodFamily::SystematicTimer | MethodFamily::StratifiedTimer
        )
    }

    /// The effective replication count at granularity `k`: a systematic
    /// sample has only `k` distinct starting offsets, so requesting more
    /// replications than that would just repeat samples.
    #[must_use]
    pub fn replication_cap(&self, k: usize, replications: u32) -> u32 {
        if *self == MethodFamily::Systematic {
            replications.min(k as u32)
        } else {
            replications
        }
    }
}

/// One scored replication.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Replication {
    /// Replication index.
    pub replication: u64,
    /// Full disparity metric suite for this sample.
    pub report: DisparityReport,
}

/// All replications of one method on one window/target.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentResult {
    /// The method that was run.
    pub method: MethodSpec,
    /// The characterization target.
    pub target: Target,
    /// Scored replications (empty samples are counted separately).
    pub replications: Vec<Replication>,
    /// Replications whose sample was empty (unscorable).
    pub empty_samples: u32,
}

impl ExperimentResult {
    /// The φ score of each scored replication.
    #[must_use]
    pub fn phi_values(&self) -> Vec<f64> {
        self.replications.iter().map(|r| r.report.phi).collect()
    }

    /// Mean φ across replications; `None` if none were scorable.
    #[must_use]
    pub fn mean_phi(&self) -> Option<f64> {
        if self.replications.is_empty() {
            return None;
        }
        Some(self.phi_values().iter().sum::<f64>() / self.replications.len() as f64)
    }

    /// Boxplot of the φ scores (Figure 6's presentation); `None` if no
    /// replication was scorable.
    #[must_use]
    pub fn phi_boxplot(&self) -> Option<Boxplot> {
        let v = self.phi_values();
        if v.is_empty() {
            None
        } else {
            Some(Boxplot::from_data(&v))
        }
    }

    /// Mean sample size across scored replications.
    #[must_use]
    pub fn mean_sample_size(&self) -> Option<f64> {
        if self.replications.is_empty() {
            return None;
        }
        Some(
            self.replications
                .iter()
                .map(|r| r.report.sample_size as f64)
                .sum::<f64>()
                / self.replications.len() as f64,
        )
    }

    /// How many scored replications reject the population hypothesis at
    /// `alpha` under the χ² test (the paper's §6 experiment).
    #[must_use]
    pub fn rejections_at(&self, alpha: f64) -> usize {
        self.replications
            .iter()
            .filter(|r| r.report.rejects_at(alpha))
            .count()
    }
}

/// Sentinel bin code for "this packet contributes no observation" (the
/// first packet of an interarrival window has no population gap).
const NO_BIN: u32 = u32::MAX;

/// A fixed population window + target, ready to score methods.
///
/// Construction projects the window into flat columns — timestamp, bin
/// index, bin weight — once. Each replication then runs entirely over
/// those columns: batch selection on the timestamp column, then a flat
/// `counts[bin[i]] += weight[i]` accumulation. The per-row
/// `Target::value`/`BinSpec::bin_index` work is paid once per window
/// instead of once per (replication × packet), and the result is
/// bit-identical to binning `PacketRecord`s one at a time.
#[derive(Debug, Clone)]
pub struct Experiment<'a> {
    packets: &'a [PacketRecord],
    target: Target,
    population: Histogram,
    window_start: Micros,
    /// Timestamp column (µs), driving batch selection.
    ts: Vec<u64>,
    /// Precomputed bin index per packet; [`NO_BIN`] when the packet
    /// contributes no observation to this target.
    bin: Vec<u32>,
    /// Precomputed bin weight per packet (1 for count targets, bytes for
    /// volume targets; 0 when the bin is [`NO_BIN`]).
    weight: Vec<u64>,
}

impl<'a> Experiment<'a> {
    /// Set up over a packet window.
    ///
    /// # Panics
    /// Panics if the window is empty: an experiment needs a parent
    /// population.
    #[must_use]
    pub fn new(packets: &'a [PacketRecord], target: Target) -> Self {
        assert!(!packets.is_empty(), "experiment needs a nonempty window");
        let population = target.population_histogram(packets);
        let spec = target.bins();
        let mut ts = Vec::with_capacity(packets.len());
        let mut bin = Vec::with_capacity(packets.len());
        let mut weight = Vec::with_capacity(packets.len());
        let mut prev_ts: Option<u64> = None;
        for p in packets {
            let t = p.timestamp.as_u64();
            let gap = prev_ts.map(|q| t.saturating_sub(q));
            prev_ts = Some(t);
            ts.push(t);
            match target.value(p, gap) {
                Some(v) => {
                    bin.push(spec.bin_index(v) as u32);
                    weight.push(target.weight(p));
                }
                None => {
                    bin.push(NO_BIN);
                    weight.push(0);
                }
            }
        }
        Experiment {
            packets,
            target,
            population,
            window_start: packets[0].timestamp,
            ts,
            bin,
            weight,
        }
    }

    /// Set up over a trace's `[from, to)` window.
    ///
    /// # Panics
    /// Panics if the window holds no packets.
    #[must_use]
    pub fn over_window(trace: &'a Trace, from: Micros, to: Micros, target: Target) -> Self {
        Self::new(trace.window(from, to), target)
    }

    /// The window's packet count (population size `N`).
    #[must_use]
    pub fn population_len(&self) -> usize {
        self.packets.len()
    }

    /// The window's mean packet rate, packets/second (used to convert
    /// packet granularities into rate-equivalent timer periods).
    #[must_use]
    pub fn mean_pps(&self) -> f64 {
        let dur = self
            .packets
            .last()
            .expect("nonempty")
            .timestamp
            .saturating_sub(self.window_start)
            .as_secs_f64();
        if dur > 0.0 {
            self.packets.len() as f64 / dur
        } else {
            self.packets.len() as f64
        }
    }

    /// The precomputed population histogram.
    #[must_use]
    pub fn population_histogram(&self) -> &Histogram {
        &self.population
    }

    /// One replication: build the sampler for `(rep, seed)`, select over
    /// the timestamp column, accumulate the precomputed bin/weight
    /// columns, score. Pure in its arguments plus the experiment's
    /// precomputed state — the unit of work the pool schedules.
    ///
    /// Equivalent (bit for bit) to the per-packet
    /// `select_indices` + `Target::sample_histogram` pipeline: batch
    /// selection preserves each sampler's decision and RNG schedule, and
    /// the column accumulation replays exactly the
    /// `observe_weighted(value, weight)` calls the pull path makes.
    fn replicate(&self, method: MethodSpec, rep: u64, seed: u64) -> Option<Replication> {
        let mut sampler = method.build(self.packets.len(), self.window_start, rep, seed);
        let selected = select_indices_ts(sampler.as_mut(), &self.ts);
        let mut counts = vec![0u64; self.population.spec().bin_count()];
        for &i in &selected {
            let b = self.bin[i];
            if b != NO_BIN {
                counts[b as usize] += self.weight[i];
            }
        }
        let sample = Histogram::from_bin_counts(self.population.spec().clone(), counts);
        disparity(&self.population, &sample).map(|report| Replication {
            replication: rep,
            report,
        })
    }

    /// Score one concrete method over `replications` runs on the
    /// session-default pool (`--jobs` / `NETSAMPLE_JOBS`).
    pub fn run(&self, method: MethodSpec, replications: u32, seed: u64) -> ExperimentResult {
        self.run_with(&Pool::with_default_jobs(), method, replications, seed)
    }

    /// Score one concrete method over `replications` runs on `pool`.
    ///
    /// Replications are independent tasks; their outputs are reassembled
    /// in replication order, so the result is bit-identical to a serial
    /// run for any pool width.
    ///
    /// # Panics
    /// Propagates a panic if any replication panicked on a worker.
    pub fn run_with(
        &self,
        pool: &Pool,
        method: MethodSpec,
        replications: u32,
        seed: u64,
    ) -> ExperimentResult {
        let method_label = method.to_string();
        let target_label = self.target.to_string();
        let _cell = obskit::span_labeled(
            "experiment_cell",
            &[("method", &method_label), ("target", &target_label)],
        );
        let scored = pool
            .run(replications as usize, |rep| {
                self.replicate(method, rep as u64, seed)
            })
            .unwrap_or_else(|e| panic!("experiment pool failed: {e}"));
        let mut result = ExperimentResult {
            method,
            target: self.target,
            replications: Vec::with_capacity(replications as usize),
            empty_samples: 0,
        };
        for r in scored {
            match r {
                Some(rep) => result.replications.push(rep),
                None => result.empty_samples += 1,
            }
        }
        if obskit::recording_enabled() {
            obskit::counter("experiment_cells_total").inc();
            obskit::counter("experiment_replications_total").add(u64::from(replications));
            obskit::counter("experiment_empty_samples_total").add(u64::from(result.empty_samples));
        }
        result
    }

    /// Score a method family at packet granularity `k` (timer periods
    /// rate-equivalent for this window) on the session-default pool.
    pub fn run_family(
        &self,
        family: MethodFamily,
        k: usize,
        replications: u32,
        seed: u64,
    ) -> ExperimentResult {
        self.run_family_with(&Pool::with_default_jobs(), family, k, replications, seed)
    }

    /// Score a method family at packet granularity `k` on `pool`.
    pub fn run_family_with(
        &self,
        pool: &Pool,
        family: MethodFamily,
        k: usize,
        replications: u32,
        seed: u64,
    ) -> ExperimentResult {
        let reps = family.replication_cap(k, replications);
        self.run_with(pool, family.at_granularity(k, self.mean_pps()), reps, seed)
    }

    /// Score a whole grid of `(family, granularity)` cells on `pool`,
    /// flattening every `(cell, replication)` pair into one task list so
    /// parallelism spans the grid, not just a single cell's replications.
    ///
    /// Results come back in `cells` order, each cell's replications in
    /// replication order — bit-identical to running the cells serially.
    ///
    /// # Panics
    /// Propagates a panic if any replication panicked on a worker.
    pub fn run_grid_with(
        &self,
        pool: &Pool,
        cells: &[(MethodFamily, usize)],
        replications: u32,
        seed: u64,
    ) -> Vec<ExperimentResult> {
        let _grid = obskit::span("experiment_grid");
        let mean_pps = self.mean_pps();
        let specs: Vec<(MethodSpec, u32)> = cells
            .iter()
            .map(|&(family, k)| {
                (
                    family.at_granularity(k, mean_pps),
                    family.replication_cap(k, replications),
                )
            })
            .collect();
        let tasks: Vec<(usize, u64)> = specs
            .iter()
            .enumerate()
            .flat_map(|(ci, &(_, reps))| (0..u64::from(reps)).map(move |rep| (ci, rep)))
            .collect();
        let scored = pool
            .run(tasks.len(), |i| {
                let (ci, rep) = tasks[i];
                self.replicate(specs[ci].0, rep, seed)
            })
            .unwrap_or_else(|e| panic!("experiment pool failed: {e}"));
        let mut out: Vec<ExperimentResult> = specs
            .iter()
            .map(|&(method, reps)| ExperimentResult {
                method,
                target: self.target,
                replications: Vec::with_capacity(reps as usize),
                empty_samples: 0,
            })
            .collect();
        for (&(ci, _), r) in tasks.iter().zip(scored) {
            match r {
                Some(rep) => out[ci].replications.push(rep),
                None => out[ci].empty_samples += 1,
            }
        }
        if obskit::recording_enabled() {
            obskit::counter("experiment_cells_total").add(specs.len() as u64);
            obskit::counter("experiment_replications_total")
                .add(specs.iter().map(|&(_, r)| u64::from(r)).sum());
            obskit::counter("experiment_empty_samples_total")
                .add(out.iter().map(|r| u64::from(r.empty_samples)).sum());
        }
        out
    }
}

/// φ versus sampling granularity: run `family` at each granularity in
/// `ks` over the window, `replications` runs each (Figures 6–9), on the
/// session-default pool.
pub fn granularity_sweep(
    packets: &[PacketRecord],
    target: Target,
    family: MethodFamily,
    ks: &[usize],
    replications: u32,
    seed: u64,
) -> Vec<(usize, ExperimentResult)> {
    granularity_sweep_with(
        &Pool::with_default_jobs(),
        packets,
        target,
        family,
        ks,
        replications,
        seed,
    )
}

/// [`granularity_sweep`] on an explicit pool: the whole `ks × replications`
/// grid is one flattened task list, reassembled in `ks` order.
#[allow(clippy::too_many_arguments)] // a sweep is inherently a full parameter tuple
pub fn granularity_sweep_with(
    pool: &Pool,
    packets: &[PacketRecord],
    target: Target,
    family: MethodFamily,
    ks: &[usize],
    replications: u32,
    seed: u64,
) -> Vec<(usize, ExperimentResult)> {
    let exp = Experiment::new(packets, target);
    let cells: Vec<(MethodFamily, usize)> = ks.iter().map(|&k| (family, k)).collect();
    ks.iter()
        .copied()
        .zip(exp.run_grid_with(pool, &cells, replications, seed))
        .collect()
}

/// φ versus interval length: run `family` at fixed granularity `k` over
/// each window `[start, start + len)` for the lengths given
/// (Figures 10–11), on the session-default pool.
#[allow(clippy::too_many_arguments)] // a sweep is inherently a full parameter tuple
pub fn interval_sweep(
    trace: &Trace,
    target: Target,
    family: MethodFamily,
    k: usize,
    start: Micros,
    lengths: &[Micros],
    replications: u32,
    seed: u64,
) -> Vec<(Micros, Option<ExperimentResult>)> {
    interval_sweep_with(
        &Pool::with_default_jobs(),
        trace,
        target,
        family,
        k,
        start,
        lengths,
        replications,
        seed,
    )
}

/// [`interval_sweep`] on an explicit pool.
///
/// Windows and their population histograms are precomputed serially, in
/// `lengths` order; only the replications fan out, flattened across all
/// nonempty windows, so results are bit-identical to a serial sweep.
///
/// # Panics
/// Propagates a panic if any replication panicked on a worker.
#[allow(clippy::too_many_arguments)] // a sweep is inherently a full parameter tuple
pub fn interval_sweep_with(
    pool: &Pool,
    trace: &Trace,
    target: Target,
    family: MethodFamily,
    k: usize,
    start: Micros,
    lengths: &[Micros],
    replications: u32,
    seed: u64,
) -> Vec<(Micros, Option<ExperimentResult>)> {
    let _grid = obskit::span("experiment_grid");
    let exps: Vec<(Micros, Option<Experiment>)> = lengths
        .iter()
        .map(|&len| {
            let window = trace.window(start, start + len);
            if window.is_empty() {
                (len, None)
            } else {
                (len, Some(Experiment::new(window, target)))
            }
        })
        .collect();
    let reps = family.replication_cap(k, replications);
    // Timer periods are rate-equivalent *per window*, so specs differ
    // across windows of the same sweep.
    let specs: Vec<Option<MethodSpec>> = exps
        .iter()
        .map(|(_, e)| e.as_ref().map(|e| family.at_granularity(k, e.mean_pps())))
        .collect();
    let tasks: Vec<(usize, u64)> = exps
        .iter()
        .enumerate()
        .filter(|(_, (_, e))| e.is_some())
        .flat_map(|(wi, _)| (0..u64::from(reps)).map(move |rep| (wi, rep)))
        .collect();
    let scored = pool
        .run(tasks.len(), |i| {
            let (wi, rep) = tasks[i];
            let exp = exps[wi]
                .1
                .as_ref()
                .expect("tasks only cover nonempty windows");
            exp.replicate(
                specs[wi].expect("spec exists for nonempty window"),
                rep,
                seed,
            )
        })
        .unwrap_or_else(|e| panic!("experiment pool failed: {e}"));
    let mut out: Vec<(Micros, Option<ExperimentResult>)> = exps
        .iter()
        .zip(&specs)
        .map(|((len, e), spec)| {
            (
                *len,
                e.as_ref().map(|_| ExperimentResult {
                    method: spec.expect("spec exists for nonempty window"),
                    target,
                    replications: Vec::with_capacity(reps as usize),
                    empty_samples: 0,
                }),
            )
        })
        .collect();
    for (&(wi, _), r) in tasks.iter().zip(scored) {
        let cell = out[wi]
            .1
            .as_mut()
            .expect("tasks only cover nonempty windows");
        match r {
            Some(rep) => cell.replications.push(rep),
            None => cell.empty_samples += 1,
        }
    }
    if obskit::recording_enabled() {
        let cells = out.iter().filter(|(_, r)| r.is_some()).count() as u64;
        obskit::counter("experiment_cells_total").add(cells);
        obskit::counter("experiment_replications_total").add(cells * u64::from(reps));
        obskit::counter("experiment_empty_samples_total").add(
            out.iter()
                .filter_map(|(_, r)| r.as_ref().map(|r| u64::from(r.empty_samples)))
                .sum(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettrace::PacketRecord;

    /// A deterministic bimodal window: sizes alternate irregularly, gaps
    /// vary.
    fn window(n: usize) -> Vec<PacketRecord> {
        let mut t = 0u64;
        (0..n)
            .map(|i| {
                t += 400 + (i as u64 * 179) % 4400;
                let size = if (i * 7919) % 10 < 4 { 40 } else { 552 };
                PacketRecord::new(Micros(t), size)
            })
            .collect()
    }

    #[test]
    fn full_sampling_scores_zero_phi() {
        let w = window(5000);
        let exp = Experiment::new(&w, Target::PacketSize);
        let r = exp.run(MethodSpec::Systematic { interval: 1 }, 1, 0);
        assert_eq!(r.replications.len(), 1);
        assert_eq!(r.replications[0].report.phi, 0.0);
    }

    #[test]
    fn phi_grows_with_granularity() {
        let w = window(20_000);
        let sweep = granularity_sweep(
            &w,
            Target::PacketSize,
            MethodFamily::StratifiedRandom,
            &[4, 64, 1024],
            10,
            42,
        );
        let phis: Vec<f64> = sweep
            .iter()
            .map(|(_, r)| r.mean_phi().expect("scorable"))
            .collect();
        assert!(
            phis[0] < phis[1] && phis[1] < phis[2],
            "phi not monotone: {phis:?}"
        );
    }

    #[test]
    fn systematic_replications_capped_at_k() {
        let w = window(1000);
        let exp = Experiment::new(&w, Target::PacketSize);
        let r = exp.run_family(MethodFamily::Systematic, 3, 50, 0);
        assert_eq!(r.replications.len(), 3);
    }

    #[test]
    fn replication_variance_grows_with_granularity() {
        let w = window(20_000);
        let exp = Experiment::new(&w, Target::PacketSize);
        let fine = exp.run_family(MethodFamily::SimpleRandom, 8, 20, 1);
        let coarse = exp.run_family(MethodFamily::SimpleRandom, 512, 20, 1);
        let var = |r: &ExperimentResult| {
            let b = r.phi_boxplot().unwrap();
            b.iqr()
        };
        assert!(
            var(&coarse) > var(&fine),
            "IQR fine {} coarse {}",
            var(&fine),
            var(&coarse)
        );
    }

    #[test]
    fn empty_samples_are_counted_not_scored() {
        let w = window(10);
        let exp = Experiment::new(&w, Target::PacketSize);
        // Granularity far above the population: offset 0 still catches
        // packet 0 (scored); later offsets catch nothing.
        let r = exp.run(MethodSpec::Systematic { interval: 1000 }, 1, 0);
        assert_eq!(r.replications.len(), 1);
        let r2 = exp.run(
            MethodSpec::SystematicTimer {
                period: Micros(1 << 40),
            },
            1,
            0,
        );
        // Timer anchored at first packet fires immediately -> selects
        // packet 0; the subsequent schedule never fires again.
        assert!(r2.replications.len() + r2.empty_samples as usize == 1);
    }

    #[test]
    fn interval_sweep_improves_with_length() {
        let w = window(50_000);
        let trace = Trace::new(w).unwrap();
        let dur = trace.duration();
        let lengths = [
            Micros(dur.as_u64() / 64),
            Micros(dur.as_u64() / 8),
            Micros(dur.as_u64()),
        ];
        let sweep = interval_sweep(
            &trace,
            Target::PacketSize,
            MethodFamily::StratifiedRandom,
            64,
            Micros(0),
            &lengths,
            10,
            7,
        );
        let phis: Vec<f64> = sweep
            .iter()
            .map(|(_, r)| r.as_ref().unwrap().mean_phi().unwrap())
            .collect();
        assert!(
            phis[2] < phis[0],
            "longer interval should score better: {phis:?}"
        );
    }

    #[test]
    fn deterministic_experiments() {
        let w = window(5000);
        let exp = Experiment::new(&w, Target::Interarrival);
        for family in MethodFamily::paper_five() {
            let a = exp.run_family(family, 16, 5, 99);
            let b = exp.run_family(family, 16, 5, 99);
            assert_eq!(a, b, "{}", family.name());
        }
    }

    #[test]
    fn family_names_and_flags() {
        assert_eq!(MethodFamily::paper_five().len(), 5);
        assert_eq!(
            MethodFamily::paper_five()
                .iter()
                .filter(|f| f.is_timer_driven())
                .count(),
            2
        );
        assert_eq!(MethodFamily::Systematic.name(), "systematic");
    }

    #[test]
    fn mean_pps_is_sane() {
        let w = window(1000);
        let exp = Experiment::new(&w, Target::PacketSize);
        // Mean gap ~ 400 + avg(i*179 % 4400) ~ 2600us -> ~385 pps.
        let pps = exp.mean_pps();
        assert!(pps > 200.0 && pps < 800.0, "pps {pps}");
    }

    #[test]
    #[should_panic(expected = "nonempty window")]
    fn empty_window_panics() {
        let _ = Experiment::new(&[], Target::PacketSize);
    }

    /// A window with protocol/port variety so the categorical targets
    /// exercise more than one bin.
    fn varied_window(n: usize) -> Vec<PacketRecord> {
        use nettrace::Protocol;
        window(n)
            .into_iter()
            .enumerate()
            .map(|(i, p)| {
                let proto = match i % 5 {
                    0 | 1 => Protocol::Tcp,
                    2 => Protocol::Udp,
                    3 => Protocol::Icmp,
                    _ => Protocol::Other(89),
                };
                let dst = [20, 23, 25, 53, 119, 8080][i % 6];
                p.with_protocol(proto).with_ports(1024, dst)
            })
            .collect()
    }

    /// The columnar replicate must reproduce, bit for bit, the original
    /// per-packet pipeline (`select_indices` over `PacketRecord`s, then
    /// `Target::sample_histogram`) for every family × target.
    #[test]
    fn columnar_replicate_matches_pull_path() {
        let w = varied_window(4000);
        let families = [
            MethodFamily::Systematic,
            MethodFamily::StratifiedRandom,
            MethodFamily::SimpleRandom,
            MethodFamily::SystematicTimer,
            MethodFamily::StratifiedTimer,
            MethodFamily::GeometricSkip,
        ];
        for target in Target::all_extended() {
            let exp = Experiment::new(&w, target);
            for family in families {
                let spec = family.at_granularity(13, exp.mean_pps());
                for rep in 0..3u64 {
                    let mut sampler = spec.build(w.len(), w[0].timestamp, rep, 77);
                    let selected = crate::sampler::select_indices(sampler.as_mut(), &w);
                    let sample = target.sample_histogram(&w, &selected);
                    let reference = disparity(&exp.population, &sample).map(|report| Replication {
                        replication: rep,
                        report,
                    });
                    assert_eq!(
                        exp.replicate(spec, rep, 77),
                        reference,
                        "{} / {target} / rep {rep}",
                        family.name()
                    );
                }
            }
        }
    }

    /// φ output is bit-identical across pool widths: batch selection and
    /// column binning change nothing about per-replication results, and
    /// the pool reassembles by task index.
    #[test]
    fn results_are_bit_identical_across_jobs() {
        let w = window(5000);
        for target in [Target::PacketSize, Target::Interarrival] {
            let exp = Experiment::new(&w, target);
            for family in MethodFamily::paper_five() {
                let spec = family.at_granularity(16, exp.mean_pps());
                let serial = exp.run_with(&Pool::new(1), spec, 10, 1993);
                for jobs in [4, 8] {
                    assert_eq!(
                        serial,
                        exp.run_with(&Pool::new(jobs), spec, 10, 1993),
                        "{} / {target} @ {jobs} jobs",
                        family.name()
                    );
                }
            }
        }
    }
}
