//! The replication/sweep experiment framework (paper §6–7).
//!
//! An [`Experiment`] fixes a population window and a characterization
//! target, precomputes the population's binned distribution, and then
//! scores replicated runs of any sampling method against it with the φ
//! metric suite. "We ran five replications for each method to avoid
//! misleading outlying samples" (§7); systematic replications vary the
//! starting offset, randomized replications vary the seed.
//!
//! The free functions [`granularity_sweep`] and [`interval_sweep`]
//! produce the two figure families of the paper: φ versus sampling
//! fraction (Figures 6–9) and φ versus interval length (Figures 10–11).

use crate::metrics::{disparity, DisparityReport};
use crate::sampler::{select_indices, MethodSpec};
use crate::targets::Target;
use nettrace::{Histogram, Micros, PacketRecord, Trace};
use statkit::Boxplot;

/// A family of sampling methods parameterized by granularity, used for
/// sweeps where every method is run at the same sampling fraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodFamily {
    /// Every k-th packet.
    Systematic,
    /// One random pick per k-packet bucket.
    StratifiedRandom,
    /// Uniform n-of-N with n = N/k.
    SimpleRandom,
    /// Timer-driven systematic at the rate-equivalent period.
    SystematicTimer,
    /// Timer-driven stratified at the rate-equivalent period.
    StratifiedTimer,
    /// i.i.d. 1-in-k via geometric skips (extension).
    GeometricSkip,
}

impl MethodFamily {
    /// The paper's five families, in its order of presentation.
    #[must_use]
    pub fn paper_five() -> [MethodFamily; 5] {
        [
            MethodFamily::Systematic,
            MethodFamily::StratifiedRandom,
            MethodFamily::SimpleRandom,
            MethodFamily::SystematicTimer,
            MethodFamily::StratifiedTimer,
        ]
    }

    /// The concrete method at packet granularity `k`, with timer periods
    /// chosen so the *expected* sampling fraction matches (`k / mean_pps`
    /// seconds per selection).
    ///
    /// # Panics
    /// Panics if `k` is zero or `mean_pps` is nonpositive.
    #[must_use]
    pub fn at_granularity(&self, k: usize, mean_pps: f64) -> MethodSpec {
        assert!(k > 0, "granularity must be positive");
        assert!(mean_pps > 0.0, "mean packet rate must be positive");
        let period = Micros(((k as f64 / mean_pps) * 1e6).round().max(1.0) as u64);
        match self {
            MethodFamily::Systematic => MethodSpec::Systematic { interval: k },
            MethodFamily::StratifiedRandom => MethodSpec::StratifiedRandom { bucket: k },
            MethodFamily::SimpleRandom => MethodSpec::SimpleRandom {
                fraction: 1.0 / k as f64,
            },
            MethodFamily::SystematicTimer => MethodSpec::SystematicTimer { period },
            MethodFamily::StratifiedTimer => MethodSpec::StratifiedTimer { period },
            MethodFamily::GeometricSkip => MethodSpec::GeometricSkip { mean_interval: k },
        }
    }

    /// Short display name matching the paper's figure legends.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            MethodFamily::Systematic => "systematic",
            MethodFamily::StratifiedRandom => "stratified",
            MethodFamily::SimpleRandom => "random",
            MethodFamily::SystematicTimer => "sys-timer",
            MethodFamily::StratifiedTimer => "strat-timer",
            MethodFamily::GeometricSkip => "geometric",
        }
    }

    /// Whether the family is timer-triggered.
    #[must_use]
    pub fn is_timer_driven(&self) -> bool {
        matches!(
            self,
            MethodFamily::SystematicTimer | MethodFamily::StratifiedTimer
        )
    }
}

/// One scored replication.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Replication {
    /// Replication index.
    pub replication: u64,
    /// Full disparity metric suite for this sample.
    pub report: DisparityReport,
}

/// All replications of one method on one window/target.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentResult {
    /// The method that was run.
    pub method: MethodSpec,
    /// The characterization target.
    pub target: Target,
    /// Scored replications (empty samples are counted separately).
    pub replications: Vec<Replication>,
    /// Replications whose sample was empty (unscorable).
    pub empty_samples: u32,
}

impl ExperimentResult {
    /// The φ score of each scored replication.
    #[must_use]
    pub fn phi_values(&self) -> Vec<f64> {
        self.replications.iter().map(|r| r.report.phi).collect()
    }

    /// Mean φ across replications; `None` if none were scorable.
    #[must_use]
    pub fn mean_phi(&self) -> Option<f64> {
        if self.replications.is_empty() {
            return None;
        }
        Some(self.phi_values().iter().sum::<f64>() / self.replications.len() as f64)
    }

    /// Boxplot of the φ scores (Figure 6's presentation); `None` if no
    /// replication was scorable.
    #[must_use]
    pub fn phi_boxplot(&self) -> Option<Boxplot> {
        let v = self.phi_values();
        if v.is_empty() {
            None
        } else {
            Some(Boxplot::from_data(&v))
        }
    }

    /// Mean sample size across scored replications.
    #[must_use]
    pub fn mean_sample_size(&self) -> Option<f64> {
        if self.replications.is_empty() {
            return None;
        }
        Some(
            self.replications
                .iter()
                .map(|r| r.report.sample_size as f64)
                .sum::<f64>()
                / self.replications.len() as f64,
        )
    }

    /// How many scored replications reject the population hypothesis at
    /// `alpha` under the χ² test (the paper's §6 experiment).
    #[must_use]
    pub fn rejections_at(&self, alpha: f64) -> usize {
        self.replications
            .iter()
            .filter(|r| r.report.rejects_at(alpha))
            .count()
    }
}

/// A fixed population window + target, ready to score methods.
#[derive(Debug, Clone)]
pub struct Experiment<'a> {
    packets: &'a [PacketRecord],
    target: Target,
    population: Histogram,
    window_start: Micros,
}

impl<'a> Experiment<'a> {
    /// Set up over a packet window.
    ///
    /// # Panics
    /// Panics if the window is empty: an experiment needs a parent
    /// population.
    #[must_use]
    pub fn new(packets: &'a [PacketRecord], target: Target) -> Self {
        assert!(!packets.is_empty(), "experiment needs a nonempty window");
        let population = target.population_histogram(packets);
        Experiment {
            packets,
            target,
            population,
            window_start: packets[0].timestamp,
        }
    }

    /// Set up over a trace's `[from, to)` window.
    ///
    /// # Panics
    /// Panics if the window holds no packets.
    #[must_use]
    pub fn over_window(trace: &'a Trace, from: Micros, to: Micros, target: Target) -> Self {
        Self::new(trace.window(from, to), target)
    }

    /// The window's packet count (population size `N`).
    #[must_use]
    pub fn population_len(&self) -> usize {
        self.packets.len()
    }

    /// The window's mean packet rate, packets/second (used to convert
    /// packet granularities into rate-equivalent timer periods).
    #[must_use]
    pub fn mean_pps(&self) -> f64 {
        let dur = self
            .packets
            .last()
            .expect("nonempty")
            .timestamp
            .saturating_sub(self.window_start)
            .as_secs_f64();
        if dur > 0.0 {
            self.packets.len() as f64 / dur
        } else {
            self.packets.len() as f64
        }
    }

    /// The precomputed population histogram.
    #[must_use]
    pub fn population_histogram(&self) -> &Histogram {
        &self.population
    }

    /// Score one concrete method over `replications` runs.
    pub fn run(&self, method: MethodSpec, replications: u32, seed: u64) -> ExperimentResult {
        let method_label = method.to_string();
        let target_label = self.target.to_string();
        let _cell = obskit::span_labeled(
            "experiment_cell",
            &[("method", &method_label), ("target", &target_label)],
        );
        let mut result = ExperimentResult {
            method,
            target: self.target,
            replications: Vec::with_capacity(replications as usize),
            empty_samples: 0,
        };
        for rep in 0..u64::from(replications) {
            let mut sampler = method.build(self.packets.len(), self.window_start, rep, seed);
            let selected = select_indices(sampler.as_mut(), self.packets);
            let sample = self.target.sample_histogram(self.packets, &selected);
            match disparity(&self.population, &sample) {
                Some(report) => result.replications.push(Replication {
                    replication: rep,
                    report,
                }),
                None => result.empty_samples += 1,
            }
        }
        if obskit::recording_enabled() {
            obskit::counter("experiment_cells_total").inc();
            obskit::counter("experiment_replications_total").add(u64::from(replications));
            obskit::counter("experiment_empty_samples_total").add(u64::from(result.empty_samples));
        }
        result
    }

    /// Score a method family at packet granularity `k` (timer periods
    /// rate-equivalent for this window).
    pub fn run_family(
        &self,
        family: MethodFamily,
        k: usize,
        replications: u32,
        seed: u64,
    ) -> ExperimentResult {
        // A systematic sample has only k distinct replications.
        let reps = if family == MethodFamily::Systematic {
            replications.min(k as u32)
        } else {
            replications
        };
        self.run(family.at_granularity(k, self.mean_pps()), reps, seed)
    }
}

/// φ versus sampling granularity: run `family` at each granularity in
/// `ks` over the window, `replications` runs each (Figures 6–9).
pub fn granularity_sweep(
    packets: &[PacketRecord],
    target: Target,
    family: MethodFamily,
    ks: &[usize],
    replications: u32,
    seed: u64,
) -> Vec<(usize, ExperimentResult)> {
    let exp = Experiment::new(packets, target);
    ks.iter()
        .map(|&k| (k, exp.run_family(family, k, replications, seed)))
        .collect()
}

/// φ versus interval length: run `family` at fixed granularity `k` over
/// each window `[start, start + len)` for the lengths given
/// (Figures 10–11).
#[allow(clippy::too_many_arguments)] // a sweep is inherently a full parameter tuple
pub fn interval_sweep(
    trace: &Trace,
    target: Target,
    family: MethodFamily,
    k: usize,
    start: Micros,
    lengths: &[Micros],
    replications: u32,
    seed: u64,
) -> Vec<(Micros, Option<ExperimentResult>)> {
    lengths
        .iter()
        .map(|&len| {
            let window = trace.window(start, start + len);
            if window.is_empty() {
                (len, None)
            } else {
                let exp = Experiment::new(window, target);
                (len, Some(exp.run_family(family, k, replications, seed)))
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettrace::PacketRecord;

    /// A deterministic bimodal window: sizes alternate irregularly, gaps
    /// vary.
    fn window(n: usize) -> Vec<PacketRecord> {
        let mut t = 0u64;
        (0..n)
            .map(|i| {
                t += 400 + (i as u64 * 179) % 4400;
                let size = if (i * 7919) % 10 < 4 { 40 } else { 552 };
                PacketRecord::new(Micros(t), size)
            })
            .collect()
    }

    #[test]
    fn full_sampling_scores_zero_phi() {
        let w = window(5000);
        let exp = Experiment::new(&w, Target::PacketSize);
        let r = exp.run(MethodSpec::Systematic { interval: 1 }, 1, 0);
        assert_eq!(r.replications.len(), 1);
        assert_eq!(r.replications[0].report.phi, 0.0);
    }

    #[test]
    fn phi_grows_with_granularity() {
        let w = window(20_000);
        let sweep = granularity_sweep(
            &w,
            Target::PacketSize,
            MethodFamily::StratifiedRandom,
            &[4, 64, 1024],
            10,
            42,
        );
        let phis: Vec<f64> = sweep
            .iter()
            .map(|(_, r)| r.mean_phi().expect("scorable"))
            .collect();
        assert!(
            phis[0] < phis[1] && phis[1] < phis[2],
            "phi not monotone: {phis:?}"
        );
    }

    #[test]
    fn systematic_replications_capped_at_k() {
        let w = window(1000);
        let exp = Experiment::new(&w, Target::PacketSize);
        let r = exp.run_family(MethodFamily::Systematic, 3, 50, 0);
        assert_eq!(r.replications.len(), 3);
    }

    #[test]
    fn replication_variance_grows_with_granularity() {
        let w = window(20_000);
        let exp = Experiment::new(&w, Target::PacketSize);
        let fine = exp.run_family(MethodFamily::SimpleRandom, 8, 20, 1);
        let coarse = exp.run_family(MethodFamily::SimpleRandom, 512, 20, 1);
        let var = |r: &ExperimentResult| {
            let b = r.phi_boxplot().unwrap();
            b.iqr()
        };
        assert!(
            var(&coarse) > var(&fine),
            "IQR fine {} coarse {}",
            var(&fine),
            var(&coarse)
        );
    }

    #[test]
    fn empty_samples_are_counted_not_scored() {
        let w = window(10);
        let exp = Experiment::new(&w, Target::PacketSize);
        // Granularity far above the population: offset 0 still catches
        // packet 0 (scored); later offsets catch nothing.
        let r = exp.run(MethodSpec::Systematic { interval: 1000 }, 1, 0);
        assert_eq!(r.replications.len(), 1);
        let r2 = exp.run(
            MethodSpec::SystematicTimer {
                period: Micros(1 << 40),
            },
            1,
            0,
        );
        // Timer anchored at first packet fires immediately -> selects
        // packet 0; the subsequent schedule never fires again.
        assert!(r2.replications.len() + r2.empty_samples as usize == 1);
    }

    #[test]
    fn interval_sweep_improves_with_length() {
        let w = window(50_000);
        let trace = Trace::new(w).unwrap();
        let dur = trace.duration();
        let lengths = [
            Micros(dur.as_u64() / 64),
            Micros(dur.as_u64() / 8),
            Micros(dur.as_u64()),
        ];
        let sweep = interval_sweep(
            &trace,
            Target::PacketSize,
            MethodFamily::StratifiedRandom,
            64,
            Micros(0),
            &lengths,
            10,
            7,
        );
        let phis: Vec<f64> = sweep
            .iter()
            .map(|(_, r)| r.as_ref().unwrap().mean_phi().unwrap())
            .collect();
        assert!(
            phis[2] < phis[0],
            "longer interval should score better: {phis:?}"
        );
    }

    #[test]
    fn deterministic_experiments() {
        let w = window(5000);
        let exp = Experiment::new(&w, Target::Interarrival);
        for family in MethodFamily::paper_five() {
            let a = exp.run_family(family, 16, 5, 99);
            let b = exp.run_family(family, 16, 5, 99);
            assert_eq!(a, b, "{}", family.name());
        }
    }

    #[test]
    fn family_names_and_flags() {
        assert_eq!(MethodFamily::paper_five().len(), 5);
        assert_eq!(
            MethodFamily::paper_five()
                .iter()
                .filter(|f| f.is_timer_driven())
                .count(),
            2
        );
        assert_eq!(MethodFamily::Systematic.name(), "systematic");
    }

    #[test]
    fn mean_pps_is_sane() {
        let w = window(1000);
        let exp = Experiment::new(&w, Target::PacketSize);
        // Mean gap ~ 400 + avg(i*179 % 4400) ~ 2600us -> ~385 pps.
        let pps = exp.mean_pps();
        assert!(pps > 200.0 && pps < 800.0, "pps {pps}");
    }

    #[test]
    #[should_panic(expected = "nonempty window")]
    fn empty_window_panics() {
        let _ = Experiment::new(&[], Target::PacketSize);
    }
}
