//! # sampling — packet sampling methodologies and their evaluation
//!
//! The core contribution of *Application of Sampling Methodologies to
//! Network Traffic Characterization* (Claffy, Polyzos, Braun, SIGCOMM
//! 1993), as a reusable library:
//!
//! ## The five sampling methods (paper §4)
//!
//! | | packet(event)-driven | timer-driven |
//! |---|---|---|
//! | systematic | [`SystematicSampler`] | [`SystematicTimerSampler`] |
//! | stratified random | [`StratifiedSampler`] | [`StratifiedTimerSampler`] |
//! | simple random | [`SimpleRandomSampler`] | — |
//!
//! plus three operational extensions from the method's deployment
//! lineage (sFlow/NetFlow-style sampling): [`GeometricSkipSampler`]
//! (i.i.d. 1-in-k via geometric skips), [`ReservoirSampler`] (fixed-size
//! uniform sample over an unbounded stream), and [`AdaptiveSampler`]
//! (AIMD interval control holding the selection rate to a processor
//! budget).
//!
//! Every sampler is an **event-driven state machine**: the router (or the
//! simulator) offers each arriving packet via [`Sampler::offer`] and the
//! sampler answers "selected or not" in O(1) with no buffering — exactly
//! the shape deployed in the T3 backbone's forwarding firmware (paper §2).
//!
//! ## Scoring a sample against its parent population (paper §5.2)
//!
//! [`metrics::disparity`] computes the full metric suite over a binned
//! characterization target: Pearson χ² and its significance level, the
//! `cost` (ℓ₁) and relative-cost metrics, Paxson's size-invariant `X²`
//! and average normalized deviation, and the **φ coefficient** the paper
//! adopts. [`targets::Target`] supplies the paper's bins for the packet
//! size and interarrival-time distributions (plus proportion targets for
//! the §8 extension).
//!
//! ## Experiments (paper §6–7)
//!
//! [`experiment`] runs replicated samples across methods, sampling
//! fractions, and interval lengths, reproducing Figures 3–11;
//! [`samplesize`] implements the Cochran sample-size formulas of §5.1;
//! [`theory`] verifies the classical efficiency orderings of §5 on
//! structured populations; [`estimate`] recovers population estimates
//! (totals, means, proportions) with method-appropriate errors.
//!
//! # Example
//!
//! ```
//! use sampling::{Sampler, SystematicSampler, Target, disparity, select_indices};
//! use nettrace::{Micros, PacketRecord};
//!
//! // A parent population: alternating ACKs and MSS segments.
//! let population: Vec<PacketRecord> = (0..10_000)
//!     .map(|i| PacketRecord::new(Micros(i * 2_400), if i % 2 == 0 { 40 } else { 552 }))
//!     .collect();
//!
//! // Systematic 1-in-51. (An odd interval: this toy population has
//! // period 2, and systematic sampling at a resonant even interval
//! // would see only one phase — the §5 periodicity hazard.)
//! let mut sampler = SystematicSampler::new(51);
//! let selected = select_indices(&mut sampler, &population);
//! assert_eq!(selected.len(), 197);
//!
//! // Score the sample's packet-size distribution against the population.
//! let target = Target::PacketSize;
//! let pop_hist = target.population_histogram(&population);
//! let sam_hist = target.sample_histogram(&population, &selected);
//! let report = disparity(&pop_hist, &sam_hist).expect("nonempty sample");
//! assert!(report.phi < 0.05, "good samples have small phi");
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod adaptive;
pub mod estimate;
pub mod experiment;
pub mod flows;
pub mod geometric;
pub mod metrics;
pub mod nullband;
pub mod random;
pub mod reservoir;
pub mod sampler;
pub mod samplesize;
pub mod stratified;
pub mod systematic;
pub mod targets;
pub mod theory;
pub mod timer;

pub use adaptive::{AdaptiveConfig, AdaptiveSampler};
pub use experiment::{Experiment, ExperimentResult, Replication};
pub use flows::{
    estimate_histogram, flow_size_bins, FlowEstimator, FlowExperiment, FlowExperimentResult,
    FlowReplication,
};
pub use geometric::GeometricSkipSampler;
pub use metrics::{disparity, DisparityReport};
pub use nullband::{phi_null_band, PhiNullBand};
pub use random::SimpleRandomSampler;
pub use reservoir::ReservoirSampler;
pub use sampler::{
    select_indices, select_indices_ts, BuildError, MethodClass, MethodSpec, Sampler,
};
pub use samplesize::{required_sample_size, SampleSizeSpec};
pub use stratified::StratifiedSampler;
pub use systematic::SystematicSampler;
pub use targets::Target;
pub use timer::{StratifiedTimerSampler, SystematicTimerSampler};
