//! Timer-driven sampling.
//!
//! "Timer-driven sampling methods use a timer rather than a packet
//! counter to trigger the selection of packets … When the timer expires,
//! we select the next packet to arrive" (paper §4). Both timer methods
//! below implement exactly that arm-and-fire semantics:
//!
//! * the timer maintains a schedule of *firing times*;
//! * once the current firing time has passed, the sampler is **armed**;
//! * the first packet offered at or after the firing time is selected,
//!   and the schedule advances to the next firing time after that packet
//!   (multiple expirations while no packets arrive still select only the
//!   single next packet — re-arming during idle is idempotent).
//!
//! The paper found these methods uniformly worse than the packet-driven
//! ones, *especially* for interarrival times: selection after a timer
//! expiry is biased toward packets that follow long quiet gaps, so
//! bursts are systematically under-represented (§7.2). This module exists
//! so the workspace can reproduce that negative result.

use crate::sampler::{BuildError, Sampler};
use nettrace::{Micros, PacketRecord};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Systematic timer sampling: firing times at `start + i·period`.
#[derive(Debug, Clone)]
pub struct SystematicTimerSampler {
    period: u64,
    start: u64,
    next_fire: u64,
}

impl SystematicTimerSampler {
    /// Fire every `period`, first firing at `start`.
    ///
    /// # Panics
    /// Panics if `period` is zero.
    #[must_use]
    pub fn new(period: Micros, start: Micros) -> Self {
        match Self::try_new(period, start) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`SystematicTimerSampler::new`].
    ///
    /// # Errors
    /// [`BuildError::ZeroPeriod`] if `period` is zero.
    pub fn try_new(period: Micros, start: Micros) -> Result<Self, BuildError> {
        if period.as_u64() == 0 {
            return Err(BuildError::ZeroPeriod);
        }
        Ok(SystematicTimerSampler {
            period: period.as_u64(),
            start: start.as_u64(),
            next_fire: start.as_u64(),
        })
    }

    /// The timer period.
    #[must_use]
    pub fn period(&self) -> Micros {
        Micros(self.period)
    }

    /// The arm-and-fire decision against one arrival timestamp — the
    /// whole of `offer`, which never reads any other packet field.
    fn offer_ts(&mut self, ts: u64) -> bool {
        if ts < self.next_fire {
            return false;
        }
        // Armed: select this packet, re-arm at the first scheduled firing
        // strictly after it. Near `u64::MAX` the next firing is beyond
        // representable time; saturating keeps the schedule parked there
        // instead of wrapping around and selecting every later packet.
        let elapsed = ts - self.start;
        self.next_fire = (elapsed / self.period)
            .checked_add(1)
            .and_then(|ticks| ticks.checked_mul(self.period))
            .and_then(|offset| self.start.checked_add(offset))
            .unwrap_or(u64::MAX);
        true
    }
}

impl Sampler for SystematicTimerSampler {
    fn offer(&mut self, pkt: &PacketRecord) -> bool {
        self.offer_ts(pkt.timestamp.as_u64())
    }

    /// Column override: the decision reads nothing but the timestamp,
    /// so the batch path is a tight compare-and-rarely-rearm loop over
    /// the dense column (most packets fail the `ts < next_fire` check
    /// without touching the schedule).
    fn offer_ts_batch(&mut self, base: usize, ts: &[u64], out: &mut Vec<usize>) {
        for (i, &t) in ts.iter().enumerate() {
            if self.offer_ts(t) {
                out.push(base + i);
            }
        }
    }

    fn reset(&mut self) {
        self.next_fire = self.start;
    }

    fn method_name(&self) -> &'static str {
        "sys_timer"
    }
}

/// Stratified timer sampling: one uniformly-placed firing time per
/// stratum `[start + i·period, start + (i+1)·period)`.
#[derive(Debug)]
pub struct StratifiedTimerSampler {
    period: u64,
    start: u64,
    seed: u64,
    rng: StdRng,
    /// Index of the stratum the current firing time belongs to.
    stratum: u64,
    /// Absolute firing time within the current stratum.
    fire_at: u64,
    /// Whether the current stratum's firing has already selected a packet.
    fired: bool,
}

impl StratifiedTimerSampler {
    /// One firing per `period`, strata anchored at `start`.
    ///
    /// Catch-up draws are replayed one stratum at a time only up to this
    /// many skipped strata; a larger jump (a pathological timestamp like
    /// `u64::MAX` against a microsecond period would mean ~10¹³ draws)
    /// switches to an O(1) deterministic reseed. Far larger than any gap
    /// a real trace produces, so ordinary runs replay identically.
    const MAX_CATCHUP_DRAWS: u64 = 1 << 16;

    /// # Panics
    /// Panics if `period` is zero.
    #[must_use]
    pub fn new(period: Micros, start: Micros, seed: u64) -> Self {
        match Self::try_new(period, start, seed) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`StratifiedTimerSampler::new`].
    ///
    /// # Errors
    /// [`BuildError::ZeroPeriod`] if `period` is zero.
    pub fn try_new(period: Micros, start: Micros, seed: u64) -> Result<Self, BuildError> {
        if period.as_u64() == 0 {
            return Err(BuildError::ZeroPeriod);
        }
        let mut s = StratifiedTimerSampler {
            period: period.as_u64(),
            start: start.as_u64(),
            seed,
            rng: StdRng::seed_from_u64(seed),
            stratum: 0,
            fire_at: 0,
            fired: false,
        };
        s.draw_firing();
        Ok(s)
    }

    /// Draw the firing time for the current stratum. Saturating: a
    /// stratum whose window starts beyond representable time parks the
    /// firing at `u64::MAX` instead of wrapping into the past.
    fn draw_firing(&mut self) {
        let offset = self.rng.random_range(0..self.period);
        self.fire_at = self
            .start
            .saturating_add(self.stratum.saturating_mul(self.period))
            .saturating_add(offset);
        self.fired = false;
    }

    /// Advance strata until the current one is `target` or later,
    /// re-drawing firing times for each skipped stratum (the timer kept
    /// running while no packets arrived). A jump past
    /// [`Self::MAX_CATCHUP_DRAWS`] strata reseeds the stream
    /// deterministically from `(seed, target)` instead of replaying one
    /// draw per skipped stratum, bounding `offer` at O(1).
    fn advance_to_stratum(&mut self, target: u64) {
        if target.saturating_sub(self.stratum) > Self::MAX_CATCHUP_DRAWS {
            self.rng =
                StdRng::seed_from_u64(self.seed ^ target.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            self.stratum = target;
            self.draw_firing();
            return;
        }
        while self.stratum < target {
            self.stratum += 1;
            self.draw_firing();
        }
    }

    /// The stratum length.
    #[must_use]
    pub fn period(&self) -> Micros {
        Micros(self.period)
    }

    /// The arm-and-fire decision against one arrival timestamp — the
    /// whole of `offer`, which never reads any other packet field.
    fn offer_ts(&mut self, ts: u64) -> bool {
        if ts < self.start {
            return false;
        }
        let pkt_stratum = (ts - self.start) / self.period;

        // If the packet has moved past the stratum holding the pending
        // firing and that firing already selected (or the packet is in a
        // later stratum than an unfired timer whose chance has not yet
        // come — it still fires: select-next-packet semantics), handle
        // arming first.
        if !self.fired && ts >= self.fire_at {
            // The timer expired at fire_at (possibly strata ago); this is
            // the next packet to arrive. Select it, then move the schedule
            // to the stratum after this packet.
            self.fired = true;
            self.advance_to_stratum(pkt_stratum.saturating_add(1));
            return true;
        }
        if pkt_stratum > self.stratum {
            // Stratum rolled over without (or after) firing; catch up and
            // re-check arming against the fresh firing time.
            self.advance_to_stratum(pkt_stratum);
            if ts >= self.fire_at {
                self.fired = true;
                self.advance_to_stratum(pkt_stratum.saturating_add(1));
                return true;
            }
        }
        false
    }
}

impl Sampler for StratifiedTimerSampler {
    fn offer(&mut self, pkt: &PacketRecord) -> bool {
        self.offer_ts(pkt.timestamp.as_u64())
    }

    /// Column override: stratum accounting runs unchanged (same RNG
    /// draws in the same positions), only the per-packet dispatch and
    /// record deref disappear.
    fn offer_ts_batch(&mut self, base: usize, ts: &[u64], out: &mut Vec<usize>) {
        for (i, &t) in ts.iter().enumerate() {
            if self.offer_ts(t) {
                out.push(base + i);
            }
        }
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
        self.stratum = 0;
        self.draw_firing();
    }

    fn method_name(&self) -> &'static str {
        "strat_timer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::select_indices;

    fn regular_packets(n: usize, spacing: u64) -> Vec<PacketRecord> {
        (0..n)
            .map(|i| PacketRecord::new(Micros(i as u64 * spacing), 40))
            .collect()
    }

    #[test]
    fn systematic_timer_regular_stream() {
        // Packets every 100us, timer every 1000us: one selection per
        // 10 packets.
        let pkts = regular_packets(100, 100);
        let mut s = SystematicTimerSampler::new(Micros(1000), Micros(0));
        let sel = select_indices(&mut s, &pkts);
        assert_eq!(sel, vec![0, 10, 20, 30, 40, 50, 60, 70, 80, 90]);
    }

    #[test]
    fn systematic_timer_selects_next_after_idle() {
        // A long silence spanning several periods still yields exactly
        // one selection when traffic resumes.
        let pkts = vec![
            PacketRecord::new(Micros(0), 40),
            PacketRecord::new(Micros(10_000), 40), // 10 periods later
            PacketRecord::new(Micros(10_100), 40),
        ];
        let mut s = SystematicTimerSampler::new(Micros(1000), Micros(0));
        let sel = select_indices(&mut s, &pkts);
        assert_eq!(sel, vec![0, 1]);
    }

    #[test]
    fn systematic_timer_phase_shifts_selection() {
        let pkts = regular_packets(50, 100);
        let a = select_indices(
            &mut SystematicTimerSampler::new(Micros(1000), Micros(0)),
            &pkts,
        );
        let b = select_indices(
            &mut SystematicTimerSampler::new(Micros(1000), Micros(500)),
            &pkts,
        );
        assert_ne!(a, b);
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn systematic_timer_length_bias() {
        // Alternating short/long gaps: the packet after the long gap is
        // always the one selected when the timer spans the burst —
        // the bias the paper blames for skewed interarrival samples.
        // Bursts of 10 packets 10us apart, then 10_000us silence.
        let mut pkts = Vec::new();
        let mut t = 0u64;
        for _burst in 0..20 {
            for _ in 0..10 {
                pkts.push(PacketRecord::new(Micros(t), 40));
                t += 10;
            }
            t += 10_000;
        }
        let mut s = SystematicTimerSampler::new(Micros(5_000), Micros(0));
        let sel = select_indices(&mut s, &pkts);
        // Burst heads (post-gap packets) are indices 0, 10, 20, …
        let heads = sel.iter().filter(|&&i| i % 10 == 0).count();
        assert!(
            heads * 2 > sel.len(),
            "timer selection should over-represent post-gap packets: {heads}/{}",
            sel.len()
        );
    }

    #[test]
    fn stratified_timer_one_per_stratum_under_dense_traffic() {
        // Dense regular packets: every stratum's firing finds a packet in
        // that same stratum -> exactly one selection per full stratum.
        let pkts = regular_packets(1000, 10); // 10us spacing, 10ms total
        for seed in 0..10 {
            let mut s = StratifiedTimerSampler::new(Micros(1000), Micros(0), seed);
            let sel = select_indices(&mut s, &pkts);
            // A firing in the last 10us of a stratum slides its selection
            // into the next stratum and consumes that stratum's firing
            // (select-next-packet semantics), so 10 strata yield 9 or 10
            // selections.
            assert!((9..=10).contains(&sel.len()), "seed {seed}: {}", sel.len());
            // Selected packets land in distinct strata.
            let strata: std::collections::HashSet<u64> = sel
                .iter()
                .map(|&i| pkts[i].timestamp.as_u64() / 1000)
                .collect();
            assert_eq!(strata.len(), sel.len(), "seed {seed}");
        }
    }

    #[test]
    fn stratified_timer_varies_with_seed() {
        let pkts = regular_packets(1000, 10);
        let a = select_indices(
            &mut StratifiedTimerSampler::new(Micros(1000), Micros(0), 1),
            &pkts,
        );
        let b = select_indices(
            &mut StratifiedTimerSampler::new(Micros(1000), Micros(0), 2),
            &pkts,
        );
        assert_ne!(a, b);
    }

    #[test]
    fn stratified_timer_idle_strata_yield_single_selection() {
        let pkts = vec![
            PacketRecord::new(Micros(100), 40),
            PacketRecord::new(Micros(50_000), 40),
            PacketRecord::new(Micros(50_001), 40),
        ];
        for seed in 0..30 {
            let mut s = StratifiedTimerSampler::new(Micros(1000), Micros(0), seed);
            let sel = select_indices(&mut s, &pkts);
            // At most one selection per packet; the long idle gap must not
            // produce a burst of selections when traffic resumes.
            assert!(sel.len() <= 2, "seed {seed}: {sel:?}");
            assert!(!sel.is_empty(), "seed {seed}");
        }
    }

    #[test]
    fn resets_are_reproducible() {
        let pkts = regular_packets(500, 37);
        let mut s1 = SystematicTimerSampler::new(Micros(777), Micros(0));
        let a = select_indices(&mut s1, &pkts);
        s1.reset();
        assert_eq!(a, select_indices(&mut s1, &pkts));

        let mut s2 = StratifiedTimerSampler::new(Micros(777), Micros(0), 5);
        let b = select_indices(&mut s2, &pkts);
        s2.reset();
        assert_eq!(b, select_indices(&mut s2, &pkts));
    }

    #[test]
    fn packets_before_start_are_ignored() {
        let pkts = regular_packets(10, 100); // t = 0..900
        let mut s = SystematicTimerSampler::new(Micros(100), Micros(10_000));
        assert!(select_indices(&mut s, &pkts).is_empty());
        let mut s = StratifiedTimerSampler::new(Micros(100), Micros(10_000), 0);
        assert!(select_indices(&mut s, &pkts).is_empty());
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_panics() {
        let _ = SystematicTimerSampler::new(Micros(0), Micros(0));
    }

    #[test]
    fn try_new_rejects_zero_period() {
        assert!(SystematicTimerSampler::try_new(Micros(0), Micros(0)).is_err());
        assert!(StratifiedTimerSampler::try_new(Micros(0), Micros(0), 1).is_err());
        assert!(SystematicTimerSampler::try_new(Micros(1), Micros(0)).is_ok());
    }

    #[test]
    fn systematic_timer_survives_u64_max_timestamp() {
        // Minimized from the fault-injection harness: re-arming after a
        // selection at t = u64::MAX used to overflow computing the next
        // firing time (debug abort; wrap → select-everything in release).
        let pkts = vec![
            PacketRecord::new(Micros(0), 40),
            PacketRecord::new(Micros(u64::MAX), 40),
        ];
        for period in [1, 1000, u64::MAX] {
            let mut s = SystematicTimerSampler::new(Micros(period), Micros(0));
            let sel = select_indices(&mut s, &pkts);
            assert!(!sel.is_empty(), "period {period}");
        }
    }

    #[test]
    fn stratified_timer_survives_huge_timestamp_jump() {
        // Minimized from the fault-injection harness: a jump to
        // t = u64::MAX with a 1 µs period used to replay one RNG draw per
        // skipped stratum (~1.8 × 10¹⁹ of them) and overflow the firing
        // arithmetic. Must finish instantly and select at most once per
        // packet.
        let pkts = vec![
            PacketRecord::new(Micros(0), 40),
            PacketRecord::new(Micros(u64::MAX), 40),
            PacketRecord::new(Micros(u64::MAX), 40),
        ];
        for seed in 0..5 {
            let mut s = StratifiedTimerSampler::new(Micros(1), Micros(0), seed);
            let sel = select_indices(&mut s, &pkts);
            assert!(sel.len() <= pkts.len(), "seed {seed}: {sel:?}");
        }
    }

    #[test]
    fn stratified_timer_catchup_reseed_is_deterministic() {
        // The O(1) catch-up path must give the same selections on every
        // run (and after reset) even though it skips the per-stratum
        // replay.
        let pkts = vec![
            PacketRecord::new(Micros(0), 40),
            PacketRecord::new(Micros(10_u64.pow(15)), 40),
            PacketRecord::new(Micros(10_u64.pow(15) + 3), 40),
        ];
        let mut s = StratifiedTimerSampler::new(Micros(2), Micros(0), 9);
        let a = select_indices(&mut s, &pkts);
        s.reset();
        let b = select_indices(&mut s, &pkts);
        assert_eq!(a, b);
    }

    #[test]
    fn small_catchups_replay_per_stratum_draws() {
        // Gaps below the catch-up threshold must keep the historical
        // draw-per-stratum stream: compare against a manual replay of the
        // same gap one stratum at a time.
        let pkts: Vec<PacketRecord> = (0..200)
            .map(|i| PacketRecord::new(Micros(i * 997), 40))
            .collect();
        let mut gap = vec![PacketRecord::new(Micros(0), 40)];
        gap.extend(
            pkts.iter()
                .map(|p| PacketRecord::new(Micros(p.timestamp.as_u64() + 40_000), 40)),
        );
        let mut s = StratifiedTimerSampler::new(Micros(100), Micros(0), 3);
        let sel = select_indices(&mut s, &gap);
        s.reset();
        let again = select_indices(&mut s, &gap);
        assert_eq!(sel, again, "per-stratum replay must be stable");
    }
}
