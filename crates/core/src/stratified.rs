//! Stratified random sampling over packet-count buckets.
//!
//! "Stratified random sampling is similar to systematic sampling, except
//! that rather than selecting the first packet from each bucket, a packet
//! is selected randomly from each bucket" (paper §4). Selection is still
//! streaming and O(1) per packet: at each bucket boundary the sampler
//! pre-draws the index to select within the coming bucket.

use crate::sampler::{BuildError, Sampler};
use nettrace::PacketRecord;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One uniform pick from every bucket of `bucket` consecutive packets.
#[derive(Debug)]
pub struct StratifiedSampler {
    bucket: usize,
    seed: u64,
    rng: StdRng,
    /// Position within the current bucket (0-based).
    pos: usize,
    /// The pre-drawn index to select in the current bucket.
    target: usize,
}

impl StratifiedSampler {
    /// Create with bucket size `bucket` and a deterministic seed.
    ///
    /// # Panics
    /// Panics if `bucket` is zero.
    #[must_use]
    pub fn new(bucket: usize, seed: u64) -> Self {
        match Self::try_new(bucket, seed) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`StratifiedSampler::new`].
    ///
    /// # Errors
    /// [`BuildError::ZeroBucket`] if `bucket` is zero.
    pub fn try_new(bucket: usize, seed: u64) -> Result<Self, BuildError> {
        if bucket == 0 {
            return Err(BuildError::ZeroBucket);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let target = rng.random_range(0..bucket);
        Ok(StratifiedSampler {
            bucket,
            seed,
            rng,
            pos: 0,
            target,
        })
    }

    /// Bucket size `k`.
    #[must_use]
    pub fn bucket(&self) -> usize {
        self.bucket
    }
}

impl Sampler for StratifiedSampler {
    fn offer(&mut self, _pkt: &PacketRecord) -> bool {
        let selected = self.pos == self.target;
        self.pos += 1;
        if self.pos == self.bucket {
            self.pos = 0;
            self.target = self.rng.random_range(0..self.bucket);
        }
        selected
    }

    /// Bucket-jump override: advance bucket by bucket instead of packet
    /// by packet. Each full bucket costs one range check, at most one
    /// push, and exactly the one RNG draw the per-packet path spends at
    /// its boundary — so the random stream position stays bit-identical
    /// while the per-packet counter churn disappears.
    fn offer_ts_batch(&mut self, base: usize, ts: &[u64], out: &mut Vec<usize>) {
        let n = ts.len();
        let mut i = 0;
        while i < n {
            // Run length inside the current bucket.
            let step = (self.bucket - self.pos).min(n - i);
            if self.target >= self.pos && self.target < self.pos + step {
                out.push(base + i + (self.target - self.pos));
            }
            self.pos += step;
            i += step;
            if self.pos == self.bucket {
                self.pos = 0;
                self.target = self.rng.random_range(0..self.bucket);
            }
        }
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
        self.pos = 0;
        self.target = self.rng.random_range(0..self.bucket);
    }

    fn method_name(&self) -> &'static str {
        "stratified"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::select_indices;
    use nettrace::Micros;

    fn packets(n: usize) -> Vec<PacketRecord> {
        (0..n)
            .map(|i| PacketRecord::new(Micros(i as u64), 40))
            .collect()
    }

    #[test]
    fn exactly_one_per_full_bucket() {
        let pkts = packets(100);
        for seed in 0..20 {
            let mut s = StratifiedSampler::new(10, seed);
            let sel = select_indices(&mut s, &pkts);
            assert_eq!(sel.len(), 10, "seed {seed}");
            for (b, &i) in sel.iter().enumerate() {
                assert!(
                    (b * 10..(b + 1) * 10).contains(&i),
                    "seed {seed}: index {i} outside bucket {b}"
                );
            }
        }
    }

    #[test]
    fn partial_final_bucket_selects_at_most_one() {
        let pkts = packets(25);
        for seed in 0..50 {
            let mut s = StratifiedSampler::new(10, seed);
            let sel = select_indices(&mut s, &pkts);
            let in_last = sel.iter().filter(|&&i| i >= 20).count();
            assert!(in_last <= 1);
            assert!(sel.len() == 2 || sel.len() == 3);
        }
    }

    #[test]
    fn selection_is_uniform_within_bucket() {
        // Over many seeds, each in-bucket position should be picked
        // approximately equally often.
        let pkts = packets(10);
        let mut counts = [0u32; 10];
        let trials = 20_000;
        for seed in 0..trials {
            let mut s = StratifiedSampler::new(10, seed);
            let sel = select_indices(&mut s, &pkts);
            assert_eq!(sel.len(), 1);
            counts[sel[0]] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let p = f64::from(c) / trials as f64;
            assert!((p - 0.1).abs() < 0.012, "position {i}: {p}");
        }
    }

    #[test]
    fn bucket_one_selects_everything() {
        let pkts = packets(9);
        let mut s = StratifiedSampler::new(1, 7);
        assert_eq!(select_indices(&mut s, &pkts).len(), 9);
    }

    #[test]
    fn reset_reproduces_sequence() {
        let pkts = packets(200);
        let mut s = StratifiedSampler::new(7, 123);
        let a = select_indices(&mut s, &pkts);
        s.reset();
        let b = select_indices(&mut s, &pkts);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let pkts = packets(1000);
        let a = select_indices(&mut StratifiedSampler::new(10, 1), &pkts);
        let b = select_indices(&mut StratifiedSampler::new(10, 2), &pkts);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "bucket size must be positive")]
    fn zero_bucket_panics() {
        let _ = StratifiedSampler::new(0, 0);
    }
}
