//! Characterization targets: what distribution a sample is asked to
//! estimate, and how it is binned.
//!
//! The paper evaluates two targets — the packet size distribution
//! (§7.1.1: bins `<41`, `41–180`, `>180` bytes) and the packet
//! interarrival time distribution (§7.1.2: bins `<800`, `800–1199`,
//! `1200–2399`, `2400–3599`, `≥3600` µs) — and names proportion-style
//! targets (protocol and port distributions) as the natural extension
//! (§8). All are implemented here.
//!
//! ## Sampling the interarrival distribution
//!
//! Each packet carries, as an attribute, its interarrival time from its
//! *population* predecessor. A sampling method selects packets; the
//! sampled interarrival distribution is the distribution of that
//! attribute over selected packets. (It is **not** the gaps between
//! consecutive selected packets — those would scale with the sampling
//! interval.) This attribute view is what makes the paper's timer-bias
//! result legible: timer methods preferentially select packets that
//! follow long gaps, inflating the attribute's upper bins.

use nettrace::{BinSpec, Histogram, PacketRecord, Protocol};

/// A binned characterization target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Target {
    /// Packet size distribution, the paper's three protocol-motivated
    /// bins.
    PacketSize,
    /// Packet interarrival time distribution, the paper's five bins.
    Interarrival,
    /// Distribution of protocol over IP (TCP / UDP / ICMP / other) —
    /// Table 1 object, §8 extension.
    Protocol,
    /// Well-known destination-port distribution (Table 1 object, §8
    /// extension): FTP-data(20), telnet(23), SMTP(25), DNS(53),
    /// NNTP(119), other.
    Port,
    /// **Byte volume** by packet-size class: the same three size bins,
    /// weighted by bytes rather than packets. Every Table 1 object
    /// reports both packets *and* bytes; billing and capacity planning
    /// care about the byte view, where the 552-byte mode dominates even
    /// though 40-byte ACKs dominate the packet view.
    ///
    /// Caveat: χ²-based *significance levels* assume independent count
    /// data; for byte-weighted targets treat φ as a relative score
    /// across methods/fractions, not as a hypothesis test.
    ByteVolume,
    /// Byte volume by protocol (TCP / UDP / ICMP / other).
    ProtocolBytes,
}

/// Well-known ports tracked by the [`Target::Port`] target, in bin order.
pub const TRACKED_PORTS: [u16; 5] = [20, 23, 25, 53, 119];

impl Target {
    /// The bin specification for this target.
    #[must_use]
    pub fn bins(&self) -> BinSpec {
        match self {
            Target::PacketSize | Target::ByteVolume => BinSpec::paper_packet_size(),
            Target::Interarrival => BinSpec::paper_interarrival(),
            // Categorical targets use small integer codes.
            Target::Protocol | Target::ProtocolBytes => BinSpec::Edges(vec![1, 2, 3]),
            Target::Port => BinSpec::Edges(vec![1, 2, 3, 4, 5]),
        }
    }

    /// The weight one packet contributes to its bin: 1 for packet-count
    /// targets, the packet's size for byte-volume targets.
    #[must_use]
    pub fn weight(&self, pkt: &PacketRecord) -> u64 {
        match self {
            Target::ByteVolume | Target::ProtocolBytes => u64::from(pkt.size),
            _ => 1,
        }
    }

    /// Human-readable bin labels.
    #[must_use]
    pub fn labels(&self) -> Vec<String> {
        match self {
            Target::PacketSize | Target::ByteVolume => {
                vec!["<41B".into(), "41-180B".into(), ">180B".into()]
            }
            Target::Interarrival => vec![
                "<800us".into(),
                "800-1199us".into(),
                "1200-2399us".into(),
                "2400-3599us".into(),
                ">=3600us".into(),
            ],
            Target::Protocol | Target::ProtocolBytes => {
                vec!["TCP".into(), "UDP".into(), "ICMP".into(), "other".into()]
            }
            Target::Port => {
                let mut v: Vec<String> =
                    TRACKED_PORTS.iter().map(|p| format!("port {p}")).collect();
                v.push("other".into());
                v
            }
        }
    }

    /// The per-packet attribute value fed into the bins.
    ///
    /// `gap_us` is the packet's interarrival time from its population
    /// predecessor (`None` for the first packet of the window, which the
    /// interarrival target skips).
    #[must_use]
    pub fn value(&self, pkt: &PacketRecord, gap_us: Option<u64>) -> Option<u64> {
        match self {
            Target::PacketSize | Target::ByteVolume => Some(u64::from(pkt.size)),
            Target::Interarrival => gap_us,
            Target::Protocol | Target::ProtocolBytes => Some(match pkt.protocol {
                Protocol::Tcp => 0,
                Protocol::Udp => 1,
                Protocol::Icmp => 2,
                Protocol::Other(_) => 3,
            }),
            Target::Port => Some(
                TRACKED_PORTS
                    .iter()
                    .position(|&p| p == pkt.dst_port)
                    .map_or(TRACKED_PORTS.len() as u64, |i| i as u64),
            ),
        }
    }

    /// Histogram of this target over an entire packet window (the parent
    /// population's distribution).
    #[must_use]
    pub fn population_histogram(&self, packets: &[PacketRecord]) -> Histogram {
        let mut h = Histogram::new(self.bins());
        let mut prev_ts: Option<u64> = None;
        for p in packets {
            let gap = prev_ts.map(|t| p.timestamp.as_u64().saturating_sub(t));
            prev_ts = Some(p.timestamp.as_u64());
            if let Some(v) = self.value(p, gap) {
                h.observe_weighted(v, self.weight(p));
            }
        }
        h
    }

    /// Histogram of this target over the packets at `selected` indices of
    /// `packets` (a sample), with interarrival attributes computed from
    /// the *population* predecessor.
    ///
    /// # Panics
    /// Panics if any selected index is out of bounds.
    #[must_use]
    pub fn sample_histogram(&self, packets: &[PacketRecord], selected: &[usize]) -> Histogram {
        let mut h = Histogram::new(self.bins());
        for &i in selected {
            let gap = if i == 0 {
                None
            } else {
                Some(
                    packets[i]
                        .timestamp
                        .saturating_sub(packets[i - 1].timestamp)
                        .as_u64(),
                )
            };
            if let Some(v) = self.value(&packets[i], gap) {
                h.observe_weighted(v, self.weight(&packets[i]));
            }
        }
        h
    }

    /// The paper's four packet-count targets.
    #[must_use]
    pub fn all() -> [Target; 4] {
        [
            Target::PacketSize,
            Target::Interarrival,
            Target::Protocol,
            Target::Port,
        ]
    }

    /// All targets including the byte-weighted extensions.
    #[must_use]
    pub fn all_extended() -> [Target; 6] {
        [
            Target::PacketSize,
            Target::Interarrival,
            Target::Protocol,
            Target::Port,
            Target::ByteVolume,
            Target::ProtocolBytes,
        ]
    }
}

impl std::fmt::Display for Target {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Target::PacketSize => "packet-size",
            Target::Interarrival => "interarrival",
            Target::Protocol => "protocol",
            Target::Port => "port",
            Target::ByteVolume => "byte-volume",
            Target::ProtocolBytes => "protocol-bytes",
        };
        write!(f, "{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettrace::Micros;

    fn pkt(t: u64, size: u16) -> PacketRecord {
        PacketRecord::new(Micros(t), size)
    }

    #[test]
    fn labels_match_bin_counts() {
        for t in Target::all() {
            assert_eq!(t.labels().len(), t.bins().bin_count(), "{t}");
        }
    }

    #[test]
    fn packet_size_population_histogram() {
        let pkts = [pkt(0, 40), pkt(400, 100), pkt(800, 552), pkt(1200, 40)];
        let h = Target::PacketSize.population_histogram(&pkts);
        assert_eq!(h.counts(), &[2, 1, 1]);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn interarrival_population_skips_first_packet() {
        let pkts = [pkt(0, 40), pkt(400, 40), pkt(2000, 40), pkt(6000, 40)];
        let h = Target::Interarrival.population_histogram(&pkts);
        // gaps: 400, 1600, 4000 -> bins: <800, 1200-2399, >=3600.
        assert_eq!(h.total(), 3);
        assert_eq!(h.counts(), &[1, 0, 1, 0, 1]);
    }

    #[test]
    fn sample_histogram_uses_population_gaps() {
        let pkts = [pkt(0, 40), pkt(1000, 40), pkt(2000, 40), pkt(3000, 40)];
        // Select every other packet: indices 0 and 2. Packet 2's gap is to
        // population packet 1 (1000us), NOT to selected packet 0 (2000us).
        let h = Target::Interarrival.sample_histogram(&pkts, &[0, 2]);
        assert_eq!(h.total(), 1); // index 0 contributes no gap
        assert_eq!(h.counts(), &[0, 1, 0, 0, 0]); // 1000us -> 800-1199 bin
    }

    #[test]
    fn protocol_target_bins() {
        let pkts = [
            pkt(0, 40),
            pkt(1, 40).with_protocol(Protocol::Udp),
            pkt(2, 40).with_protocol(Protocol::Icmp),
            pkt(3, 40).with_protocol(Protocol::Other(89)),
            pkt(4, 40),
        ];
        let h = Target::Protocol.population_histogram(&pkts);
        assert_eq!(h.counts(), &[2, 1, 1, 1]);
    }

    #[test]
    fn port_target_bins() {
        let pkts = [
            pkt(0, 40).with_ports(1024, 20),
            pkt(1, 40).with_ports(1024, 23),
            pkt(2, 40).with_ports(1024, 25),
            pkt(3, 40).with_ports(1024, 53),
            pkt(4, 40).with_ports(1024, 119),
            pkt(5, 40).with_ports(1024, 8080),
        ];
        let h = Target::Port.population_histogram(&pkts);
        assert_eq!(h.counts(), &[1, 1, 1, 1, 1, 1]);
    }

    #[test]
    fn full_selection_reproduces_population() {
        let pkts: Vec<PacketRecord> = (0..100)
            .map(|i| pkt(i * 500, if i % 3 == 0 { 40 } else { 552 }))
            .collect();
        let all: Vec<usize> = (0..pkts.len()).collect();
        for t in Target::all() {
            let pop = t.population_histogram(&pkts);
            let sam = t.sample_histogram(&pkts, &all);
            assert_eq!(pop, sam, "{t}");
        }
    }

    #[test]
    fn empty_window_histograms_are_empty() {
        for t in Target::all() {
            assert_eq!(t.population_histogram(&[]).total(), 0);
            assert_eq!(t.sample_histogram(&[], &[]).total(), 0);
        }
    }

    #[test]
    fn byte_volume_weights_by_size() {
        let pkts = [pkt(0, 40), pkt(400, 40), pkt(800, 552)];
        let counts = Target::PacketSize.population_histogram(&pkts);
        assert_eq!(counts.counts(), &[2, 0, 1]);
        let bytes = Target::ByteVolume.population_histogram(&pkts);
        assert_eq!(bytes.counts(), &[80, 0, 552]);
        assert_eq!(bytes.total(), 632);
        // The byte view flips which bin dominates.
        assert!(bytes.proportions()[2] > 0.8);
        assert!(counts.proportions()[0] > 0.6);
    }

    #[test]
    fn protocol_bytes_weighting() {
        let pkts = [pkt(0, 1000), pkt(1, 40).with_protocol(Protocol::Udp)];
        let h = Target::ProtocolBytes.population_histogram(&pkts);
        assert_eq!(h.counts(), &[1000, 40, 0, 0]);
    }

    #[test]
    fn extended_targets_have_consistent_labels() {
        for t in Target::all_extended() {
            assert_eq!(t.labels().len(), t.bins().bin_count(), "{t}");
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Target::PacketSize.to_string(), "packet-size");
        assert_eq!(Target::Interarrival.to_string(), "interarrival");
        assert_eq!(Target::ByteVolume.to_string(), "byte-volume");
    }
}
