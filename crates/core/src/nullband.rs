//! A Monte-Carlo sampling distribution for φ — closing the paper's
//! stated gap.
//!
//! §5.2: "Unlike the χ² statistic, which uses the associated χ²
//! distribution for hypothesis testing, we are aware of no such
//! corresponding distribution for the φ metric", and §6: "we do not
//! offer a precise threshold below which all φ-values are acceptable."
//!
//! Both gaps close with one observation: under the null hypothesis that
//! a size-`n` sample is drawn uniformly at random from the (fully known)
//! parent population, the sample's bin counts are multinomial with the
//! population's proportions — so φ's null distribution can simply be
//! *simulated*. [`phi_null_band`] returns the quantiles of that
//! distribution; a measured φ above the 95th-percentile band indicates a
//! *biased* sampling method (timer-driven methods, in the paper's data),
//! not mere sampling noise.

use nettrace::Histogram;
use rand::rngs::StdRng;
use rand::SeedableRng;
use statkit::chi2::chi2_quantile;
use statkit::rand_ext::multinomial;

/// Quantiles of φ's null distribution for a given population and sample
/// size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhiNullBand {
    /// Median of the null φ distribution.
    pub median: f64,
    /// 95th percentile: the paper's missing "acceptable φ" threshold at
    /// the conventional level.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Sample size the band is for.
    pub n: u64,
    /// Monte-Carlo draws used.
    pub draws: u32,
}

impl PhiNullBand {
    /// Whether a measured φ is consistent with unbiased random sampling
    /// at the 5% level.
    #[must_use]
    pub fn consistent_at_95(&self, phi: f64) -> bool {
        phi <= self.p95
    }
}

/// Simulate φ's null distribution: `draws` multinomial samples of size
/// `n` from the population's bin proportions, each scored with the
/// paired-χ² φ formula (`φ = sqrt(χ²ₚ/n)` with
/// `χ²ₚ = Σ (Eᵢ−Oᵢ)²/(Eᵢ+Oᵢ)`, matching
/// [`crate::metrics::disparity`]).
///
/// ```
/// use nettrace::{BinSpec, Histogram};
/// use sampling::nullband::phi_null_band;
/// let pop = Histogram::from_values(
///     BinSpec::paper_packet_size(),
///     (0..1000).map(|i| if i % 2 == 0 { 40 } else { 552 }),
/// );
/// let band = phi_null_band(&pop, 500, 500, 42);
/// // An unbiased sample's phi at n = 500 is typically well under ~0.07.
/// assert!(band.p95 > 0.0 && band.p95 < 0.12);
/// assert!(band.consistent_at_95(band.median));
/// ```
///
/// # Panics
/// Panics if the population is empty, `n` is zero, or `draws` is zero.
#[must_use]
pub fn phi_null_band(population: &Histogram, n: u64, draws: u32, seed: u64) -> PhiNullBand {
    assert!(population.total() > 0, "population must be nonempty");
    assert!(n > 0, "sample size must be positive");
    assert!(draws > 0, "need at least one Monte-Carlo draw");
    let props = population.proportions();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut phis: Vec<f64> = Vec::with_capacity(draws as usize);
    for _ in 0..draws {
        let counts = multinomial(&mut rng, n, &props);
        phis.push(paired_phi(&counts, &props, n));
    }
    phis.sort_by(f64::total_cmp);
    let q = |p: f64| statkit::quantile_sorted(&phis, p);
    PhiNullBand {
        median: q(0.5),
        p95: q(0.95),
        p99: q(0.99),
        n,
        draws,
    }
}

/// φ for one set of sample counts against population proportions, using
/// the same paired-χ² formula as [`crate::metrics::disparity`].
fn paired_phi(counts: &[u64], props: &[f64], n: u64) -> f64 {
    let mut chi2 = 0.0;
    for (&c, &p) in counts.iter().zip(props) {
        let expected = p * n as f64;
        let both = expected + c as f64;
        if both > 0.0 {
            let d = c as f64 - expected;
            chi2 += d * d / both;
        }
    }
    (chi2 / n as f64).sqrt()
}

/// The closed-form large-`n` approximation of the null band: under the
/// null every observed count tracks its expectation, so the paired χ²
/// is ≈ half the goodness-of-fit χ², which is `~ χ²(B−1)`; hence
/// `φ_q ≈ sqrt(χ²_q(B−1) / 2n)`. Cheap, and a cross-check on the
/// Monte-Carlo band (they agree when every expected bin count is
/// comfortably large).
///
/// # Panics
/// Panics if `bins < 2`, `n` is zero, or `q` is outside (0, 1).
#[must_use]
pub fn phi_null_quantile_asymptotic(bins: u32, n: u64, q: f64) -> f64 {
    assert!(bins >= 2, "need at least two bins");
    assert!(n > 0, "sample size must be positive");
    (chi2_quantile(bins - 1, q) / (2.0 * n as f64)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettrace::BinSpec;

    fn population() -> Histogram {
        let mut h = Histogram::new(BinSpec::paper_packet_size());
        // Roughly the study population's proportions.
        for _ in 0..403 {
            h.observe(40);
        }
        for _ in 0..199 {
            h.observe(100);
        }
        for _ in 0..398 {
            h.observe(552);
        }
        h
    }

    #[test]
    fn band_shrinks_with_sample_size() {
        let pop = population();
        let small = phi_null_band(&pop, 100, 2000, 1);
        let large = phi_null_band(&pop, 10_000, 2000, 1);
        assert!(
            large.p95 < small.p95 / 5.0,
            "{} vs {}",
            large.p95,
            small.p95
        );
        // sqrt scaling: factor 100 in n -> factor 10 in phi.
        assert!((small.p95 / large.p95 - 10.0).abs() < 2.0);
    }

    #[test]
    fn band_is_ordered_and_positive() {
        let b = phi_null_band(&population(), 500, 2000, 2);
        assert!(b.median > 0.0);
        assert!(b.median < b.p95);
        assert!(b.p95 < b.p99);
        assert_eq!(b.n, 500);
    }

    #[test]
    fn monte_carlo_agrees_with_asymptotic() {
        let pop = population();
        let mc = phi_null_band(&pop, 5_000, 5_000, 3);
        let asym = phi_null_quantile_asymptotic(3, 5_000, 0.95);
        assert!(
            (mc.p95 / asym - 1.0).abs() < 0.08,
            "MC {} vs asymptotic {asym}",
            mc.p95
        );
    }

    #[test]
    fn unbiased_samples_fall_inside_the_band() {
        // Draw real multinomial samples and check ~95% fall under p95.
        use rand::{rngs::StdRng, SeedableRng};
        use statkit::rand_ext::multinomial;
        let pop = population();
        let band = phi_null_band(&pop, 1000, 4000, 4);
        let props = pop.proportions();
        let mut rng = StdRng::seed_from_u64(99);
        let mut inside = 0;
        let trials = 1000;
        for _ in 0..trials {
            let counts = multinomial(&mut rng, 1000, &props);
            let phi = super::paired_phi(&counts, &props, 1000);
            if band.consistent_at_95(phi) {
                inside += 1;
            }
        }
        let rate = f64::from(inside) / f64::from(trials);
        assert!((rate - 0.95).abs() < 0.03, "coverage {rate}");
    }

    #[test]
    fn biased_sample_is_flagged() {
        // A sample with systematically shifted proportions exceeds the
        // band even though its size matches.
        let pop = population();
        let band = phi_null_band(&pop, 2_000, 2000, 5);
        // Sample proportions (0.55, 0.10, 0.35) vs (0.403, 0.199, 0.398).
        let counts = [1100u64, 200, 700];
        let props = pop.proportions();
        let phi = super::paired_phi(&counts, &props, 2000);
        assert!(
            !band.consistent_at_95(phi),
            "phi {phi} vs band {}",
            band.p95
        );
    }

    #[test]
    #[should_panic(expected = "sample size must be positive")]
    fn zero_n_panics() {
        let _ = phi_null_band(&population(), 0, 10, 0);
    }
}
