//! The [`Sampler`] trait and the [`MethodSpec`] configuration type.
//!
//! A sampler is an event-driven decision machine: for each arriving
//! packet it answers, in O(1) and without buffering, whether that packet
//! enters the sample. This is the deployment shape of the paper's §2 —
//! the T3 backbone's forwarding firmware selects "currently every
//! fiftieth" packet header and forwards it to the characterization
//! processor.

use crate::geometric::GeometricSkipSampler;
use crate::random::SimpleRandomSampler;
use crate::stratified::StratifiedSampler;
use crate::systematic::SystematicSampler;
use crate::timer::{StratifiedTimerSampler, SystematicTimerSampler};
use nettrace::{Micros, PacketRecord};
use std::fmt;

/// A degenerate sampler configuration, reported instead of panicking by
/// the `try_*` constructors and [`MethodSpec::try_build`].
///
/// The `Display` messages match the panic messages of the original
/// asserting constructors, so `build` (which delegates here and panics
/// on error) is behavior-compatible with the pre-fallible API.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BuildError {
    /// A packet-count interval of zero (systematic sampling).
    ZeroInterval,
    /// A systematic start offset at or past the interval.
    OffsetNotBelowInterval {
        /// The rejected offset.
        offset: usize,
        /// The interval it must stay below.
        interval: usize,
    },
    /// A stratification bucket of zero packets.
    ZeroBucket,
    /// A timer period of zero microseconds.
    ZeroPeriod,
    /// A sampling fraction outside `(0, 1]` (NaN included).
    FractionOutOfRange(f64),
    /// A geometric mean interval of zero.
    ZeroMeanInterval,
    /// An empty population where the method needs `N` up front.
    EmptyPopulation,
    /// Asking simple random sampling for more packets than exist.
    SampleExceedsPopulation {
        /// Requested sample size.
        sample: usize,
        /// Available population.
        population: usize,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            BuildError::ZeroInterval => write!(f, "interval must be positive"),
            BuildError::OffsetNotBelowInterval { offset, interval } => {
                write!(f, "offset {offset} must be below interval {interval}")
            }
            BuildError::ZeroBucket => write!(f, "bucket size must be positive"),
            BuildError::ZeroPeriod => write!(f, "timer period must be positive"),
            BuildError::FractionOutOfRange(fr) => {
                write!(f, "fraction must be in (0,1], got {fr}")
            }
            BuildError::ZeroMeanInterval => write!(f, "mean interval must be positive"),
            BuildError::EmptyPopulation => write!(f, "population must be positive"),
            BuildError::SampleExceedsPopulation { sample, population } => {
                write!(f, "cannot select {sample} from {population}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// An event-driven packet sampler. `Send` is a supertrait so boxed
/// samplers can live inside per-shard state handed to worker pools
/// (every in-tree sampler is plain owned data).
pub trait Sampler: Send {
    /// Offer one arriving packet; returns `true` if it is selected into
    /// the sample. Packets must be offered in arrival order.
    fn offer(&mut self, pkt: &PacketRecord) -> bool;

    /// Offer a run of packets by their arrival timestamps, appending
    /// `base + i` to `out` for every selected element `i` — the
    /// columnar hot path over an SoA timestamp column.
    ///
    /// **Contract:** the selection must be bit-identical to offering
    /// the same run through [`offer`](Sampler::offer) one packet at a
    /// time, including the positions consumed from any random stream.
    /// The default implementation guarantees this by delegating to
    /// `offer` with a synthesized record carrying only the timestamp —
    /// sound because a sampler's decision depends only on the arrival
    /// schedule, never on packet contents (the paper's §4 methods are
    /// content-blind by construction). Implementations override this
    /// with equivalent strided / skip-jump index math for speed.
    fn offer_ts_batch(&mut self, base: usize, ts: &[u64], out: &mut Vec<usize>) {
        for (i, &t) in ts.iter().enumerate() {
            if self.offer(&PacketRecord::new(Micros(t), 0)) {
                out.push(base + i);
            }
        }
    }

    /// Restore the initial state (counters, schedules, and the random
    /// stream position are all reset to their post-construction values).
    fn reset(&mut self);

    /// Stable short name used as the `method` label on metrics.
    fn method_name(&self) -> &'static str {
        "unknown"
    }
}

/// Run a sampler over a packet slice, returning the *indices* of selected
/// packets.
///
/// Indices (rather than copies) let characterization targets look up
/// per-packet attributes computed in the parent population — in
/// particular each packet's interarrival time to its *population*
/// predecessor, which is how the interarrival distribution is sampled
/// (see [`crate::targets::Target::Interarrival`]).
pub fn select_indices<S: Sampler + ?Sized>(
    sampler: &mut S,
    packets: &[PacketRecord],
) -> Vec<usize> {
    let span = obskit::span_labeled("sampling_select", &[("method", sampler.method_name())]);
    let selected: Vec<usize> = packets
        .iter()
        .enumerate()
        .filter_map(|(i, p)| sampler.offer(p).then_some(i))
        .collect();
    // Metrics are flushed once per batch, not per packet, so the offer()
    // hot loop stays free of atomic traffic.
    if obskit::recording_enabled() {
        let labels = [("method", sampler.method_name())];
        obskit::counter_labeled("sampling_packets_examined_total", &labels)
            .add(packets.len() as u64);
        obskit::counter_labeled("sampling_packets_selected_total", &labels)
            .add(selected.len() as u64);
    }
    drop(span);
    selected
}

/// Columnar sibling of [`select_indices`]: run a sampler over a flat
/// timestamp column (one element per packet, arrival order), returning
/// the indices of selected packets.
///
/// Dispatches once into [`Sampler::offer_ts_batch`] instead of once per
/// packet, so the strided/skip-jump overrides run a tight loop over a
/// dense `&[u64]`. Selection — and therefore every φ computed from it —
/// is bit-identical to [`select_indices`] over the records the column
/// was projected from; telemetry mirrors it counter for counter.
pub fn select_indices_ts<S: Sampler + ?Sized>(sampler: &mut S, ts: &[u64]) -> Vec<usize> {
    let span = obskit::span_labeled("sampling_select", &[("method", sampler.method_name())]);
    let mut selected = Vec::new();
    sampler.offer_ts_batch(0, ts, &mut selected);
    // Metrics are flushed once per batch, not per packet, so the batch
    // hot loop stays free of atomic traffic.
    if obskit::recording_enabled() {
        let labels = [("method", sampler.method_name())];
        obskit::counter_labeled("sampling_packets_examined_total", &labels).add(ts.len() as u64);
        obskit::counter_labeled("sampling_packets_selected_total", &labels)
            .add(selected.len() as u64);
    }
    drop(span);
    selected
}

/// The broad class of a sampling method (paper §4, Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodClass {
    /// Deterministic every-k-th selection.
    Systematic,
    /// One random pick per bucket/stratum.
    StratifiedRandom,
    /// Uniform selection over the whole population.
    SimpleRandom,
}

/// A fully specified sampling method: class × trigger × granularity.
///
/// `MethodSpec` is configuration; [`MethodSpec::build`] instantiates the
/// concrete sampler for a particular population window and replication.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MethodSpec {
    /// Every `interval`-th packet (1-in-k), deterministic.
    Systematic {
        /// Selection interval `k` (the T3 backbone ran `k = 50`).
        interval: usize,
    },
    /// One uniform pick from each bucket of `bucket` consecutive packets.
    StratifiedRandom {
        /// Bucket size `k` (the sampling fraction is `1/k`).
        bucket: usize,
    },
    /// `n ≈ N·fraction` packets drawn uniformly from the population
    /// (Knuth's sequential Algorithm S; needs the window's packet count).
    SimpleRandom {
        /// Target sampling fraction in `(0, 1]`.
        fraction: f64,
    },
    /// Timer-driven systematic: when the periodic timer has expired,
    /// select the next packet to arrive.
    SystematicTimer {
        /// Timer period.
        period: Micros,
    },
    /// Timer-driven stratified: one uniformly-placed firing time per
    /// period; the next packet at/after it is selected.
    StratifiedTimer {
        /// Stratum length.
        period: Micros,
    },
    /// i.i.d. 1-in-k selection via geometric skip counts (the sFlow
    /// lineage of this paper's method; an extension beyond the paper's
    /// five).
    GeometricSkip {
        /// Mean selection interval `k`.
        mean_interval: usize,
    },
}

impl MethodSpec {
    /// The paper's five methods at a given packet granularity `k` /
    /// equivalent timer period, in the order the paper lists them.
    ///
    /// The timer period is chosen to produce the same *expected* sampling
    /// fraction on a population with mean rate `mean_pps`: one selection
    /// per `k / mean_pps` seconds.
    #[must_use]
    pub fn paper_five(k: usize, mean_pps: f64) -> [MethodSpec; 5] {
        let period = Micros((k as f64 / mean_pps * 1e6).round().max(1.0) as u64);
        [
            MethodSpec::Systematic { interval: k },
            MethodSpec::StratifiedRandom { bucket: k },
            MethodSpec::SimpleRandom {
                fraction: 1.0 / k as f64,
            },
            MethodSpec::SystematicTimer { period },
            MethodSpec::StratifiedTimer { period },
        ]
    }

    /// Whether this method is triggered by a timer rather than by packet
    /// arrival counts.
    #[must_use]
    pub fn is_timer_driven(&self) -> bool {
        matches!(
            self,
            MethodSpec::SystematicTimer { .. } | MethodSpec::StratifiedTimer { .. }
        )
    }

    /// The method's class.
    #[must_use]
    pub fn class(&self) -> MethodClass {
        match self {
            MethodSpec::Systematic { .. } | MethodSpec::SystematicTimer { .. } => {
                MethodClass::Systematic
            }
            MethodSpec::StratifiedRandom { .. } | MethodSpec::StratifiedTimer { .. } => {
                MethodClass::StratifiedRandom
            }
            MethodSpec::SimpleRandom { .. } | MethodSpec::GeometricSkip { .. } => {
                MethodClass::SimpleRandom
            }
        }
    }

    /// Build the concrete sampler for one replication.
    ///
    /// * `population_len` — packet count of the window (used by simple
    ///   random sampling's exact n-of-N algorithm);
    /// * `window_start` — first timestamp of the window (anchors timer
    ///   schedules);
    /// * `replication` — replication index; deterministic methods vary
    ///   their start offset with it (the paper "varied the point within
    ///   the data set at which to begin the sampling procedure"),
    ///   randomized methods fold it into their seed;
    /// * `seed` — base random seed.
    ///
    /// # Panics
    /// Panics on degenerate configuration (zero interval/bucket/period,
    /// fraction outside `(0, 1]`).
    #[must_use]
    pub fn build(
        &self,
        population_len: usize,
        window_start: Micros,
        replication: u64,
        seed: u64,
    ) -> Box<dyn Sampler> {
        match self.try_build(population_len, window_start, replication, seed) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`MethodSpec::build`]: the same construction, but a
    /// degenerate configuration (zero interval/bucket/period, fraction
    /// outside `(0, 1]`, empty population for simple random sampling)
    /// comes back as a typed [`BuildError`] instead of a panic — the
    /// variant CLI front ends need to turn bad `--interval 0`-style
    /// flags into usage errors.
    ///
    /// # Errors
    /// Returns the first [`BuildError`] the configuration trips.
    pub fn try_build(
        &self,
        population_len: usize,
        window_start: Micros,
        replication: u64,
        seed: u64,
    ) -> Result<Box<dyn Sampler>, BuildError> {
        let seed = seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(replication);
        match *self {
            MethodSpec::Systematic { interval } => {
                if interval == 0 {
                    return Err(BuildError::ZeroInterval);
                }
                let offset = (replication as usize) % interval;
                Ok(Box::new(SystematicSampler::try_with_offset(
                    interval, offset,
                )?))
            }
            MethodSpec::StratifiedRandom { bucket } => {
                Ok(Box::new(StratifiedSampler::try_new(bucket, seed)?))
            }
            MethodSpec::SimpleRandom { fraction } => {
                if !(fraction > 0.0 && fraction <= 1.0) {
                    return Err(BuildError::FractionOutOfRange(fraction));
                }
                if population_len == 0 {
                    return Err(BuildError::EmptyPopulation);
                }
                let n =
                    ((population_len as f64 * fraction).round() as usize).clamp(1, population_len);
                Ok(Box::new(SimpleRandomSampler::try_new(
                    population_len,
                    n,
                    seed,
                )?))
            }
            MethodSpec::SystematicTimer { period } => {
                if period.as_u64() == 0 {
                    return Err(BuildError::ZeroPeriod);
                }
                // Spread replication start phases across the period.
                let phase = (replication.wrapping_mul(2_654_435_761)) % period.as_u64();
                Ok(Box::new(SystematicTimerSampler::try_new(
                    period,
                    Micros(window_start.as_u64().saturating_add(phase)),
                )?))
            }
            MethodSpec::StratifiedTimer { period } => Ok(Box::new(
                StratifiedTimerSampler::try_new(period, window_start, seed)?,
            )),
            MethodSpec::GeometricSkip { mean_interval } => Ok(Box::new(
                GeometricSkipSampler::try_new(mean_interval, seed)?,
            )),
        }
    }
}

impl fmt::Display for MethodSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MethodSpec::Systematic { interval } => write!(f, "systematic(1/{interval})"),
            MethodSpec::StratifiedRandom { bucket } => write!(f, "stratified(1/{bucket})"),
            MethodSpec::SimpleRandom { fraction } => {
                write!(f, "random(f={fraction:.6})")
            }
            MethodSpec::SystematicTimer { period } => {
                write!(f, "sys-timer({period})")
            }
            MethodSpec::StratifiedTimer { period } => {
                write!(f, "strat-timer({period})")
            }
            MethodSpec::GeometricSkip { mean_interval } => {
                write!(f, "geometric(1/{mean_interval})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettrace::Micros;

    fn packets(n: usize) -> Vec<PacketRecord> {
        (0..n)
            .map(|i| PacketRecord::new(Micros(i as u64 * 1000), 100))
            .collect()
    }

    #[test]
    fn paper_five_covers_both_triggers() {
        let five = MethodSpec::paper_five(50, 424.2);
        assert_eq!(five.len(), 5);
        assert_eq!(five.iter().filter(|m| m.is_timer_driven()).count(), 2);
        // Timer period ~ 50/424.2 s ≈ 117,869 µs.
        if let MethodSpec::SystematicTimer { period } = five[3] {
            assert!((period.as_u64() as i64 - 117_869).abs() < 5);
        } else {
            panic!("expected systematic timer in slot 3");
        }
    }

    #[test]
    fn classes_are_assigned() {
        assert_eq!(
            MethodSpec::Systematic { interval: 10 }.class(),
            MethodClass::Systematic
        );
        assert_eq!(
            MethodSpec::StratifiedTimer {
                period: Micros(100)
            }
            .class(),
            MethodClass::StratifiedRandom
        );
        assert_eq!(
            MethodSpec::GeometricSkip { mean_interval: 10 }.class(),
            MethodClass::SimpleRandom
        );
    }

    #[test]
    fn build_produces_working_samplers() {
        let pkts = packets(1000);
        for spec in MethodSpec::paper_five(10, 1000.0) {
            let mut s = spec.build(pkts.len(), Micros(0), 0, 42);
            let selected = select_indices(s.as_mut(), &pkts);
            assert!(
                !selected.is_empty(),
                "{spec} selected nothing from 1000 packets"
            );
            // Roughly 1-in-10 (timer methods approximate).
            assert!(
                selected.len() >= 50 && selected.len() <= 200,
                "{spec}: {}",
                selected.len()
            );
        }
    }

    #[test]
    fn replications_differ() {
        let pkts = packets(100);
        let spec = MethodSpec::Systematic { interval: 10 };
        let a = select_indices(spec.build(100, Micros(0), 0, 1).as_mut(), &pkts);
        let b = select_indices(spec.build(100, Micros(0), 1, 1).as_mut(), &pkts);
        assert_ne!(a, b, "offset must vary with replication");
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn same_replication_is_deterministic() {
        let pkts = packets(500);
        for spec in MethodSpec::paper_five(7, 1000.0) {
            let a = select_indices(spec.build(500, Micros(0), 3, 9).as_mut(), &pkts);
            let b = select_indices(spec.build(500, Micros(0), 3, 9).as_mut(), &pkts);
            assert_eq!(a, b, "{spec} must be deterministic");
        }
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(
            MethodSpec::Systematic { interval: 50 }.to_string(),
            "systematic(1/50)"
        );
        assert!(MethodSpec::SimpleRandom { fraction: 0.02 }
            .to_string()
            .starts_with("random"));
    }

    #[test]
    #[should_panic(expected = "fraction must be in (0,1]")]
    fn bad_fraction_panics() {
        let _ = MethodSpec::SimpleRandom { fraction: 1.5 }.build(10, Micros(0), 0, 0);
    }

    fn build_err(spec: MethodSpec, population_len: usize) -> BuildError {
        match spec.try_build(population_len, Micros(0), 0, 1) {
            Err(e) => e,
            Ok(_) => panic!("{spec} unexpectedly built"),
        }
    }

    #[test]
    fn try_build_rejects_degenerate_specs() {
        let cases = [
            (
                MethodSpec::Systematic { interval: 0 },
                BuildError::ZeroInterval,
            ),
            (
                MethodSpec::StratifiedRandom { bucket: 0 },
                BuildError::ZeroBucket,
            ),
            (
                MethodSpec::SimpleRandom { fraction: 0.0 },
                BuildError::FractionOutOfRange(0.0),
            ),
            (
                MethodSpec::SystematicTimer { period: Micros(0) },
                BuildError::ZeroPeriod,
            ),
            (
                MethodSpec::StratifiedTimer { period: Micros(0) },
                BuildError::ZeroPeriod,
            ),
            (
                MethodSpec::GeometricSkip { mean_interval: 0 },
                BuildError::ZeroMeanInterval,
            ),
        ];
        for (spec, want) in cases {
            assert_eq!(build_err(spec, 100), want, "{spec}");
        }
        // NaN and >1 fractions are rejected, not accepted or panicked on.
        assert!(matches!(
            build_err(MethodSpec::SimpleRandom { fraction: f64::NAN }, 100),
            BuildError::FractionOutOfRange(_)
        ));
        // Simple random sampling needs a nonempty population.
        assert_eq!(
            build_err(MethodSpec::SimpleRandom { fraction: 0.5 }, 0),
            BuildError::EmptyPopulation
        );
    }

    #[test]
    fn try_build_matches_build_on_valid_specs() {
        let pkts = packets(500);
        for spec in MethodSpec::paper_five(10, 1000.0) {
            let a = select_indices(spec.build(500, Micros(0), 2, 7).as_mut(), &pkts);
            let b = select_indices(
                spec.try_build(500, Micros(0), 2, 7).unwrap().as_mut(),
                &pkts,
            );
            assert_eq!(a, b, "{spec}");
        }
    }

    /// Every family the workspace ships, at a granularity that
    /// exercises mid-bucket / mid-skip state.
    fn all_specs() -> Vec<MethodSpec> {
        let mut specs = MethodSpec::paper_five(7, 1000.0).to_vec();
        specs.push(MethodSpec::GeometricSkip { mean_interval: 7 });
        specs.push(MethodSpec::GeometricSkip { mean_interval: 1 });
        specs
    }

    #[test]
    fn batch_selection_is_bit_identical_to_per_packet_offers() {
        let pkts = packets(500);
        let ts: Vec<u64> = pkts.iter().map(|p| p.timestamp.as_u64()).collect();
        for spec in all_specs() {
            for rep in 0..5u64 {
                let pull =
                    select_indices(spec.build(pkts.len(), Micros(0), rep, 1993).as_mut(), &pkts);
                let batch =
                    select_indices_ts(spec.build(pkts.len(), Micros(0), rep, 1993).as_mut(), &ts);
                assert_eq!(pull, batch, "{spec} rep {rep}");
            }
        }
    }

    #[test]
    fn chunked_batches_carry_state_across_chunk_seams() {
        // Chunk sizes coprime with every interval/bucket in use, so
        // seams land mid-bucket and mid-skip.
        let pkts = packets(500);
        let ts: Vec<u64> = pkts.iter().map(|p| p.timestamp.as_u64()).collect();
        for spec in all_specs() {
            let pull = select_indices(spec.build(pkts.len(), Micros(0), 3, 42).as_mut(), &pkts);
            for chunk in [1usize, 3, 11, 499, 500] {
                let mut s = spec.build(pkts.len(), Micros(0), 3, 42);
                let mut out = Vec::new();
                let mut base = 0;
                for run in ts.chunks(chunk) {
                    s.offer_ts_batch(base, run, &mut out);
                    base += run.len();
                }
                assert_eq!(pull, out, "{spec} chunk {chunk}");
            }
        }
    }

    #[test]
    fn batch_resumes_after_reset_and_partial_runs() {
        // A partial per-packet prefix followed by a batch over the rest
        // must equal the all-batch run: the overrides read and write
        // the same state the per-packet path does.
        let pkts = packets(200);
        let ts: Vec<u64> = pkts.iter().map(|p| p.timestamp.as_u64()).collect();
        for spec in all_specs() {
            let whole = select_indices_ts(spec.build(pkts.len(), Micros(0), 0, 7).as_mut(), &ts);
            let mut s = spec.build(pkts.len(), Micros(0), 0, 7);
            let mut mixed: Vec<usize> = pkts[..37]
                .iter()
                .enumerate()
                .filter_map(|(i, p)| s.offer(p).then_some(i))
                .collect();
            s.offer_ts_batch(37, &ts[37..], &mut mixed);
            assert_eq!(whole, mixed, "{spec} mixed pull/batch");
            s.reset();
            let mut again = Vec::new();
            s.offer_ts_batch(0, &ts, &mut again);
            assert_eq!(whole, again, "{spec} after reset");
        }
    }

    #[test]
    fn build_error_messages_match_historic_panics() {
        assert_eq!(
            BuildError::ZeroInterval.to_string(),
            "interval must be positive"
        );
        assert_eq!(
            BuildError::OffsetNotBelowInterval {
                offset: 5,
                interval: 5
            }
            .to_string(),
            "offset 5 must be below interval 5"
        );
        assert_eq!(
            BuildError::ZeroBucket.to_string(),
            "bucket size must be positive"
        );
        assert_eq!(
            BuildError::ZeroPeriod.to_string(),
            "timer period must be positive"
        );
    }
}
