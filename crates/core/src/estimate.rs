//! Population estimation from samples.
//!
//! Beyond scoring distributions, an operator uses samples to *estimate*
//! population quantities: total traffic (the billing example of §5.2),
//! mean packet size, and class proportions (protocol/port mix, §8).
//! This module provides the standard simple-random-sampling estimators
//! with their standard errors, including the finite-population
//! correction — the paper's populations are finite and fully known, so
//! the correction is observable in experiments.

use nettrace::PacketRecord;
use statkit::special::normal_quantile;
use statkit::Moments;

/// A mean estimate with its sampling error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanEstimate {
    /// The sample mean.
    pub mean: f64,
    /// Estimated standard error of the mean (with finite-population
    /// correction).
    pub std_error: f64,
    /// Sample size.
    pub n: usize,
}

impl MeanEstimate {
    /// Two-sided confidence interval at the given level.
    ///
    /// # Panics
    /// Panics unless `confidence` is in (0, 1).
    #[must_use]
    pub fn confidence_interval(&self, confidence: f64) -> (f64, f64) {
        let z = normal_quantile(1.0 - (1.0 - confidence) / 2.0);
        (
            self.mean - z * self.std_error,
            self.mean + z * self.std_error,
        )
    }

    /// Whether the interval at `confidence` covers `truth`.
    #[must_use]
    pub fn covers(&self, truth: f64, confidence: f64) -> bool {
        let (lo, hi) = self.confidence_interval(confidence);
        (lo..=hi).contains(&truth)
    }
}

/// Estimate the population mean packet size from the packets at
/// `selected` indices, treating them as a simple random sample from a
/// population of `population_len` packets.
///
/// # Panics
/// Panics if `selected` is empty or an index is out of bounds.
#[must_use]
pub fn mean_size(
    packets: &[PacketRecord],
    selected: &[usize],
    population_len: usize,
) -> MeanEstimate {
    assert!(!selected.is_empty(), "cannot estimate from an empty sample");
    let m = Moments::from_values(selected.iter().map(|&i| f64::from(packets[i].size)));
    let n = selected.len();
    let fpc = if population_len > 0 {
        (1.0 - n as f64 / population_len as f64).max(0.0)
    } else {
        1.0
    };
    let var_mean = if n > 1 {
        m.sample_variance() / n as f64 * fpc
    } else {
        f64::INFINITY
    };
    MeanEstimate {
        mean: m.mean(),
        std_error: var_mean.sqrt(),
        n,
    }
}

/// Horvitz–Thompson style total estimate: scale the sampled count/bytes
/// by the inverse sampling fraction.
///
/// # Panics
/// Panics unless `fraction` is in (0, 1].
#[must_use]
pub fn estimated_total(sampled_value: f64, fraction: f64) -> f64 {
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "fraction must be in (0,1], got {fraction}"
    );
    sampled_value / fraction
}

/// A proportion estimate with its sampling error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProportionEstimate {
    /// The sample proportion.
    pub p: f64,
    /// Standard error (with finite-population correction).
    pub std_error: f64,
    /// Sample size.
    pub n: usize,
}

impl ProportionEstimate {
    /// Two-sided (Wald) confidence interval, clamped to [0, 1].
    ///
    /// # Panics
    /// Panics unless `confidence` is in (0, 1).
    #[must_use]
    pub fn confidence_interval(&self, confidence: f64) -> (f64, f64) {
        let z = normal_quantile(1.0 - (1.0 - confidence) / 2.0);
        (
            (self.p - z * self.std_error).max(0.0),
            (self.p + z * self.std_error).min(1.0),
        )
    }
}

/// Estimate a class proportion (e.g. "fraction of packets that are UDP")
/// from `hits` successes in a sample of `n`, drawn from a population of
/// `population_len`.
///
/// # Panics
/// Panics if `n` is zero or `hits > n`.
#[must_use]
pub fn proportion(hits: usize, n: usize, population_len: usize) -> ProportionEstimate {
    assert!(n > 0, "cannot estimate a proportion from an empty sample");
    assert!(hits <= n, "hits cannot exceed sample size");
    let p = hits as f64 / n as f64;
    let fpc = if population_len > 0 {
        (1.0 - n as f64 / population_len as f64).max(0.0)
    } else {
        1.0
    };
    let var = p * (1.0 - p) / n as f64 * fpc;
    ProportionEstimate {
        p,
        std_error: var.sqrt(),
        n,
    }
}

/// Variance estimate of a **systematic** sample's mean via the
/// successive-difference estimator (Cochran §8.11):
/// `v(ȳ) = (1−f) / (2n(n−1)) · Σ (yᵢ − yᵢ₋₁)²`.
///
/// A single systematic sample carries no unbiased variance estimator;
/// successive differences are the standard serviceable approximation —
/// good when the population has no periodicity at the sampling interval
/// (the case the paper establishes for WAN traffic), pessimistic under a
/// trend, and misleading under resonance.
///
/// # Panics
/// Panics with fewer than two selected packets.
#[must_use]
pub fn systematic_mean_size(
    packets: &[PacketRecord],
    selected: &[usize],
    population_len: usize,
) -> MeanEstimate {
    assert!(
        selected.len() >= 2,
        "successive-difference estimator needs n >= 2"
    );
    let values: Vec<f64> = selected
        .iter()
        .map(|&i| f64::from(packets[i].size))
        .collect();
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let sum_sq_diff: f64 = values.windows(2).map(|w| (w[1] - w[0]).powi(2)).sum();
    let f = if population_len > 0 {
        (values.len() as f64 / population_len as f64).min(1.0)
    } else {
        0.0
    };
    let var = (1.0 - f) * sum_sq_diff / (2.0 * n * (n - 1.0));
    MeanEstimate {
        mean,
        std_error: var.max(0.0).sqrt(),
        n: values.len(),
    }
}

/// Variance estimate of a **stratified** (one unit per stratum) sample's
/// mean via the collapsed-strata estimator (Cochran §5A.12): adjacent
/// strata are paired and each pair's squared difference estimates twice
/// the within-pair variance:
/// `v(ȳ) = (1−f) / n² · Σ_pairs (y₂ⱼ − y₂ⱼ₊₁)² / 2 · (n / n_pairs)`.
/// Slightly conservative (it absorbs between-stratum differences).
///
/// # Panics
/// Panics with fewer than two selected packets.
#[must_use]
pub fn stratified_mean_size(
    packets: &[PacketRecord],
    selected: &[usize],
    population_len: usize,
) -> MeanEstimate {
    assert!(
        selected.len() >= 2,
        "collapsed-strata estimator needs n >= 2"
    );
    let values: Vec<f64> = selected
        .iter()
        .map(|&i| f64::from(packets[i].size))
        .collect();
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let mut pair_sum = 0.0;
    let mut pairs = 0.0;
    let mut iter = values.chunks_exact(2);
    for pair in &mut iter {
        pair_sum += (pair[0] - pair[1]).powi(2) / 2.0;
        pairs += 1.0;
    }
    let f = if population_len > 0 {
        (values.len() as f64 / population_len as f64).min(1.0)
    } else {
        0.0
    };
    // Mean of per-pair variance estimates, scaled to the mean of n units.
    let unit_var = if pairs > 0.0 { pair_sum / pairs } else { 0.0 };
    let var = (1.0 - f) * unit_var / n;
    MeanEstimate {
        mean,
        std_error: var.max(0.0).sqrt(),
        n: values.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::{select_indices, Sampler};
    use crate::SimpleRandomSampler;
    use nettrace::Micros;

    fn population(n: usize) -> Vec<PacketRecord> {
        (0..n)
            .map(|i| {
                let size = if (i * 2654435761) % 100 < 40 { 40 } else { 552 };
                PacketRecord::new(Micros(i as u64 * 1000), size)
            })
            .collect()
    }

    #[test]
    fn full_sample_recovers_exact_mean_with_zero_error() {
        let pop = population(1000);
        let all: Vec<usize> = (0..pop.len()).collect();
        let est = mean_size(&pop, &all, pop.len());
        let truth = pop.iter().map(|p| f64::from(p.size)).sum::<f64>() / pop.len() as f64;
        assert!((est.mean - truth).abs() < 1e-9);
        // fpc drives the error to zero for a census.
        assert!(est.std_error < 1e-9);
    }

    #[test]
    fn confidence_intervals_cover_at_nominal_rate() {
        let pop = population(5000);
        let truth = pop.iter().map(|p| f64::from(p.size)).sum::<f64>() / pop.len() as f64;
        let mut covered = 0;
        let trials = 400;
        for seed in 0..trials {
            let mut s = SimpleRandomSampler::new(pop.len(), 200, seed);
            let sel = select_indices(&mut s as &mut dyn Sampler, &pop);
            if mean_size(&pop, &sel, pop.len()).covers(truth, 0.95) {
                covered += 1;
            }
        }
        let rate = f64::from(covered) / f64::from(trials as u32);
        assert!(
            (rate - 0.95).abs() < 0.04,
            "coverage {rate} should be near 0.95"
        );
    }

    #[test]
    fn estimated_total_scales_by_inverse_fraction() {
        assert!((estimated_total(100.0, 0.02) - 5000.0).abs() < 1e-9);
        assert!((estimated_total(7.0, 1.0) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn proportion_estimate_basics() {
        let est = proportion(25, 100, 100_000);
        assert!((est.p - 0.25).abs() < 1e-12);
        let (lo, hi) = est.confidence_interval(0.95);
        assert!(lo < 0.25 && 0.25 < hi);
        assert!(lo >= 0.0 && hi <= 1.0);
        // Degenerate proportions clamp cleanly.
        let zero = proportion(0, 50, 1000);
        assert_eq!(zero.confidence_interval(0.95).0, 0.0);
        let one = proportion(50, 50, 1000);
        assert_eq!(one.confidence_interval(0.95).1, 1.0);
    }

    #[test]
    fn proportion_error_shrinks_with_n() {
        let small = proportion(10, 40, 1_000_000);
        let large = proportion(1000, 4000, 1_000_000);
        assert!(large.std_error < small.std_error);
    }

    #[test]
    fn fpc_reduces_error() {
        let infinite = proportion(50, 200, usize::MAX);
        let finite = proportion(50, 200, 400); // half the population sampled
        assert!(finite.std_error < infinite.std_error * 0.8);
    }

    #[test]
    fn successive_difference_tracks_replication_truth() {
        // On an unstructured population, the successive-difference
        // estimator's predicted std error should match the spread of the
        // estimator across offsets.
        use crate::SystematicSampler;
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        let pop: Vec<PacketRecord> = (0..50_000)
            .map(|i| PacketRecord::new(Micros(i as u64 * 1000), rng.random_range(40..=552)))
            .collect();
        let k = 100;
        let mut estimates = Vec::new();
        let mut predicted = Vec::new();
        for offset in 0..k {
            let mut s = SystematicSampler::with_offset(k, offset);
            let sel = select_indices(&mut s as &mut dyn Sampler, &pop);
            let est = systematic_mean_size(&pop, &sel, pop.len());
            estimates.push(est.mean);
            predicted.push(est.std_error);
        }
        let m = statkit::Moments::from_values(estimates.iter().copied());
        let actual_se = m.std_dev();
        let mean_predicted = predicted.iter().sum::<f64>() / predicted.len() as f64;
        assert!(
            (mean_predicted / actual_se - 1.0).abs() < 0.25,
            "predicted {mean_predicted} vs actual {actual_se}"
        );
    }

    #[test]
    fn collapsed_strata_tracks_replication_truth() {
        use crate::StratifiedSampler;
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(78);
        let pop: Vec<PacketRecord> = (0..50_000)
            .map(|i| PacketRecord::new(Micros(i as u64 * 1000), rng.random_range(40..=552)))
            .collect();
        let mut estimates = Vec::new();
        let mut predicted = Vec::new();
        for seed in 0..200u64 {
            let mut s = StratifiedSampler::new(100, seed);
            let sel = select_indices(&mut s as &mut dyn Sampler, &pop);
            let est = stratified_mean_size(&pop, &sel, pop.len());
            estimates.push(est.mean);
            predicted.push(est.std_error);
        }
        let m = statkit::Moments::from_values(estimates.iter().copied());
        let actual_se = m.std_dev();
        let mean_predicted = predicted.iter().sum::<f64>() / predicted.len() as f64;
        // Collapsed strata is conservative: predicted >= actual, within 2x.
        assert!(
            mean_predicted > actual_se * 0.8 && mean_predicted < actual_se * 2.0,
            "predicted {mean_predicted} vs actual {actual_se}"
        );
    }

    #[test]
    fn successive_difference_detects_trend_pessimism() {
        // On a pure trend the estimator is nearly zero-variance between
        // offsets, and successive differences overstate the error —
        // documented behavior worth pinning.
        let pop: Vec<PacketRecord> = (0..10_000)
            .map(|i| PacketRecord::new(Micros(i as u64), 40 + (i / 20) as u16))
            .collect();
        let mut s = crate::SystematicSampler::new(100);
        let sel = select_indices(&mut s as &mut dyn Sampler, &pop);
        let est = systematic_mean_size(&pop, &sel, pop.len());
        assert!(est.std_error > 0.0);
    }

    #[test]
    #[should_panic(expected = "needs n >= 2")]
    fn variance_estimators_need_two_points() {
        let pop = population(10);
        let _ = systematic_mean_size(&pop, &[0], 10);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        let pop = population(10);
        let _ = mean_size(&pop, &[], 10);
    }

    #[test]
    #[should_panic(expected = "hits cannot exceed")]
    fn bad_hits_panics() {
        let _ = proportion(5, 4, 100);
    }

    #[test]
    #[should_panic(expected = "fraction must be in (0,1]")]
    fn bad_fraction_panics() {
        let _ = estimated_total(1.0, 0.0);
    }
}
