//! Simple random sampling: exactly `n` of `N`, uniformly, in one
//! streaming pass.
//!
//! "Simple random sampling uniformly selects n packets from the total
//! population at random" (paper §4). The classic way to do this without
//! materializing the population is Knuth's *selection sampling*
//! (Algorithm S, TAOCP vol. 2 §3.4.2): when `m` packets are still needed
//! out of `r` remaining, select the next packet with probability `m/r`.
//! Every `N choose n` subset is equally likely, and the pass is O(1) per
//! packet.
//!
//! Algorithm S needs the population size `N` up front — fine for trace
//! replay; for unbounded streams use [`crate::reservoir::ReservoirSampler`].

use crate::sampler::{BuildError, Sampler};
use nettrace::PacketRecord;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Exact n-of-N uniform sampling (Knuth Algorithm S).
#[derive(Debug)]
pub struct SimpleRandomSampler {
    population: usize,
    sample: usize,
    seed: u64,
    rng: StdRng,
    remaining_pop: usize,
    remaining_sample: usize,
}

impl SimpleRandomSampler {
    /// Select exactly `sample` of the next `population` packets.
    ///
    /// # Panics
    /// Panics if `sample > population` or `population` is zero.
    #[must_use]
    pub fn new(population: usize, sample: usize, seed: u64) -> Self {
        match Self::try_new(population, sample, seed) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`SimpleRandomSampler::new`].
    ///
    /// # Errors
    /// [`BuildError::EmptyPopulation`] if `population` is zero,
    /// [`BuildError::SampleExceedsPopulation`] if `sample > population`.
    pub fn try_new(population: usize, sample: usize, seed: u64) -> Result<Self, BuildError> {
        if population == 0 {
            return Err(BuildError::EmptyPopulation);
        }
        if sample > population {
            return Err(BuildError::SampleExceedsPopulation { sample, population });
        }
        Ok(SimpleRandomSampler {
            population,
            sample,
            seed,
            rng: StdRng::seed_from_u64(seed),
            remaining_pop: population,
            remaining_sample: sample,
        })
    }

    /// The configured population size `N`.
    #[must_use]
    pub fn population(&self) -> usize {
        self.population
    }

    /// The configured sample size `n`.
    #[must_use]
    pub fn sample_size(&self) -> usize {
        self.sample
    }
}

impl Sampler for SimpleRandomSampler {
    fn offer(&mut self, _pkt: &PacketRecord) -> bool {
        if self.remaining_pop == 0 || self.remaining_sample == 0 {
            // Offers beyond the declared population are never selected.
            self.remaining_pop = self.remaining_pop.saturating_sub(1);
            return false;
        }
        // Select with probability remaining_sample / remaining_pop.
        let selected =
            (self.rng.random::<f64>() * self.remaining_pop as f64) < self.remaining_sample as f64;
        self.remaining_pop -= 1;
        if selected {
            self.remaining_sample -= 1;
        }
        selected
    }

    /// Tight-loop override: the same Algorithm S recurrence — one draw
    /// per in-population element, in the same stream positions — minus
    /// the per-packet dispatch. Once the sample or the population is
    /// exhausted, the rest of the run is rejected in O(1) (the
    /// per-packet path's chain of `saturating_sub(1)` collapses to one
    /// saturating subtraction of the remaining run length).
    fn offer_ts_batch(&mut self, base: usize, ts: &[u64], out: &mut Vec<usize>) {
        let n = ts.len();
        let mut i = 0;
        while i < n {
            if self.remaining_pop == 0 || self.remaining_sample == 0 {
                self.remaining_pop = self.remaining_pop.saturating_sub(n - i);
                return;
            }
            let selected = (self.rng.random::<f64>() * self.remaining_pop as f64)
                < self.remaining_sample as f64;
            self.remaining_pop -= 1;
            if selected {
                self.remaining_sample -= 1;
                out.push(base + i);
            }
            i += 1;
        }
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
        self.remaining_pop = self.population;
        self.remaining_sample = self.sample;
    }

    fn method_name(&self) -> &'static str {
        "random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::select_indices;
    use nettrace::Micros;

    fn packets(n: usize) -> Vec<PacketRecord> {
        (0..n)
            .map(|i| PacketRecord::new(Micros(i as u64), 40))
            .collect()
    }

    #[test]
    fn selects_exactly_n() {
        let pkts = packets(1000);
        for seed in 0..50 {
            let mut s = SimpleRandomSampler::new(1000, 37, seed);
            assert_eq!(select_indices(&mut s, &pkts).len(), 37, "seed {seed}");
        }
    }

    #[test]
    fn n_equals_population_selects_all() {
        let pkts = packets(25);
        let mut s = SimpleRandomSampler::new(25, 25, 1);
        assert_eq!(select_indices(&mut s, &pkts).len(), 25);
    }

    #[test]
    fn n_zero_selects_none() {
        let pkts = packets(25);
        let mut s = SimpleRandomSampler::new(25, 0, 1);
        assert!(select_indices(&mut s, &pkts).is_empty());
    }

    #[test]
    fn uniform_inclusion_probability() {
        // Each of N=20 positions should be included with probability
        // n/N = 0.25, estimated over many seeds.
        let pkts = packets(20);
        let mut counts = [0u32; 20];
        let trials = 20_000u32;
        for seed in 0..u64::from(trials) {
            let mut s = SimpleRandomSampler::new(20, 5, seed);
            for i in select_indices(&mut s, &pkts) {
                counts[i] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            let p = f64::from(c) / f64::from(trials);
            assert!((p - 0.25).abs() < 0.015, "position {i}: p = {p}");
        }
    }

    #[test]
    fn no_order_bias_in_pairs() {
        // P(both of two fixed positions included) should be
        // n(n-1)/(N(N-1)) regardless of their distance.
        let pkts = packets(10);
        let (mut both_adjacent, mut both_far) = (0u32, 0u32);
        let trials = 30_000u64;
        for seed in 0..trials {
            let mut s = SimpleRandomSampler::new(10, 4, seed);
            let sel = select_indices(&mut s, &pkts);
            if sel.contains(&0) && sel.contains(&1) {
                both_adjacent += 1;
            }
            if sel.contains(&0) && sel.contains(&9) {
                both_far += 1;
            }
        }
        let expected = 4.0 * 3.0 / (10.0 * 9.0);
        let pa = f64::from(both_adjacent) / trials as f64;
        let pf = f64::from(both_far) / trials as f64;
        assert!((pa - expected).abs() < 0.01, "adjacent {pa}");
        assert!((pf - expected).abs() < 0.01, "far {pf}");
    }

    #[test]
    fn offers_beyond_population_are_ignored() {
        let pkts = packets(30);
        let mut s = SimpleRandomSampler::new(20, 20, 3);
        let sel = select_indices(&mut s, &pkts);
        assert_eq!(sel.len(), 20);
        assert!(sel.iter().all(|&i| i < 20));
    }

    #[test]
    fn reset_reproduces() {
        let pkts = packets(100);
        let mut s = SimpleRandomSampler::new(100, 10, 9);
        let a = select_indices(&mut s, &pkts);
        s.reset();
        assert_eq!(a, select_indices(&mut s, &pkts));
    }

    #[test]
    #[should_panic(expected = "cannot select")]
    fn oversample_panics() {
        let _ = SimpleRandomSampler::new(5, 6, 0);
    }

    #[test]
    #[should_panic(expected = "population must be positive")]
    fn empty_population_panics() {
        let _ = SimpleRandomSampler::new(0, 0, 0);
    }
}
