//! Systematic (every k-th packet) sampling.
//!
//! The method deployed operationally on both NSFNET backbones: the T1
//! statistics processor and the T3 forwarding firmware each select one
//! packet in fifty (paper §2). Deterministic, counter-based, O(1) per
//! packet, no random state — which is exactly why router firmware likes
//! it, and why the paper asks whether its determinism distorts samples
//! relative to simple random sampling (§4: it doesn't, measurably, on
//! this traffic).

use crate::sampler::{BuildError, Sampler};
use nettrace::PacketRecord;

/// Selects every `interval`-th packet, starting at `offset`
/// (`offset < interval`): packets with 0-based arrival number
/// `offset, offset + k, offset + 2k, …` enter the sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystematicSampler {
    interval: usize,
    offset: usize,
    count: usize,
}

impl SystematicSampler {
    /// Every `interval`-th packet starting with the first.
    ///
    /// # Panics
    /// Panics if `interval` is zero.
    #[must_use]
    pub fn new(interval: usize) -> Self {
        Self::with_offset(interval, 0)
    }

    /// Every `interval`-th packet starting at `offset`.
    ///
    /// Varying the offset is how the paper generates replications of this
    /// deterministic method ("we varied the point within the data set at
    /// which to begin the sampling procedure", §7.2); there are exactly
    /// `interval` distinct replications.
    ///
    /// # Panics
    /// Panics if `interval` is zero or `offset >= interval`.
    #[must_use]
    pub fn with_offset(interval: usize, offset: usize) -> Self {
        match Self::try_with_offset(interval, offset) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`SystematicSampler::new`].
    ///
    /// # Errors
    /// [`BuildError::ZeroInterval`] if `interval` is zero.
    pub fn try_new(interval: usize) -> Result<Self, BuildError> {
        Self::try_with_offset(interval, 0)
    }

    /// Fallible [`SystematicSampler::with_offset`]: untrusted
    /// configuration (CLI flags, fuzzed specs) gets a typed error
    /// instead of an abort.
    ///
    /// # Errors
    /// [`BuildError::ZeroInterval`] if `interval` is zero,
    /// [`BuildError::OffsetNotBelowInterval`] if `offset >= interval`.
    pub fn try_with_offset(interval: usize, offset: usize) -> Result<Self, BuildError> {
        if interval == 0 {
            return Err(BuildError::ZeroInterval);
        }
        if offset >= interval {
            return Err(BuildError::OffsetNotBelowInterval { offset, interval });
        }
        Ok(SystematicSampler {
            interval,
            offset,
            count: 0,
        })
    }

    /// The selection interval `k`.
    #[must_use]
    pub fn interval(&self) -> usize {
        self.interval
    }

    /// Packets offered so far.
    #[must_use]
    pub fn offered(&self) -> usize {
        self.count
    }
}

impl Sampler for SystematicSampler {
    fn offer(&mut self, _pkt: &PacketRecord) -> bool {
        let selected = self.count % self.interval == self.offset;
        self.count += 1;
        selected
    }

    /// Strided override: the selected arrival numbers in
    /// `[count, count + n)` are the solutions of
    /// `c ≡ offset (mod interval)`, so selection is pure index math —
    /// O(selected) pushes, no per-packet work at all.
    fn offer_ts_batch(&mut self, base: usize, ts: &[u64], out: &mut Vec<usize>) {
        let r = self.count % self.interval;
        // First in-run position whose arrival number hits the offset
        // (phrased overflow-free for arbitrarily large intervals).
        let mut j = if self.offset >= r {
            self.offset - r
        } else {
            self.interval - r + self.offset
        };
        while j < ts.len() {
            out.push(base + j);
            j += self.interval;
        }
        self.count += ts.len();
    }

    fn reset(&mut self) {
        self.count = 0;
    }

    fn method_name(&self) -> &'static str {
        "systematic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::select_indices;
    use nettrace::Micros;

    fn packets(n: usize) -> Vec<PacketRecord> {
        (0..n)
            .map(|i| PacketRecord::new(Micros(i as u64), 40))
            .collect()
    }

    #[test]
    fn selects_every_kth() {
        let pkts = packets(20);
        let mut s = SystematicSampler::new(5);
        assert_eq!(select_indices(&mut s, &pkts), vec![0, 5, 10, 15]);
    }

    #[test]
    fn offset_shifts_selection() {
        let pkts = packets(20);
        let mut s = SystematicSampler::with_offset(5, 3);
        assert_eq!(select_indices(&mut s, &pkts), vec![3, 8, 13, 18]);
    }

    #[test]
    fn interval_one_selects_all() {
        let pkts = packets(7);
        let mut s = SystematicSampler::new(1);
        assert_eq!(select_indices(&mut s, &pkts).len(), 7);
    }

    #[test]
    fn sample_size_is_ceil_formula() {
        // |sample| = ceil((N - offset) / k) for offset < min(N, k).
        for n in [1usize, 7, 50, 99, 100, 101] {
            for k in [1usize, 2, 7, 50] {
                for offset in 0..k.min(n) {
                    let pkts = packets(n);
                    let mut s = SystematicSampler::with_offset(k, offset);
                    let got = select_indices(&mut s, &pkts).len();
                    let expected = (n - offset).div_ceil(k);
                    assert_eq!(got, expected, "n={n} k={k} offset={offset}");
                }
            }
        }
    }

    #[test]
    fn reset_restores_initial_state() {
        let pkts = packets(10);
        let mut s = SystematicSampler::with_offset(3, 1);
        let first = select_indices(&mut s, &pkts);
        s.reset();
        let second = select_indices(&mut s, &pkts);
        assert_eq!(first, second);
    }

    #[test]
    fn offered_counts_offers() {
        let pkts = packets(10);
        let mut s = SystematicSampler::new(4);
        let _ = select_indices(&mut s, &pkts);
        assert_eq!(s.offered(), 10);
        assert_eq!(s.interval(), 4);
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_panics() {
        let _ = SystematicSampler::new(0);
    }

    #[test]
    #[should_panic(expected = "must be below interval")]
    fn oversized_offset_panics() {
        let _ = SystematicSampler::with_offset(5, 5);
    }
}
