//! Flow-inversion experiments: score the `statkit::inversion`
//! estimators with φ against the true parent flow-size distribution.
//!
//! This module is the bridge between three substrates: the flow-carrying
//! packet model ([`nettrace::FlowTable`] aggregates sampled packets into
//! sampled flow sizes), the inversion estimators
//! ([`statkit::inversion`] turns sampled sizes into a parent-size
//! estimate), and the paper's φ disparity machinery
//! ([`crate::metrics::disparity`] scores binned distributions). A
//! [`FlowExperiment`] fixes a flow-carrying packet window, precomputes
//! the *true* flow-size histogram from the full population, and then
//! scores estimator runs over deterministic 1-in-k systematic samples —
//! replication `r` uses starting offset `r mod k`, exactly like the
//! packet-level experiments cap systematic replications at `k`.
//!
//! Estimates carry fractional flow weights; the φ machinery bins integer
//! counts. [`estimate_histogram`] reconciles the two by scaling every
//! weight by a common factor before rounding — a uniform scale changes
//! no proportion, and φ (like every [`DisparityReport`] shape metric) is
//! invariant to it.

use crate::metrics::{disparity, DisparityReport};
use nettrace::{BinSpec, FlowTable, Histogram, PacketRecord};
use parkit::Pool;
use statkit::inversion::{em_invert, naive_scaling, syn_flow_count, tail_rescale};
use statkit::{FlowEstimate, InversionError};

/// Fixed-point scale applied to fractional flow weights before binning.
/// Uniform across all bins, so binned *proportions* — and therefore φ —
/// are unaffected; 1024 keeps three decimal digits of weight resolution.
const WEIGHT_SCALE: f64 = 1024.0;

/// Power-of-two flow-size bins: `[0,2) [2,4) … [4096,∞)` packets — the
/// standard presentation for heavy-tailed flow-size distributions, and
/// wide enough at the tail that the EM grid's discretization does not
/// split hairs with bin edges.
#[must_use]
pub fn flow_size_bins() -> BinSpec {
    BinSpec::Edges(vec![2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096])
}

/// The flow-size inversion estimators under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowEstimator {
    /// `j → j·k`, detected flows only ([`naive_scaling`]).
    Naive,
    /// `j → j·k` up-weighted by `1/p_d` ([`tail_rescale`]).
    TailRescale,
    /// Zero-truncated Poisson-mixture EM ([`em_invert`]).
    Em,
}

impl FlowEstimator {
    /// All estimators, baseline first.
    #[must_use]
    pub fn all() -> [FlowEstimator; 3] {
        [
            FlowEstimator::Naive,
            FlowEstimator::TailRescale,
            FlowEstimator::Em,
        ]
    }

    /// Short display name (perf cells, CLI output, figure legends).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            FlowEstimator::Naive => "naive",
            FlowEstimator::TailRescale => "tail",
            FlowEstimator::Em => "em",
        }
    }

    /// Run this estimator on sampled flow sizes.
    ///
    /// # Errors
    /// Propagates the estimator's [`InversionError`] on degenerate
    /// input (`k == 0`, empty, zero size, overflow, non-finite weight).
    pub fn estimate(&self, sampled: &[u64], k: u64) -> Result<FlowEstimate, InversionError> {
        match self {
            FlowEstimator::Naive => naive_scaling(sampled, k),
            FlowEstimator::TailRescale => tail_rescale(sampled, k),
            FlowEstimator::Em => em_invert(sampled, k),
        }
    }
}

impl std::fmt::Display for FlowEstimator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Bin a weighted parent-size estimate under `spec`, scaling fractional
/// weights by a uniform fixed-point factor (see module docs — φ is
/// scale-invariant, so the factor never changes a score).
#[must_use]
pub fn estimate_histogram(estimate: &FlowEstimate, spec: &BinSpec) -> Histogram {
    let mut h = Histogram::new(spec.clone());
    for &(s, w) in &estimate.points {
        h.observe_weighted(s, (w * WEIGHT_SCALE).round() as u64);
    }
    h
}

/// One scored inversion replication.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowReplication {
    /// Replication index (systematic offset `replication mod k`).
    pub replication: u64,
    /// Flows detected in the sampled stream.
    pub sampled_flows: u64,
    /// Packets selected by the sampler.
    pub sampled_packets: u64,
    /// Estimated total parent flows from the size estimator.
    pub estimated_flows: f64,
    /// SYN-based parent flow count (`sampled SYNs · k`).
    pub syn_estimate: f64,
    /// φ suite of the binned estimate against the true flow histogram.
    pub report: DisparityReport,
}

/// All replications of one `(estimator, k)` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowExperimentResult {
    /// The estimator that was run.
    pub estimator: FlowEstimator,
    /// Deterministic sampling interval.
    pub k: u64,
    /// Scored replications, in replication order.
    pub replications: Vec<FlowReplication>,
    /// Replications with no scorable estimate (empty sample, inversion
    /// error, or all-zero binned weight).
    pub unscored: u32,
}

impl FlowExperimentResult {
    /// φ of each scored replication.
    #[must_use]
    pub fn phi_values(&self) -> Vec<f64> {
        self.replications.iter().map(|r| r.report.phi).collect()
    }

    /// Mean φ across scored replications; `None` if none scored.
    #[must_use]
    pub fn mean_phi(&self) -> Option<f64> {
        if self.replications.is_empty() {
            return None;
        }
        Some(self.phi_values().iter().sum::<f64>() / self.replications.len() as f64)
    }

    /// Mean estimated parent flow count across scored replications.
    #[must_use]
    pub fn mean_estimated_flows(&self) -> Option<f64> {
        if self.replications.is_empty() {
            return None;
        }
        Some(
            self.replications
                .iter()
                .map(|r| r.estimated_flows)
                .sum::<f64>()
                / self.replications.len() as f64,
        )
    }

    /// Mean SYN-based parent flow count across scored replications.
    #[must_use]
    pub fn mean_syn_estimate(&self) -> Option<f64> {
        if self.replications.is_empty() {
            return None;
        }
        Some(
            self.replications
                .iter()
                .map(|r| r.syn_estimate)
                .sum::<f64>()
                / self.replications.len() as f64,
        )
    }
}

/// A fixed flow-carrying packet window with its precomputed truth,
/// ready to score inversion estimators.
#[derive(Debug, Clone)]
pub struct FlowExperiment<'a> {
    packets: &'a [PacketRecord],
    spec: BinSpec,
    truth: FlowTable,
    truth_hist: Histogram,
}

impl<'a> FlowExperiment<'a> {
    /// Set up over a packet window with the standard power-of-two bins.
    ///
    /// # Panics
    /// Panics if the window is empty.
    #[must_use]
    pub fn new(packets: &'a [PacketRecord]) -> Self {
        Self::with_bins(packets, flow_size_bins())
    }

    /// Set up with explicit flow-size bins.
    ///
    /// # Panics
    /// Panics if the window is empty.
    #[must_use]
    pub fn with_bins(packets: &'a [PacketRecord], spec: BinSpec) -> Self {
        assert!(!packets.is_empty(), "flow experiment needs packets");
        let truth = FlowTable::from_packets(usize::MAX, packets);
        let truth_hist = truth.size_histogram(&spec);
        FlowExperiment {
            packets,
            spec,
            truth,
            truth_hist,
        }
    }

    /// The true parent flow count.
    #[must_use]
    pub fn true_flows(&self) -> u64 {
        self.truth.len() as u64
    }

    /// The true mean parent flow size, packets.
    #[must_use]
    pub fn true_mean_size(&self) -> f64 {
        self.truth.live_packets() as f64 / self.truth.len() as f64
    }

    /// The precomputed true flow-size histogram.
    #[must_use]
    pub fn truth_histogram(&self) -> &Histogram {
        &self.truth_hist
    }

    /// One replication: take the systematic 1-in-k sample at offset
    /// `rep mod k`, aggregate it into sampled flows, invert, bin, score.
    /// Pure in its arguments plus precomputed state.
    fn replicate(&self, estimator: FlowEstimator, k: u64, rep: u64) -> Option<FlowReplication> {
        let offset = (rep % k) as usize;
        let mut table = FlowTable::unbounded();
        let mut sampled_packets = 0u64;
        for p in self.packets.iter().skip(offset).step_by(k as usize) {
            table.offer(p);
            sampled_packets += 1;
        }
        let sizes = table.sizes();
        let estimate = estimator.estimate(&sizes, k).ok()?;
        let syn_estimate = syn_flow_count(table.syn_flows(), k).ok()?;
        let sample = estimate_histogram(&estimate, &self.spec);
        disparity(&self.truth_hist, &sample).map(|report| FlowReplication {
            replication: rep,
            sampled_flows: sizes.len() as u64,
            sampled_packets,
            estimated_flows: estimate.total_flows,
            syn_estimate,
            report,
        })
    }

    /// Score one estimator at interval `k` over `replications` runs
    /// (capped at `k` — systematic offsets repeat past that) on the
    /// session-default pool.
    ///
    /// # Panics
    /// Panics if `k == 0` or a worker panicked.
    pub fn run(&self, estimator: FlowEstimator, k: u64, replications: u32) -> FlowExperimentResult {
        self.run_with(&Pool::with_default_jobs(), estimator, k, replications)
    }

    /// [`FlowExperiment::run`] on an explicit pool. Replications are
    /// independent tasks reassembled in order: bit-identical to serial.
    ///
    /// # Panics
    /// Panics if `k == 0` or a worker panicked.
    pub fn run_with(
        &self,
        pool: &Pool,
        estimator: FlowEstimator,
        k: u64,
        replications: u32,
    ) -> FlowExperimentResult {
        self.run_grid_with(pool, &[(estimator, k)], replications)
            .pop()
            .expect("one cell in, one result out")
    }

    /// Score a whole `(estimator, k)` grid on `pool`, flattening every
    /// `(cell, replication)` pair into one task list. Results come back
    /// in `cells` order, each cell's replications in replication order —
    /// bit-identical to running serially.
    ///
    /// # Panics
    /// Panics if any cell has `k == 0` or a worker panicked.
    pub fn run_grid_with(
        &self,
        pool: &Pool,
        cells: &[(FlowEstimator, u64)],
        replications: u32,
    ) -> Vec<FlowExperimentResult> {
        let _grid = obskit::span("flow_experiment_grid");
        assert!(
            cells.iter().all(|&(_, k)| k > 0),
            "sampling interval must be positive"
        );
        let tasks: Vec<(usize, u64)> = cells
            .iter()
            .enumerate()
            .flat_map(|(ci, &(_, k))| (0..u64::from(replications).min(k)).map(move |rep| (ci, rep)))
            .collect();
        let scored = pool
            .run(tasks.len(), |i| {
                let (ci, rep) = tasks[i];
                let (estimator, k) = cells[ci];
                self.replicate(estimator, k, rep)
            })
            .unwrap_or_else(|e| panic!("flow experiment pool failed: {e}"));
        let mut out: Vec<FlowExperimentResult> = cells
            .iter()
            .map(|&(estimator, k)| FlowExperimentResult {
                estimator,
                k,
                replications: Vec::new(),
                unscored: 0,
            })
            .collect();
        for (&(ci, _), r) in tasks.iter().zip(scored) {
            match r {
                Some(rep) => out[ci].replications.push(rep),
                None => out[ci].unscored += 1,
            }
        }
        if obskit::recording_enabled() {
            obskit::counter("flow_experiment_cells_total").add(cells.len() as u64);
            obskit::counter("flow_experiment_replications_total").add(tasks.len() as u64);
            obskit::counter("flow_experiment_unscored_total")
                .add(out.iter().map(|r| u64::from(r.unscored)).sum());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsynth::{generate_flow_pack, FlowPackConfig, FlowSizeDist};

    fn pack() -> nettrace::Trace {
        generate_flow_pack(
            &FlowPackConfig {
                flows: 600,
                size_dist: FlowSizeDist::Geometric { p: 0.02 },
                duration_secs: 20,
                ..FlowPackConfig::default()
            },
            1993,
        )
    }

    #[test]
    fn truth_counts_every_flow() {
        let t = pack();
        let exp = FlowExperiment::new(t.packets());
        assert_eq!(exp.true_flows(), 600);
        assert_eq!(exp.truth_histogram().total(), 600);
        assert!(exp.true_mean_size() > 30.0 && exp.true_mean_size() < 70.0);
    }

    #[test]
    fn estimators_score_and_em_beats_naive() {
        let t = pack();
        let exp = FlowExperiment::new(t.packets());
        let pool = Pool::new(2);
        let results = exp.run_grid_with(
            &pool,
            &[
                (FlowEstimator::Naive, 10),
                (FlowEstimator::TailRescale, 10),
                (FlowEstimator::Em, 10),
            ],
            5,
        );
        for r in &results {
            assert_eq!(r.replications.len(), 5, "{}", r.estimator);
        }
        let phi = |i: usize| results[i].mean_phi().unwrap();
        assert!(
            phi(2) <= phi(0),
            "EM φ {} should not exceed naive φ {}",
            phi(2),
            phi(0)
        );
    }

    #[test]
    fn replications_are_distinct_offsets_and_capped() {
        let t = pack();
        let exp = FlowExperiment::new(t.packets());
        let r = exp.run(FlowEstimator::Naive, 3, 50);
        assert_eq!(r.replications.len(), 3); // capped at k
        let phis = r.phi_values();
        assert!(
            phis.windows(2).any(|w| w[0] != w[1]) || phis.len() == 1,
            "offsets should differ: {phis:?}"
        );
    }

    #[test]
    fn grid_is_deterministic_across_pool_widths() {
        let t = pack();
        let exp = FlowExperiment::new(t.packets());
        let cells = [(FlowEstimator::Em, 10), (FlowEstimator::Naive, 50)];
        let serial = exp.run_grid_with(&Pool::new(1), &cells, 3);
        let wide = exp.run_grid_with(&Pool::new(4), &cells, 3);
        assert_eq!(serial, wide);
    }

    #[test]
    fn syn_estimate_tracks_true_flow_count() {
        let t = pack();
        let exp = FlowExperiment::new(t.packets());
        let r = exp.run(FlowEstimator::Naive, 10, 10);
        let syn = r.mean_syn_estimate().unwrap();
        let truth = exp.true_flows() as f64;
        assert!(
            (syn - truth).abs() / truth < 0.35,
            "syn estimate {syn} vs {truth}"
        );
    }

    #[test]
    fn estimate_histogram_preserves_proportions() {
        let est = FlowEstimate {
            points: vec![(1, 1.0), (100, 3.0)],
            total_flows: 4.0,
        };
        let h = estimate_histogram(&est, &flow_size_bins());
        let p = h.proportions();
        assert!((p[0] - 0.25).abs() < 1e-9, "{p:?}");
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_k_panics() {
        let t = pack();
        let exp = FlowExperiment::new(t.packets());
        let _ = exp.run(FlowEstimator::Naive, 0, 1);
    }
}
