//! The disparity-metric suite of the paper's §5.2.
//!
//! Given the parent population's binned distribution and a sample's
//! counts over the same bins, [`disparity`] computes every metric the
//! paper considers (Figure 3 plots them side by side):
//!
//! * **Pearson χ²** — `Σ (Oᵢ−Eᵢ)²/Eᵢ` with `Eᵢ` the population
//!   proportions scaled to the sample size; sensitive to sample size.
//! * **significance level** — upper-tail p-value of χ² at `B−1` degrees
//!   of freedom (the population is fully known; no fitted parameters).
//! * **cost** — the ℓ₁ distance between the population counts and the
//!   sample counts *scaled up by the inverse sampling fraction*: the
//!   absolute packet-count error a provider would make charging from the
//!   sample (the paper's billing example).
//! * **relative cost** — cost × sampling fraction, crediting cheaper
//!   samples for their resource savings.
//! * **Paxson X²** — `Σ (Oᵢ−Eᵢ)²/Eᵢ²`, size-invariant, and the derived
//!   average normalized deviation `k̄ = sqrt(X²/B)`.
//! * **φ (phi) coefficient** (Fleiss) — `sqrt(χ²ₚ/n)` where `χ²ₚ` is the
//!   *paired* chi-square `Σ (Eᵢ−Oᵢ)²/(Eᵢ+Oᵢ)` over bins where either
//!   side has mass; size-invariant, the paper's metric of choice.
//!   `φ = 0` means the sample reflects the population perfectly; the
//!   paired denominator bounds it above by `√2` (since
//!   `χ²ₚ ≤ Σ(Eᵢ+Oᵢ) = 2n`), so a completely disjoint sample scores
//!   `√2` rather than an unbounded (or, for mass in zero-expectation
//!   bins, silently ignored) value — the goodness-of-fit form previously
//!   used here exploded on near-empty expected bins and *missed* sample
//!   mass in impossible bins entirely.

use nettrace::Histogram;
use statkit::chi2::chi2_sf;

/// All disparity metrics between one sample and its parent population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DisparityReport {
    /// Pearson χ² statistic.
    pub chi2: f64,
    /// Degrees of freedom used for the significance level.
    pub df: u32,
    /// χ² upper-tail significance level (p-value).
    pub significance: f64,
    /// ℓ₁ distance between population counts and scaled-up sample counts.
    pub cost: f64,
    /// `cost × sampling fraction`.
    pub relative_cost: f64,
    /// Paxson's size-invariant X².
    pub x2: f64,
    /// Average normalized deviation `k̄ = sqrt(X² / B)`.
    pub k_avg: f64,
    /// Fleiss' φ coefficient — the paper's primary score. Always finite
    /// and in `[0, √2]` for any nonempty sample.
    pub phi: f64,
    /// Sample size (packets).
    pub sample_size: u64,
    /// Sampling fraction `n/N`.
    pub fraction: f64,
}

impl DisparityReport {
    /// `1 − significance`, the form Figure 3 plots.
    #[must_use]
    pub fn one_minus_significance(&self) -> f64 {
        1.0 - self.significance
    }

    /// Whether a χ² test at level `alpha` would reject the hypothesis
    /// that the sample was drawn from the population distribution.
    #[must_use]
    pub fn rejects_at(&self, alpha: f64) -> bool {
        self.significance < alpha
    }
}

/// Compute the full disparity suite between a population histogram and a
/// sample histogram over the *same* bins.
///
/// Returns `None` when the sample is empty (no metrics are defined) —
/// which legitimately happens at extreme sampling granularities over
/// short intervals, and which callers must surface rather than score.
///
/// # Panics
/// Panics if the bin specs differ, or if the population histogram is
/// empty (scoring against an empty population is a programming error).
#[must_use]
pub fn disparity(population: &Histogram, sample: &Histogram) -> Option<DisparityReport> {
    assert_eq!(
        population.spec(),
        sample.spec(),
        "population and sample must share bins"
    );
    assert!(
        population.total() > 0,
        "population histogram must be nonempty"
    );
    let n = sample.total();
    if n == 0 {
        return None;
    }
    let big_n = population.total();
    let fraction = n as f64 / big_n as f64;
    let scale = n as f64 / big_n as f64;

    let mut chi2 = 0.0;
    let mut chi2_paired = 0.0;
    let mut x2 = 0.0;
    let mut cost = 0.0;
    let mut used_bins = 0u32;
    let bins = population.counts().len();

    for i in 0..bins {
        let pop = population.counts()[i] as f64;
        let obs = sample.counts()[i] as f64;
        let expected = pop * scale;
        let d = obs - expected;
        if expected > 0.0 {
            chi2 += d * d / expected;
            x2 += d * d / (expected * expected);
            used_bins += 1;
        }
        // The paired chi-square keeps every bin where either side has
        // mass: a sample observation in a bin the population says is
        // impossible contributes O (not 0/0 or ∞), and a near-empty
        // expected bin contributes at most E + O — which is what keeps
        // φ finite and ≤ √2.
        let both = expected + obs;
        if both > 0.0 {
            chi2_paired += d * d / both;
        }
        // Cost compares the provider's scaled-up estimate against truth.
        cost += (obs / fraction - pop).abs();
    }
    // At least two informative bins are needed for a χ² df; with fewer,
    // the distribution is degenerate and φ is still well-defined via
    // chi2 (which will be 0 if the sample matches the single bin).
    let df = used_bins.saturating_sub(1).max(1);
    let significance = chi2_sf(df, chi2);
    if obskit::recording_enabled() {
        obskit::counter("sampling_disparity_tests_total").inc();
        obskit::counter("sampling_disparity_cells_evaluated_total").add(u64::from(used_bins));
    }
    Some(DisparityReport {
        chi2,
        df,
        significance,
        cost,
        relative_cost: cost * fraction,
        x2,
        k_avg: (x2 / bins as f64).sqrt(),
        // Fleiss: φ² = χ²ₚ/n with χ²ₚ ≤ Σ(Eᵢ+Oᵢ) = 2n, so φ ≤ √2.
        phi: (chi2_paired / n as f64).sqrt(),
        sample_size: n,
        fraction,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettrace::BinSpec;

    fn hist(counts: &[u64]) -> Histogram {
        // Edges chosen so bin i receives value 10*i.
        let edges: Vec<u64> = (1..counts.len() as u64).map(|i| i * 10).collect();
        let mut h = Histogram::new(BinSpec::Edges(edges));
        for (i, &c) in counts.iter().enumerate() {
            for _ in 0..c {
                h.observe(i as u64 * 10);
            }
        }
        h
    }

    #[test]
    fn perfect_proportional_sample_scores_zero() {
        let pop = hist(&[500, 300, 200]);
        let sam = hist(&[50, 30, 20]);
        let r = disparity(&pop, &sam).unwrap();
        assert_eq!(r.chi2, 0.0);
        assert_eq!(r.phi, 0.0);
        assert_eq!(r.cost, 0.0);
        assert_eq!(r.x2, 0.0);
        assert!((r.significance - 1.0).abs() < 1e-12);
        assert_eq!(r.sample_size, 100);
        assert!((r.fraction - 0.1).abs() < 1e-12);
        assert!(!r.rejects_at(0.05));
    }

    #[test]
    fn empty_sample_returns_none() {
        let pop = hist(&[10, 10]);
        let sam = hist(&[0, 0]);
        assert!(disparity(&pop, &sam).is_none());
    }

    #[test]
    fn known_chi2_value() {
        // Population proportions (0.5, 0.5); sample (60, 40) of 100.
        // E = (50, 50); chi2 = 100/50 + 100/50 = 4; df = 1.
        let pop = hist(&[500, 500]);
        let sam = hist(&[60, 40]);
        let r = disparity(&pop, &sam).unwrap();
        assert!((r.chi2 - 4.0).abs() < 1e-9);
        assert_eq!(r.df, 1);
        // p-value of chi2=4, df=1 ~ 0.0455 -> rejected at 0.05.
        assert!((r.significance - 0.0455).abs() < 0.001);
        assert!(r.rejects_at(0.05));
        assert!(!r.rejects_at(0.01));
        // Paired chi2 = 10²/(50+60) + 10²/(50+40) = 100/110 + 100/90;
        // phi = sqrt(chi2_paired / 100) ~ 0.1421 (the goodness-of-fit
        // form gave ~0.1414 here — near-identical on good samples).
        let paired = 100.0 / 110.0 + 100.0 / 90.0;
        assert!((r.phi - (paired / 100.0f64).sqrt()).abs() < 1e-12);
        // X2 = 100/2500 + 100/2500 = 0.08; k = sqrt(0.08/2) = 0.2.
        assert!((r.x2 - 0.08).abs() < 1e-12);
        assert!((r.k_avg - 0.2).abs() < 1e-12);
        // cost: scaled-up sample = (600, 400); |600-500| + |400-500| = 200.
        assert!((r.cost - 200.0).abs() < 1e-9);
        assert!((r.relative_cost - 20.0).abs() < 1e-9);
    }

    #[test]
    fn phi_is_size_invariant_chi2_is_not() {
        // Same proportional deviation at 10x the sample size: chi2 grows
        // ~10x, phi stays put. (The paper's §5.2 motivation.)
        let pop = hist(&[5000, 5000]);
        let small = hist(&[60, 40]);
        let large = hist(&[600, 400]);
        let rs = disparity(&pop, &small).unwrap();
        let rl = disparity(&pop, &large).unwrap();
        assert!(rl.chi2 > 9.0 * rs.chi2);
        assert!((rl.phi - rs.phi).abs() < 1e-9);
        assert!((rl.x2 - rs.x2).abs() < 0.05 * rs.x2.max(1e-12));
    }

    #[test]
    fn worse_samples_score_higher() {
        let pop = hist(&[800, 100, 100]);
        let good = hist(&[78, 11, 11]);
        let bad = hist(&[50, 25, 25]);
        let rg = disparity(&pop, &good).unwrap();
        let rb = disparity(&pop, &bad).unwrap();
        assert!(rb.phi > rg.phi);
        assert!(rb.cost > rg.cost);
        assert!(rb.x2 > rg.x2);
    }

    #[test]
    fn zero_population_bins_are_skipped() {
        let pop = hist(&[100, 0, 100]);
        let sam = hist(&[10, 0, 10]);
        let r = disparity(&pop, &sam).unwrap();
        assert_eq!(r.df, 1); // two informative bins
        assert_eq!(r.chi2, 0.0);
    }

    #[test]
    fn sample_mass_in_impossible_bin() {
        // A sample observation in a bin the population says is empty:
        // the goodness-of-fit chi2 skips it (E=0) but both phi and cost
        // must still charge for it — the old phi formula scored this
        // sample as if the impossible packet did not exist.
        let pop = hist(&[100, 0]);
        let sam = hist(&[9, 1]);
        let r = disparity(&pop, &sam).unwrap();
        assert!(r.cost > 0.0);
        // paired chi2 = (10-9)²/19 + (0-1)²/1; phi = sqrt(chi2_p/10).
        let expected_phi = ((1.0 / 19.0 + 1.0) / 10.0f64).sqrt();
        assert!((r.phi - expected_phi).abs() < 1e-12, "{}", r.phi);
    }

    #[test]
    fn phi_is_bounded_for_disjoint_distributions() {
        // Fully disjoint population and sample: the worst case. The old
        // goodness-of-fit phi was unbounded here (it blew up whenever
        // sample mass landed on near-empty expected bins); the paired
        // form caps at √2 exactly.
        let pop = hist(&[1_000_000, 1, 0]);
        let sam = hist(&[0, 0, 10]);
        let r = disparity(&pop, &sam).unwrap();
        assert!(r.phi.is_finite());
        assert!(r.phi <= 2.0f64.sqrt() + 1e-12, "{}", r.phi);
        assert!(
            r.phi > 1.0,
            "disjoint sample should score near √2: {}",
            r.phi
        );
    }

    #[test]
    fn phi_finite_and_bounded_property() {
        // Deterministic sweep over adversarial count shapes (the
        // faultkit state fuzzer covers random ones): φ must always be
        // finite and in [0, √2] for any nonempty population and sample.
        let shapes: &[(&[u64], &[u64])] = &[
            (&[1, 0, 0], &[0, 0, 1]),
            (&[u32::MAX as u64, 1], &[0, 1]),
            (&[1, 1, 1], &[1_000_000, 0, 0]),
            (&[5, 0, 5], &[0, 7, 0]),
            (&[1], &[1]),
        ];
        let bound = 2.0f64.sqrt() + 1e-12;
        for (p, s) in shapes {
            let r = disparity(&hist(p), &hist(s)).unwrap();
            assert!(r.phi.is_finite(), "{p:?}/{s:?}");
            assert!((0.0..=bound).contains(&r.phi), "{p:?}/{s:?}: {}", r.phi);
        }
    }

    #[test]
    #[should_panic(expected = "share bins")]
    fn mismatched_bins_panic() {
        let pop = hist(&[1, 2, 3]);
        let mut other = Histogram::new(BinSpec::paper_interarrival());
        other.observe(5);
        let _ = disparity(&pop, &other);
    }

    #[test]
    #[should_panic(expected = "must be nonempty")]
    fn empty_population_panics() {
        let pop = hist(&[0, 0]);
        let sam = hist(&[1, 1]);
        let _ = disparity(&pop, &sam);
    }
}
