//! Geometric-skip (i.i.d. Bernoulli) 1-in-k sampling.
//!
//! An operational descendant of the paper's methods: instead of a strict
//! every-k-th count (systematic) or one-per-bucket (stratified), each
//! packet is selected independently with probability `1/k`. Implemented,
//! as production samplers do (sFlow, RFC 3176), by drawing the *skip
//! count* to the next selection from the geometric distribution — one
//! random draw per selection instead of one per packet.

use crate::sampler::{BuildError, Sampler};
use nettrace::PacketRecord;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// i.i.d. 1-in-k sampling via geometric skips.
#[derive(Debug)]
pub struct GeometricSkipSampler {
    mean_interval: usize,
    seed: u64,
    rng: StdRng,
    /// Packets still to skip before the next selection.
    skip: u64,
}

impl GeometricSkipSampler {
    /// Select each packet independently with probability
    /// `1 / mean_interval`.
    ///
    /// # Panics
    /// Panics if `mean_interval` is zero.
    #[must_use]
    pub fn new(mean_interval: usize, seed: u64) -> Self {
        match Self::try_new(mean_interval, seed) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`GeometricSkipSampler::new`].
    ///
    /// # Errors
    /// [`BuildError::ZeroMeanInterval`] if `mean_interval` is zero.
    pub fn try_new(mean_interval: usize, seed: u64) -> Result<Self, BuildError> {
        if mean_interval == 0 {
            return Err(BuildError::ZeroMeanInterval);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let skip = Self::draw_skip(&mut rng, mean_interval);
        Ok(GeometricSkipSampler {
            mean_interval,
            seed,
            rng,
            skip,
        })
    }

    /// Geometric skip: number of failures before the first success at
    /// probability `p = 1/k`, by inversion.
    fn draw_skip(rng: &mut StdRng, k: usize) -> u64 {
        if k == 1 {
            return 0;
        }
        let p = 1.0 / k as f64;
        let u: f64 = 1.0 - rng.random::<f64>(); // (0,1]
                                                // floor(ln(u) / ln(1-p)) is Geometric(p) on {0,1,2,…}.
        (u.ln() / (1.0 - p).ln()).floor() as u64
    }

    /// The mean selection interval `k`.
    #[must_use]
    pub fn mean_interval(&self) -> usize {
        self.mean_interval
    }
}

impl Sampler for GeometricSkipSampler {
    fn offer(&mut self, _pkt: &PacketRecord) -> bool {
        if self.skip > 0 {
            self.skip -= 1;
            return false;
        }
        self.skip = Self::draw_skip(&mut self.rng, self.mean_interval);
        true
    }

    /// Skip-jump override: hop straight from selection to selection.
    /// Each iteration lands on one selected packet and spends exactly
    /// the one RNG draw the per-packet path spends there, so the random
    /// stream stays aligned; skipped packets cost nothing.
    fn offer_ts_batch(&mut self, base: usize, ts: &[u64], out: &mut Vec<usize>) {
        let n = ts.len() as u64;
        let mut i = 0u64;
        loop {
            let remaining = n - i;
            if self.skip >= remaining {
                self.skip -= remaining;
                return;
            }
            i += self.skip;
            out.push(base + i as usize);
            self.skip = Self::draw_skip(&mut self.rng, self.mean_interval);
            i += 1;
        }
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
        self.skip = Self::draw_skip(&mut self.rng, self.mean_interval);
    }

    fn method_name(&self) -> &'static str {
        "geometric"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::select_indices;
    use nettrace::Micros;

    fn packets(n: usize) -> Vec<PacketRecord> {
        (0..n)
            .map(|i| PacketRecord::new(Micros(i as u64), 40))
            .collect()
    }

    #[test]
    fn selection_rate_matches_one_over_k() {
        let pkts = packets(200_000);
        let mut s = GeometricSkipSampler::new(50, 42);
        let sel = select_indices(&mut s, &pkts);
        let rate = sel.len() as f64 / pkts.len() as f64;
        assert!((rate - 0.02).abs() < 0.002, "rate {rate}");
    }

    #[test]
    fn interval_one_selects_all() {
        let pkts = packets(100);
        let mut s = GeometricSkipSampler::new(1, 0);
        assert_eq!(select_indices(&mut s, &pkts).len(), 100);
    }

    #[test]
    fn skips_are_geometric() {
        // Gaps between selections should have mean k and variance
        // ~ k(k-1) (geometric on {1,2,...} shifted).
        let pkts = packets(500_000);
        let mut s = GeometricSkipSampler::new(20, 7);
        let sel = select_indices(&mut s, &pkts);
        let gaps: Vec<f64> = sel.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
        let m = statkit::Moments::from_values(gaps.iter().copied());
        assert!((m.mean() - 20.0).abs() < 0.5, "mean gap {}", m.mean());
        let expected_var = 20.0 * 19.0;
        assert!(
            (m.variance() - expected_var).abs() / expected_var < 0.1,
            "var {}",
            m.variance()
        );
    }

    #[test]
    fn independence_no_periodicity() {
        // Unlike systematic sampling, selection positions mod k are
        // uniform, not constant.
        let pkts = packets(100_000);
        let mut s = GeometricSkipSampler::new(10, 3);
        let sel = select_indices(&mut s, &pkts);
        let mut residues = [0u32; 10];
        for i in &sel {
            residues[i % 10] += 1;
        }
        let total: u32 = residues.iter().sum();
        for (r, &c) in residues.iter().enumerate() {
            let p = f64::from(c) / f64::from(total);
            assert!((p - 0.1).abs() < 0.02, "residue {r}: {p}");
        }
    }

    #[test]
    fn deterministic_and_resettable() {
        let pkts = packets(10_000);
        let mut s = GeometricSkipSampler::new(13, 11);
        let a = select_indices(&mut s, &pkts);
        s.reset();
        assert_eq!(a, select_indices(&mut s, &pkts));
        assert_eq!(s.mean_interval(), 13);
    }

    #[test]
    #[should_panic(expected = "mean interval must be positive")]
    fn zero_interval_panics() {
        let _ = GeometricSkipSampler::new(0, 0);
    }
}
