//! Empirical verification of the classical efficiency theory (paper §5).
//!
//! Cochran's comparative analysis ranks sampling methods by the variance
//! of their mean estimator:
//!
//! * randomly ordered population → all methods equivalent;
//! * linear trend → `Var(stratified) ≤ Var(systematic) ≤ Var(random)`;
//! * periodic correlation resonant with the sampling interval →
//!   systematic sampling is far worse than either random method.
//!
//! [`estimator_variance`] measures those variances by replication over a
//! concrete population (the `netsynth::canonical` generators build the
//! three structures); the `theory` bench binary and the integration
//! tests confirm the orderings.

use crate::experiment::MethodFamily;
use crate::sampler::select_indices;
use nettrace::PacketRecord;
use statkit::Moments;

/// Replication statistics of a method's mean-packet-size estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimatorStats {
    /// The population's true mean packet size.
    pub true_mean: f64,
    /// Mean of the replicated estimates.
    pub mean_of_estimates: f64,
    /// Variance of the replicated estimates (the efficiency criterion).
    pub variance: f64,
    /// Number of scored replications.
    pub replications: usize,
}

impl EstimatorStats {
    /// Absolute bias of the estimator across replications.
    #[must_use]
    pub fn bias(&self) -> f64 {
        self.mean_of_estimates - self.true_mean
    }
}

/// Measure the replication variance of `family`'s mean-size estimator at
/// granularity `k` over a fixed population.
///
/// Systematic sampling is replicated over all `min(replications, k)`
/// distinct offsets; randomized methods over `replications` seeds.
///
/// # Panics
/// Panics if the population is empty, `k` is zero, or no replication
/// produced a nonempty sample.
#[must_use]
pub fn estimator_variance(
    packets: &[PacketRecord],
    family: MethodFamily,
    k: usize,
    replications: u32,
    seed: u64,
) -> EstimatorStats {
    assert!(!packets.is_empty(), "population must be nonempty");
    assert!(k > 0, "granularity must be positive");
    let true_mean = packets.iter().map(|p| f64::from(p.size)).sum::<f64>() / packets.len() as f64;

    // Rate for timer-equivalent periods.
    let duration = packets
        .last()
        .unwrap()
        .timestamp
        .saturating_sub(packets[0].timestamp)
        .as_secs_f64();
    let mean_pps = if duration > 0.0 {
        packets.len() as f64 / duration
    } else {
        packets.len() as f64
    };

    let reps = if family == MethodFamily::Systematic {
        replications.min(k as u32)
    } else {
        replications
    };
    let spec = family.at_granularity(k, mean_pps);
    let mut estimates = Moments::new();
    for rep in 0..u64::from(reps) {
        let mut sampler = spec.build(packets.len(), packets[0].timestamp, rep, seed);
        let selected = select_indices(sampler.as_mut(), packets);
        if selected.is_empty() {
            continue;
        }
        let est = selected
            .iter()
            .map(|&i| f64::from(packets[i].size))
            .sum::<f64>()
            / selected.len() as f64;
        estimates.push(est);
    }
    assert!(
        estimates.count() > 0,
        "no replication produced a nonempty sample"
    );
    EstimatorStats {
        true_mean,
        mean_of_estimates: estimates.mean(),
        variance: estimates.variance(),
        replications: estimates.count() as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettrace::Micros;

    /// Randomly ordered population (sizes i.i.d.; a multiplicative-hash
    /// sequence would be quasirandom and make systematic sampling
    /// unrealistically perfect, so a real RNG is required here).
    fn flat_population(n: usize) -> Vec<PacketRecord> {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xF1A7);
        (0..n)
            .map(|i| {
                let size: u16 = rng.random_range(40..=552);
                PacketRecord::new(Micros(i as u64 * 1000), size)
            })
            .collect()
    }

    /// Sizes rise linearly.
    fn trend_population(n: usize) -> Vec<PacketRecord> {
        (0..n)
            .map(|i| {
                let size = 40 + (512 * i / (n - 1)) as u16;
                PacketRecord::new(Micros(i as u64 * 1000), size)
            })
            .collect()
    }

    /// Sizes cycle with the given period.
    fn periodic_population(n: usize, period: usize) -> Vec<PacketRecord> {
        (0..n)
            .map(|i| {
                let phase = (i % period) as f64 / period as f64;
                let size = (296.0 + 256.0 * (2.0 * std::f64::consts::PI * phase).sin()) as u16;
                PacketRecord::new(Micros(i as u64 * 1000), size)
            })
            .collect()
    }

    #[test]
    fn estimators_are_unbiased_on_flat_population() {
        let pop = flat_population(50_000);
        for family in [
            MethodFamily::Systematic,
            MethodFamily::StratifiedRandom,
            MethodFamily::SimpleRandom,
        ] {
            let s = estimator_variance(&pop, family, 100, 100, 1);
            assert!(s.bias().abs() < 3.0, "{}: bias {}", family.name(), s.bias());
        }
    }

    #[test]
    fn flat_population_methods_equivalent() {
        // §5: "If the populations are randomly ordered, we expect all
        // three methods to be equivalent." Variances within a small
        // factor of each other.
        let pop = flat_population(100_000);
        let sys = estimator_variance(&pop, MethodFamily::Systematic, 100, 100, 2).variance;
        let strat = estimator_variance(&pop, MethodFamily::StratifiedRandom, 100, 100, 2).variance;
        let rand = estimator_variance(&pop, MethodFamily::SimpleRandom, 100, 100, 2).variance;
        let max = sys.max(strat).max(rand);
        let min = sys.min(strat).min(rand);
        assert!(max / min < 3.0, "sys {sys} strat {strat} rand {rand}");
    }

    #[test]
    fn linear_trend_ordering() {
        // §5: stratified < systematic < random on a linear trend.
        let pop = trend_population(100_000);
        let sys = estimator_variance(&pop, MethodFamily::Systematic, 1000, 1000, 3).variance;
        let strat = estimator_variance(&pop, MethodFamily::StratifiedRandom, 1000, 300, 3).variance;
        let rand = estimator_variance(&pop, MethodFamily::SimpleRandom, 1000, 300, 3).variance;
        assert!(strat < rand, "stratified {strat} should beat random {rand}");
        assert!(sys < rand, "systematic {sys} should beat random {rand}");
        assert!(
            strat < sys * 1.2,
            "stratified {strat} should be no worse than systematic {sys}"
        );
    }

    #[test]
    fn periodic_resonance_destroys_systematic() {
        // Sampling interval == period: every systematic sample sees one
        // phase only.
        let pop = periodic_population(100_000, 100);
        let sys = estimator_variance(&pop, MethodFamily::Systematic, 100, 100, 4).variance;
        let strat = estimator_variance(&pop, MethodFamily::StratifiedRandom, 100, 100, 4).variance;
        let rand = estimator_variance(&pop, MethodFamily::SimpleRandom, 100, 100, 4).variance;
        assert!(
            sys > 10.0 * strat,
            "systematic {sys} should collapse vs stratified {strat}"
        );
        assert!(
            sys > 10.0 * rand,
            "systematic {sys} should collapse vs random {rand}"
        );
    }

    #[test]
    fn periodic_bias_of_resonant_systematic() {
        // Each resonant systematic replication is biased to its phase.
        let pop = periodic_population(10_000, 50);
        let s = estimator_variance(&pop, MethodFamily::Systematic, 50, 50, 5);
        // Across ALL offsets the phases average out...
        assert!(s.bias().abs() < 5.0);
        // ...but the per-replication spread is enormous (≈ amplitude²/2).
        assert!(s.variance > 10_000.0, "variance {}", s.variance);
    }

    #[test]
    #[should_panic(expected = "population must be nonempty")]
    fn empty_population_panics() {
        let _ = estimator_variance(&[], MethodFamily::Systematic, 10, 5, 0);
    }
}
