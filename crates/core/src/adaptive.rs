//! Adaptive (load-responsive) sampling — an operational extension.
//!
//! The paper's §2 problem is a *fixed* mismatch: the categorization
//! processor has constant capacity while offered load grows, so the
//! operator had to pick a new fixed interval (1-in-50) by hand. The
//! natural next step — and what later operational samplers did — is to
//! let the sampler adjust its own interval so the selected-packet rate
//! tracks a budget:
//!
//! * each control period (one second here, matching the capacity
//!   accounting of the collector model), compare the number of selections
//!   against the budget;
//! * over budget → **multiplicative increase** of the interval (load can
//!   spike fast);
//! * comfortably under budget → **additive decrease** (recover resolution
//!   slowly).
//!
//! The controller wraps the systematic sampler, so between adjustments
//! the selection pattern is exactly the paper's operational method, and
//! every sample remains a valid (piecewise-systematic) sample whose
//! effective fraction is known per period — which is what an estimator
//! needs to scale counts back up.

use crate::sampler::Sampler;
use nettrace::PacketRecord;

/// Configuration for the AIMD interval controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Target selections per control period (the processor's budget).
    pub budget_per_period: u32,
    /// Control period in microseconds (default: one second).
    pub period_us: u64,
    /// Multiplicative factor applied to the interval when over budget.
    pub increase_factor: f64,
    /// Amount subtracted from the interval when under half budget.
    pub decrease_step: usize,
    /// Interval bounds.
    pub min_interval: usize,
    /// Upper bound on the interval.
    pub max_interval: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            budget_per_period: 20,
            period_us: 1_000_000,
            increase_factor: 2.0,
            decrease_step: 1,
            min_interval: 1,
            max_interval: 1 << 20,
        }
    }
}

impl AdaptiveConfig {
    /// Sanity-check the knobs.
    ///
    /// # Panics
    /// Panics on degenerate values.
    pub fn validate(&self) {
        assert!(self.budget_per_period > 0, "budget must be positive");
        assert!(self.period_us > 0, "period must be positive");
        assert!(self.increase_factor > 1.0, "increase factor must exceed 1");
        assert!(self.decrease_step >= 1, "decrease step must be >= 1");
        assert!(
            1 <= self.min_interval && self.min_interval <= self.max_interval,
            "interval bounds must satisfy 1 <= min <= max"
        );
    }
}

/// A systematic sampler whose interval adapts to hold the selection rate
/// near a budget.
#[derive(Debug, Clone)]
pub struct AdaptiveSampler {
    config: AdaptiveConfig,
    interval: usize,
    initial_interval: usize,
    counter: usize,
    period_start: Option<u64>,
    selected_this_period: u32,
    adjustments: u32,
}

impl AdaptiveSampler {
    /// Start with the given interval and controller configuration.
    ///
    /// # Panics
    /// Panics if the configuration is degenerate or the starting interval
    /// is outside its bounds.
    #[must_use]
    pub fn new(initial_interval: usize, config: AdaptiveConfig) -> Self {
        config.validate();
        assert!(
            (config.min_interval..=config.max_interval).contains(&initial_interval),
            "initial interval outside configured bounds"
        );
        AdaptiveSampler {
            config,
            interval: initial_interval,
            initial_interval,
            counter: 0,
            period_start: None,
            selected_this_period: 0,
            adjustments: 0,
        }
    }

    /// The interval currently in force.
    #[must_use]
    pub fn current_interval(&self) -> usize {
        self.interval
    }

    /// How many times the controller has changed the interval.
    #[must_use]
    pub fn adjustments(&self) -> u32 {
        self.adjustments
    }

    /// Close the current control period and adapt.
    fn end_period(&mut self) {
        let old = self.interval;
        if self.selected_this_period > self.config.budget_per_period {
            let next = (self.interval as f64 * self.config.increase_factor).ceil() as usize;
            self.interval = next.min(self.config.max_interval);
        } else if self.selected_this_period < self.config.budget_per_period / 2 {
            self.interval = self
                .interval
                .saturating_sub(self.config.decrease_step)
                .max(self.config.min_interval);
        }
        if self.interval != old {
            self.adjustments += 1;
            self.counter = 0;
        }
        self.selected_this_period = 0;
    }

    /// Close `idle` consecutive packet-free control periods in O(1).
    ///
    /// Each idle period sees zero selections, so the only state change
    /// per period is the additive decrease (when the dead band allows
    /// one) until the interval bottoms out at `min_interval` — which
    /// makes the net effect of any number of idle periods closed-form.
    /// A trace that jumps from one timestamp to `u64::MAX` would
    /// otherwise spin ~10¹³ `end_period` calls here.
    fn idle_periods(&mut self, idle: u64) {
        if idle == 0 || self.config.budget_per_period / 2 == 0 {
            // budget 1: zero selections is not "under half budget", so
            // idle periods leave the interval untouched.
            return;
        }
        let gap = self.interval - self.config.min_interval;
        let steps_needed = gap.div_ceil(self.config.decrease_step) as u64;
        let applied = steps_needed.min(idle);
        if applied > 0 {
            self.interval = self
                .interval
                .saturating_sub(self.config.decrease_step.saturating_mul(applied as usize))
                .max(self.config.min_interval);
            self.adjustments = self
                .adjustments
                .saturating_add(u32::try_from(applied).unwrap_or(u32::MAX));
            self.counter = 0;
        }
        self.selected_this_period = 0;
    }
}

impl Sampler for AdaptiveSampler {
    fn offer(&mut self, pkt: &PacketRecord) -> bool {
        let ts = pkt.timestamp.as_u64();
        match self.period_start {
            None => self.period_start = Some(ts),
            Some(start) => {
                // Saturating: a non-monotone timestamp before the period
                // start closes nothing, and a start near u64::MAX must
                // not wrap the comparison.
                let elapsed = ts.saturating_sub(start) / self.config.period_us;
                if elapsed > 0 {
                    // Close the period that actually saw traffic with its
                    // real counts, then the remaining packet-free periods
                    // in closed form (each sees zero selections and
                    // decreases the interval until it floors).
                    self.end_period();
                    self.idle_periods(elapsed - 1);
                    self.period_start =
                        Some(start.saturating_add(elapsed.saturating_mul(self.config.period_us)));
                }
            }
        }
        let selected = self.counter.is_multiple_of(self.interval);
        self.counter += 1;
        if selected {
            self.selected_this_period += 1;
        }
        selected
    }

    fn reset(&mut self) {
        self.interval = self.initial_interval;
        self.counter = 0;
        self.period_start = None;
        self.selected_this_period = 0;
        self.adjustments = 0;
    }

    fn method_name(&self) -> &'static str {
        "adaptive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettrace::Micros;

    /// `rate` packets/second for `secs` seconds.
    fn stream(rate: u64, secs: u64, start_sec: u64) -> Vec<PacketRecord> {
        let mut v = Vec::new();
        for s in 0..secs {
            for i in 0..rate {
                v.push(PacketRecord::new(
                    Micros((start_sec + s) * 1_000_000 + i * (1_000_000 / rate)),
                    232,
                ));
            }
        }
        v
    }

    fn cfg(budget: u32) -> AdaptiveConfig {
        AdaptiveConfig {
            budget_per_period: budget,
            ..AdaptiveConfig::default()
        }
    }

    #[test]
    fn steady_load_converges_to_budget() {
        // 1000 pps, budget 20/s -> interval should settle near 50.
        let pkts = stream(1000, 60, 0);
        let mut s = AdaptiveSampler::new(1, cfg(20));
        let mut per_second = vec![0u32; 60];
        for p in &pkts {
            if s.offer(p) {
                per_second[p.timestamp.whole_secs() as usize] += 1;
            }
        }
        // After convergence the selection rate sits in a band around the
        // budget.
        let tail: Vec<u32> = per_second[30..].to_vec();
        let avg = tail.iter().sum::<u32>() as f64 / tail.len() as f64;
        assert!(
            (10.0..=40.0).contains(&avg),
            "converged rate {avg}, intervals ended at {}",
            s.current_interval()
        );
        assert!((25..=100).contains(&s.current_interval()));
    }

    #[test]
    fn load_spike_backs_off_quickly() {
        // 100 pps for 10 s, then 10_000 pps for 10 s.
        let mut pkts = stream(100, 10, 0);
        pkts.extend(stream(10_000, 10, 10));
        let mut s = AdaptiveSampler::new(5, cfg(20));
        let mut selections_late = 0u32;
        for p in &pkts {
            let sel = s.offer(p);
            if sel && p.timestamp.whole_secs() >= 15 {
                selections_late += 1;
            }
        }
        // In the last 5 spike seconds the controller must have backed off
        // to near-budget rates.
        assert!(
            selections_late <= 5 * 45,
            "late selections {selections_late} (interval {})",
            s.current_interval()
        );
        assert!(s.current_interval() > 100);
        assert!(s.adjustments() > 0);
    }

    #[test]
    fn load_drop_recovers_resolution() {
        // Heavy then light: the interval should decrease again (slowly).
        let mut pkts = stream(5000, 5, 0);
        pkts.extend(stream(50, 60, 5));
        let mut s = AdaptiveSampler::new(1, cfg(20));
        let mut after_spike = usize::MAX;
        for p in &pkts {
            s.offer(p);
            if p.timestamp.whole_secs() == 5 {
                after_spike = after_spike.min(s.current_interval());
            }
        }
        assert!(
            s.current_interval() < after_spike,
            "interval should recover: spike {} end {}",
            after_spike,
            s.current_interval()
        );
    }

    #[test]
    fn never_violates_interval_bounds() {
        let config = AdaptiveConfig {
            budget_per_period: 5,
            min_interval: 2,
            max_interval: 64,
            ..AdaptiveConfig::default()
        };
        let mut pkts = stream(10_000, 3, 0);
        pkts.extend(stream(1, 10, 3));
        let mut s = AdaptiveSampler::new(4, config);
        for p in &pkts {
            s.offer(p);
            assert!((2..=64).contains(&s.current_interval()));
        }
    }

    #[test]
    fn reset_restores_initial_state() {
        let pkts = stream(1000, 5, 0);
        let mut s = AdaptiveSampler::new(3, cfg(10));
        for p in &pkts {
            s.offer(p);
        }
        assert_ne!(s.current_interval(), 3);
        s.reset();
        assert_eq!(s.current_interval(), 3);
        assert_eq!(s.adjustments(), 0);
    }

    #[test]
    fn behaves_systematically_within_a_period() {
        // With the selection rate inside the controller's dead band
        // (between budget/2 and budget) it never adjusts, and selection
        // is plain 1-in-k: 100 pps at 1-in-10 selects 10/s, budget 15.
        let pkts = stream(100, 2, 0);
        let mut s = AdaptiveSampler::new(10, cfg(15));
        let selected: Vec<usize> = pkts
            .iter()
            .enumerate()
            .filter_map(|(i, p)| s.offer(p).then_some(i))
            .collect();
        assert!(selected.iter().all(|i| i % 10 == 0));
        assert_eq!(s.adjustments(), 0);
    }

    #[test]
    #[should_panic(expected = "outside configured bounds")]
    fn bad_initial_interval_panics() {
        let config = AdaptiveConfig {
            min_interval: 10,
            ..AdaptiveConfig::default()
        };
        let _ = AdaptiveSampler::new(5, config);
    }

    #[test]
    fn survives_u64_max_timestamp_jump() {
        // Minimized from the fault-injection harness: a jump to
        // t = u64::MAX used to close ~1.8 × 10¹³ one-second control
        // periods in a loop (an effective hang) and overflow the
        // period-start arithmetic. The closed-form catch-up must floor
        // the interval at min_interval and return immediately.
        let mut s = AdaptiveSampler::new(64, cfg(20));
        assert!(s.offer(&PacketRecord::new(Micros(0), 40)));
        let _ = s.offer(&PacketRecord::new(Micros(u64::MAX), 40));
        assert_eq!(s.current_interval(), 1, "idle periods floor the interval");
        // Non-monotone follow-up (before the rolled-over period start)
        // must not underflow either.
        let _ = s.offer(&PacketRecord::new(Micros(5), 40));
    }

    #[test]
    fn idle_catchup_matches_looped_end_periods() {
        // The closed form must agree with literally closing each idle
        // period: 7 idle seconds at decrease_step 1 from interval 5.
        let pkts = [
            PacketRecord::new(Micros(0), 40),
            PacketRecord::new(Micros(8_000_000), 40),
        ];
        let mut s = AdaptiveSampler::new(5, cfg(20));
        for p in &pkts {
            s.offer(p);
        }
        // 8 elapsed periods: first closes the active period (interval
        // 5 → 4), then 7 idle periods decrease 4 → 1 (floored after 3).
        assert_eq!(s.current_interval(), 1);
        assert_eq!(s.adjustments(), 4);
    }

    #[test]
    #[should_panic(expected = "increase factor must exceed 1")]
    fn bad_factor_panics() {
        let config = AdaptiveConfig {
            increase_factor: 1.0,
            ..AdaptiveConfig::default()
        };
        config.validate();
    }
}
