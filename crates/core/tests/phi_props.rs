//! Property tests for the φ disparity coefficient (in-tree proptest
//! shim): for *every* nonempty population/sample pair over shared bins —
//! including degenerate shapes where all the sample mass sits in bins
//! the population says are impossible — φ must be finite and inside
//! `[0, √2]`, and the rest of the report must stay well-formed.

use nettrace::{BinSpec, Histogram};
use proptest::prelude::*;
use sampling::disparity;

/// Build a histogram whose bin `i` holds `counts[i]`.
fn hist_from(counts: &[u64]) -> Histogram {
    let edges: Vec<u64> = (1..counts.len() as u64).map(|i| i * 10).collect();
    Histogram::from_values(
        BinSpec::Edges(edges),
        counts
            .iter()
            .enumerate()
            .flat_map(|(i, &c)| std::iter::repeat_n(i as u64 * 10, c as usize)),
    )
}

/// Strategy: paired population/sample counts over 2–7 shared bins, both
/// guaranteed nonempty. Counts span zero, tiny, and large values so the
/// expected-count scaling hits the degenerate corners.
fn count_pair() -> impl Strategy<Value = (Vec<u64>, Vec<u64>)> {
    proptest::collection::vec((0u64..2_000, 0u64..2_000), 2..8).prop_map(|pairs| {
        let mut pop: Vec<u64> = pairs.iter().map(|p| p.0).collect();
        let mut sam: Vec<u64> = pairs.iter().map(|p| p.1).collect();
        // disparity's contract: nonempty population, nonempty sample.
        pop[0] += 1;
        sam[0] += 1;
        (pop, sam)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn phi_is_finite_and_bounded(pair in count_pair()) {
        let (pop, sam) = pair;
        let r = disparity(&hist_from(&pop), &hist_from(&sam))
            .expect("sample is nonempty by construction");
        prop_assert!(r.phi.is_finite(), "{pop:?}/{sam:?}: phi {}", r.phi);
        prop_assert!(
            (0.0..=2.0f64.sqrt() + 1e-9).contains(&r.phi),
            "{pop:?}/{sam:?}: phi {} outside [0, sqrt(2)]",
            r.phi
        );
        // The rest of the suite must stay well-formed too.
        prop_assert!(r.chi2.is_finite() && r.chi2 >= 0.0);
        prop_assert!((0.0..=1.0).contains(&r.significance));
        prop_assert!(r.df >= 1);
        prop_assert!(r.cost.is_finite() && r.cost >= 0.0);
    }

    // Identical distributions score exactly zero, whatever the shape.
    #[test]
    fn identical_distributions_score_zero(counts in proptest::collection::vec(0u64..500, 2..8)) {
        let mut counts = counts;
        counts[0] += 1;
        let h = hist_from(&counts);
        let r = disparity(&h, &h).expect("nonempty");
        prop_assert_eq!(r.phi, 0.0);
        prop_assert_eq!(r.chi2, 0.0);
    }
}
