//! Serial ≡ parallel equivalence (the determinism hard requirement):
//! for each of the five paper methods, `granularity_sweep` and
//! `interval_sweep` at `--jobs 1` versus `--jobs 4` must produce
//! **byte-identical φ tables** — exact `f64` bit equality, not
//! approximate closeness — on a 10k-packet synthetic trace. Any
//! scheduling leak (results placed by completion order, seeds derived
//! from worker identity, shared-state races) fails these tests.

use nettrace::{Micros, PacketRecord, Trace};
use parkit::Pool;
use sampling::experiment::{
    granularity_sweep_with, interval_sweep_with, ExperimentResult, MethodFamily,
};
use sampling::Target;

const PACKETS: usize = 10_000;
const REPLICATIONS: u32 = 5;
const SEED: u64 = 1993;

/// A deterministic bimodal 10k-packet trace: irregular gaps, two packet
/// size modes — enough structure that every method produces distinct,
/// nontrivial φ values.
fn synthetic_trace() -> Trace {
    let mut t = 0u64;
    let packets: Vec<PacketRecord> = (0..PACKETS)
        .map(|i| {
            t += 400 + (i as u64 * 179) % 4400;
            let size = if (i * 7919) % 10 < 4 { 40 } else { 552 };
            PacketRecord::new(Micros(t), size)
        })
        .collect();
    Trace::new(packets).unwrap()
}

/// Exact f64 bit equality across two result cells: φ of every
/// replication, plus the scored/empty split and sample sizes.
fn assert_cells_bit_identical(a: &ExperimentResult, b: &ExperimentResult, ctx: &str) {
    assert_eq!(a.method, b.method, "{ctx}: method spec diverged");
    assert_eq!(
        a.replications.len(),
        b.replications.len(),
        "{ctx}: replication count diverged"
    );
    assert_eq!(
        a.empty_samples, b.empty_samples,
        "{ctx}: empty-sample count diverged"
    );
    for (ra, rb) in a.replications.iter().zip(&b.replications) {
        assert_eq!(
            ra.replication, rb.replication,
            "{ctx}: replication order diverged"
        );
        assert_eq!(
            ra.report.phi.to_bits(),
            rb.report.phi.to_bits(),
            "{ctx} rep {}: phi {} vs {} differ in bits",
            ra.replication,
            ra.report.phi,
            rb.report.phi
        );
        assert_eq!(
            ra.report.sample_size, rb.report.sample_size,
            "{ctx} rep {}: sample size diverged",
            ra.replication
        );
    }
}

#[test]
fn granularity_sweep_is_bit_identical_across_jobs() {
    let trace = synthetic_trace();
    let ks = [2usize, 8, 32, 128];
    for family in MethodFamily::paper_five() {
        for target in [Target::PacketSize, Target::Interarrival] {
            let serial = granularity_sweep_with(
                &Pool::serial(),
                trace.packets(),
                target,
                family,
                &ks,
                REPLICATIONS,
                SEED,
            );
            let parallel = granularity_sweep_with(
                &Pool::new(4),
                trace.packets(),
                target,
                family,
                &ks,
                REPLICATIONS,
                SEED,
            );
            assert_eq!(serial.len(), parallel.len());
            for ((ka, a), (kb, b)) in serial.iter().zip(&parallel) {
                assert_eq!(ka, kb);
                let ctx = format!("{} {target:?} k={ka}", family.name());
                assert_cells_bit_identical(a, b, &ctx);
                // The φ table is real, not trivially empty.
                assert!(!a.replications.is_empty(), "{ctx}: no scored replications");
            }
        }
    }
}

#[test]
fn interval_sweep_is_bit_identical_across_jobs() {
    let trace = synthetic_trace();
    let dur = trace.duration().as_u64();
    let lengths = [
        Micros(dur / 32),
        Micros(dur / 8),
        Micros(dur / 2),
        Micros(dur),
    ];
    for family in MethodFamily::paper_five() {
        let serial = interval_sweep_with(
            &Pool::serial(),
            &trace,
            Target::PacketSize,
            family,
            16,
            Micros(0),
            &lengths,
            REPLICATIONS,
            SEED,
        );
        let parallel = interval_sweep_with(
            &Pool::new(4),
            &trace,
            Target::PacketSize,
            family,
            16,
            Micros(0),
            &lengths,
            REPLICATIONS,
            SEED,
        );
        assert_eq!(serial.len(), parallel.len());
        let mut scored_windows = 0;
        for ((la, a), (lb, b)) in serial.iter().zip(&parallel) {
            assert_eq!(la, lb);
            assert_eq!(
                a.is_some(),
                b.is_some(),
                "{}: window presence diverged",
                family.name()
            );
            if let (Some(a), Some(b)) = (a, b) {
                let ctx = format!("{} len={la:?}", family.name());
                assert_cells_bit_identical(a, b, &ctx);
                scored_windows += 1;
            }
        }
        assert!(
            scored_windows > 0,
            "{}: sweep scored nothing",
            family.name()
        );
    }
}

#[test]
fn parallel_sweep_matches_legacy_serial_entrypoint() {
    // The `_with(Pool::serial())` path must also agree with the plain
    // entry point forced serial via the default-jobs override — i.e.
    // the refactor preserved the historical serial semantics.
    let trace = synthetic_trace();
    let ks = [4usize, 64];
    for family in MethodFamily::paper_five() {
        let explicit = granularity_sweep_with(
            &Pool::serial(),
            trace.packets(),
            Target::PacketSize,
            family,
            &ks,
            REPLICATIONS,
            SEED,
        );
        let wide = granularity_sweep_with(
            &Pool::new(8),
            trace.packets(),
            Target::PacketSize,
            family,
            &ks,
            REPLICATIONS,
            SEED,
        );
        for ((_, a), (_, b)) in explicit.iter().zip(&wide) {
            assert_cells_bit_identical(a, b, family.name());
        }
    }
}
