//! Exploratory bench: can a *skip-sampling* random family beat
//! Algorithm S?
//!
//! The BENCH_3 trajectory note (ROADMAP.md) accepts that the
//! `cell/random/*` perf cells moved only ~1.3–1.5× under the columnar
//! refactor: [`sampling::SimpleRandomSampler`] spends one RNG draw per
//! in-population element, and that draw schedule is pinned by the
//! bit-identical determinism guarantee — batching cannot remove draws
//! without changing which packets are selected under a given seed.
//!
//! A faster family needs a *changed seed contract*: Vitter's skip-length
//! methods (Algorithm D, CACM 1984) draw once per **selected** element
//! by sampling the gap to the next selection directly, so the draw count
//! falls from `N` to `n`. This file prototypes the simpler of Vitter's
//! two schedules — Algorithm A, the inverse-CDF gap walk — checks that
//! it still produces exactly `n` strictly increasing in-range indices
//! with plausibly uniform coverage, and times it against Algorithm S at
//! trace scale.
//!
//! It is `#[ignore]`d: an exploration, not a gate. The numbers justify
//! (or kill) a future `MethodSpec::SkipRandom` with its own seed
//! contract; they do not alter the shipped `random` family, whose
//! selections existing experiments pin bit-for-bit. Run it with
//! `cargo test -p sampling --test skip_sampling_explore -- --ignored --nocapture`.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sampling::{Sampler, SimpleRandomSampler};
use std::time::Instant;

/// Prototype skip-sampler: Vitter's Algorithm A. When `m` selections
/// remain out of `r` candidates, the gap `s` to the next selection has
/// `P(s ≥ k) = (r−m)(r−m−1)…(r−m−k+1) / (r(r−1)…(r−k+1))`; walking that
/// product against one uniform draw costs one draw per *selection*.
struct SkipRandomPrototype {
    remaining_pop: u64,
    remaining_sample: u64,
    rng: StdRng,
}

impl SkipRandomPrototype {
    fn new(population: u64, sample: u64, seed: u64) -> Self {
        assert!(population > 0 && sample <= population);
        SkipRandomPrototype {
            remaining_pop: population,
            remaining_sample: sample,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Absolute indices (0-based) of all selections, in one pass.
    fn select_indices(mut self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.remaining_sample as usize);
        let mut pos: u64 = 0;
        while self.remaining_sample > 0 {
            if self.remaining_sample == self.remaining_pop {
                // Dense tail: everything left is selected, no draws.
                for _ in 0..self.remaining_sample {
                    out.push(pos);
                    pos += 1;
                }
                break;
            }
            // One uniform draw decides the whole gap.
            let u: f64 = self.rng.random::<f64>();
            let mut skip: u64 = 0;
            let mut quot =
                (self.remaining_pop - self.remaining_sample) as f64 / self.remaining_pop as f64;
            while quot > u {
                skip += 1;
                let top = self.remaining_pop - self.remaining_sample - skip;
                let bottom = self.remaining_pop - skip;
                quot *= top as f64 / bottom as f64;
            }
            pos += skip;
            out.push(pos);
            pos += 1;
            self.remaining_pop -= skip + 1;
            self.remaining_sample -= 1;
        }
        out
    }
}

fn algorithm_s_indices(population: u64, sample: u64, seed: u64) -> Vec<u64> {
    let mut s = SimpleRandomSampler::new(population as usize, sample as usize, seed);
    let mut out = Vec::with_capacity(sample as usize);
    let ts: Vec<u64> = (0..population).collect();
    let mut picked = Vec::new();
    for chunk in ts.chunks(8192) {
        picked.clear();
        s.offer_ts_batch(chunk[0] as usize, chunk, &mut picked);
        out.extend(picked.iter().map(|&i| i as u64));
    }
    out
}

#[test]
#[ignore = "exploration for a future skip-sampling family, not a gate"]
fn skip_sampling_is_exact_and_faster_than_algorithm_s() {
    const N: u64 = 4_000_000;
    const N_SAMPLE: u64 = 40_000; // 1-in-100, the paper's deep-thinning regime

    // Correctness first: exactly n, strictly increasing, in range.
    for seed in 0..20u64 {
        let picks = SkipRandomPrototype::new(N, N_SAMPLE, seed).select_indices();
        assert_eq!(picks.len(), N_SAMPLE as usize);
        assert!(picks.windows(2).all(|w| w[0] < w[1]));
        assert!(*picks.last().unwrap() < N);
    }

    // Plausible uniformity: each decile of the stream should hold
    // ~n/10 selections. χ²(9 df) at α=0.001 is 27.9; stay under it.
    let picks = SkipRandomPrototype::new(N, N_SAMPLE, 1993).select_indices();
    let mut deciles = [0f64; 10];
    for p in &picks {
        deciles[(p * 10 / N) as usize] += 1.0;
    }
    let expected = N_SAMPLE as f64 / 10.0;
    let chi2: f64 = deciles
        .iter()
        .map(|o| (o - expected).powi(2) / expected)
        .sum();
    assert!(chi2 < 27.9, "decile χ² {chi2:.1} suggests non-uniform gaps");

    // The draw-count argument, measured. Min-of-passes, same policy as
    // the perf harness.
    let time = |f: &dyn Fn() -> Vec<u64>| {
        let mut best = f64::MAX;
        for _ in 0..5 {
            let t = Instant::now();
            let v = f();
            assert!(!v.is_empty());
            best = best.min(t.elapsed().as_secs_f64());
        }
        best
    };
    let t_s = time(&|| algorithm_s_indices(N, N_SAMPLE, 7));
    let t_skip = time(&|| SkipRandomPrototype::new(N, N_SAMPLE, 7).select_indices());
    println!(
        "algorithm S: {:.1} ms   skip (Vitter A): {:.1} ms   speedup: {:.1}x \
         ({N} packets, {N_SAMPLE} selected)",
        t_s * 1e3,
        t_skip * 1e3,
        t_s / t_skip
    );
    // The point of the exploration: fewer draws must actually win at
    // deep thinning, else the future family is not worth a new seed
    // contract. Algorithm S draws N times; the skip walk draws n times
    // (the quot loop is multiply-only).
    assert!(
        t_skip < t_s,
        "skip-sampling prototype is not faster: {t_skip}s vs {t_s}s"
    );

    // And the contract change is real: the two families select
    // different packets under the same seed. This is why it must land
    // as a new MethodSpec, not a drop-in.
    let s_picks = algorithm_s_indices(N, N_SAMPLE, 7);
    let skip_picks = SkipRandomPrototype::new(N, N_SAMPLE, 7).select_indices();
    assert_ne!(s_picks, skip_picks, "seed contract unexpectedly compatible");
}
