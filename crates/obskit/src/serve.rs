//! `obskit::serve` — the live telemetry plane: a tiny, std-only,
//! blocking HTTP/1.0 server exposing the global registry while the
//! process works.
//!
//! Endpoints:
//!
//! * `GET /metrics` — Prometheus text exposition (format 0.0.4) from
//!   [`crate::global`], sorted and grouped by metric name;
//! * `GET /healthz` — liveness plus ingest-watermark staleness: `200
//!   {"status":"ok",...}` normally, `503 {"status":"stale",...}` once
//!   [`crate::telemetry::touch_ingest`] stops arriving for longer than
//!   [`ServeConfig::stale_after`];
//! * `GET /snapshot` — the JSONL registry snapshot
//!   ([`crate::Registry::render_snapshot_jsonl`]);
//! * `GET /series?name=&since=&step=` — JSON time-series dump from the
//!   on-board ring-buffer store ([`crate::series`]), with server-side
//!   systematic-`step` downsampling (`503` until
//!   [`crate::series::ensure_global_series`] has run, `400` on a
//!   malformed query);
//! * `GET /alerts` — one JSONL line per installed alert rule
//!   ([`crate::rules`]), with firing state and flap counts.
//!
//! Design: one bounded accept loop on a [`std::net::TcpListener`], one
//! short-lived handler thread per connection (at most
//! [`ServeConfig::max_inflight`]; excess connections get an immediate
//! `503`), a strict request-line parser ([`parse_request_line`], also
//! exercised by the faultkit state-fuzz campaign), and per-connection
//! read timeouts so a slowloris peer costs one thread for at most
//! [`ServeConfig::read_timeout`]. [`ServeHandle::shutdown`] (or drop)
//! stops accepting, then joins every in-flight handler so responses
//! already being written always complete.

use crate::metrics::Counter;
use crate::telemetry::{ingest_staleness_us, last_ingest_us};
use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Longest request line (bytes, before line terminator) the parser
/// accepts.
pub const MAX_REQUEST_LINE: usize = 8192;

/// Why a request line failed to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestError {
    /// Zero bytes before the line terminator.
    Empty,
    /// Line exceeds [`MAX_REQUEST_LINE`].
    TooLong,
    /// Line is not valid UTF-8.
    NotUtf8,
    /// Fewer than three space-separated tokens.
    MissingTokens,
    /// More than three space-separated tokens.
    ExtraTokens,
    /// Method token empty, too long, or not uppercase ASCII letters.
    BadMethod,
    /// Path token empty, not `/`-rooted, too long, or contains
    /// non-graphic characters.
    BadPath,
    /// Version token is not `HTTP/1.0` or `HTTP/1.1`.
    BadVersion,
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            RequestError::Empty => "empty request line",
            RequestError::TooLong => "request line too long",
            RequestError::NotUtf8 => "request line is not UTF-8",
            RequestError::MissingTokens => "request line has fewer than 3 tokens",
            RequestError::ExtraTokens => "request line has more than 3 tokens",
            RequestError::BadMethod => "malformed method token",
            RequestError::BadPath => "malformed path token",
            RequestError::BadVersion => "unsupported HTTP version",
        };
        f.write_str(msg)
    }
}

/// A successfully parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestLine {
    /// Uppercase ASCII method token (`GET`, `POST`, …).
    pub method: String,
    /// `/`-rooted path token, verbatim.
    pub path: String,
    /// `HTTP/1.0` or `HTTP/1.1`.
    pub version: String,
}

/// Strictly parse an HTTP request line from raw bytes.
///
/// Accepts an optional trailing `\r\n`, `\n`, or `\r`; everything else
/// must be exactly `METHOD SP PATH SP VERSION` with single spaces.
/// Total length (after stripping the terminator) is capped at
/// [`MAX_REQUEST_LINE`], the method at 16 bytes of uppercase ASCII
/// letters, the path at 2048 bytes of graphic ASCII starting with `/`.
///
/// # Errors
/// A [`RequestError`] naming the first violated rule. Never panics on
/// any input — the faultkit state-fuzz campaign holds it to that.
pub fn parse_request_line(raw: &[u8]) -> Result<RequestLine, RequestError> {
    let line = raw
        .strip_suffix(b"\r\n")
        .or_else(|| raw.strip_suffix(b"\n"))
        .or_else(|| raw.strip_suffix(b"\r"))
        .unwrap_or(raw);
    if line.len() > MAX_REQUEST_LINE {
        return Err(RequestError::TooLong);
    }
    if line.is_empty() {
        return Err(RequestError::Empty);
    }
    let s = std::str::from_utf8(line).map_err(|_| RequestError::NotUtf8)?;
    let mut tokens = s.split(' ');
    let method = tokens.next().unwrap_or("");
    let (path, version) = match (tokens.next(), tokens.next()) {
        (Some(p), Some(v)) => (p, v),
        _ => return Err(RequestError::MissingTokens),
    };
    if tokens.next().is_some() {
        return Err(RequestError::ExtraTokens);
    }
    if method.is_empty() || method.len() > 16 || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(RequestError::BadMethod);
    }
    if !path.starts_with('/') || path.len() > 2048 || !path.bytes().all(|b| b.is_ascii_graphic()) {
        return Err(RequestError::BadPath);
    }
    if version != "HTTP/1.0" && version != "HTTP/1.1" {
        return Err(RequestError::BadVersion);
    }
    Ok(RequestLine {
        method: method.to_string(),
        path: path.to_string(),
        version: version.to_string(),
    })
}

/// Scrape server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:9100`; port 0 picks an ephemeral
    /// port ([`ServeHandle::addr`] reports the real one).
    pub addr: String,
    /// Per-connection read timeout (slowloris bound).
    pub read_timeout: Duration,
    /// `/healthz` reports `stale` once the ingest watermark is older
    /// than this.
    pub stale_after: Duration,
    /// Maximum concurrent handler threads; excess connections receive
    /// an immediate `503`.
    pub max_inflight: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            read_timeout: Duration::from_secs(2),
            stale_after: Duration::from_secs(5),
            max_inflight: 8,
        }
    }
}

struct Ctx {
    read_timeout: Duration,
    stale_after_us: u64,
    started: Instant,
    requests_metrics: Counter,
    requests_healthz: Counter,
    requests_snapshot: Counter,
    requests_series: Counter,
    requests_alerts: Counter,
    bad_requests: Counter,
    timeouts: Counter,
    rejected: Counter,
}

/// Handle to a running scrape server. [`ServeHandle::shutdown`] (or
/// drop) stops the accept loop and drains in-flight handlers.
pub struct ServeHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ServeHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeHandle")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl ServeHandle {
    /// The address actually bound (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, wake the accept loop, and join every in-flight
    /// handler thread so responses mid-write complete before return.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let Some(accept) = self.accept.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        // The accept loop blocks in accept(2); a throwaway connection
        // wakes it so it can observe the stop flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        let _ = accept.join();
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Bind and start serving on a background thread.
///
/// # Errors
/// Any [`TcpListener::bind`] failure (address in use, permission, bad
/// address syntax).
pub fn serve(cfg: &ServeConfig) -> io::Result<ServeHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let ctx = Arc::new(Ctx {
        read_timeout: cfg.read_timeout,
        stale_after_us: u64::try_from(cfg.stale_after.as_micros()).unwrap_or(u64::MAX),
        started: Instant::now(),
        requests_metrics: crate::counter_labeled("serve_requests_total", &[("path", "/metrics")]),
        requests_healthz: crate::counter_labeled("serve_requests_total", &[("path", "/healthz")]),
        requests_snapshot: crate::counter_labeled("serve_requests_total", &[("path", "/snapshot")]),
        requests_series: crate::counter_labeled("serve_requests_total", &[("path", "/series")]),
        requests_alerts: crate::counter_labeled("serve_requests_total", &[("path", "/alerts")]),
        bad_requests: crate::counter("serve_bad_requests_total"),
        timeouts: crate::counter("serve_timeouts_total"),
        rejected: crate::counter("serve_rejected_total"),
    });
    crate::global().describe(
        "serve_requests_total",
        "Requests answered by the telemetry server, by path.",
    );
    let max_inflight = cfg.max_inflight.max(1);
    let loop_stop = Arc::clone(&stop);
    let accept = std::thread::Builder::new()
        .name("obskit-serve".to_string())
        .spawn(move || {
            let mut handlers: Vec<JoinHandle<()>> = Vec::new();
            for conn in listener.incoming() {
                if loop_stop.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                handlers.retain(|h| !h.is_finished());
                if handlers.len() >= max_inflight {
                    ctx.rejected.inc();
                    respond(&stream, 503, "Service Unavailable", "text/plain", "busy\n");
                    continue;
                }
                let conn_ctx = Arc::clone(&ctx);
                if let Ok(handle) = std::thread::Builder::new()
                    .name("obskit-serve-conn".to_string())
                    .spawn(move || handle_conn(&stream, &conn_ctx))
                {
                    handlers.push(handle);
                }
            }
            for h in handlers {
                let _ = h.join();
            }
        })
        .expect("spawn serve accept thread");
    Ok(ServeHandle {
        addr,
        stop,
        accept: Some(accept),
    })
}

/// Read until the first `\n` (inclusive), EOF, timeout, or the length
/// cap. `Ok` carries the raw line bytes; `Err(true)` means timeout,
/// `Err(false)` means connection error/EOF before any terminator.
fn read_request_line(mut stream: &TcpStream) -> Result<Vec<u8>, bool> {
    let mut line = Vec::with_capacity(128);
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => {
                // EOF: accept what we have if nonempty (lenient peers
                // omit the final newline), else report a dead peer.
                return if line.is_empty() {
                    Err(false)
                } else {
                    Ok(line)
                };
            }
            Ok(_) => {
                line.push(byte[0]);
                if byte[0] == b'\n' {
                    return Ok(line);
                }
                if line.len() > MAX_REQUEST_LINE + 2 {
                    return Ok(line); // parser will report TooLong
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                return Err(true);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Err(false),
        }
    }
}

fn handle_conn(stream: &TcpStream, ctx: &Ctx) {
    let _ = stream.set_read_timeout(Some(ctx.read_timeout));
    let line = match read_request_line(stream) {
        Ok(line) => line,
        Err(true) => {
            ctx.timeouts.inc();
            respond(stream, 408, "Request Timeout", "text/plain", "timeout\n");
            return;
        }
        Err(false) => return,
    };
    let request = match parse_request_line(&line) {
        Ok(request) => request,
        Err(e) => {
            ctx.bad_requests.inc();
            respond(stream, 400, "Bad Request", "text/plain", &format!("{e}\n"));
            return;
        }
    };
    if request.method != "GET" {
        ctx.bad_requests.inc();
        respond(
            stream,
            405,
            "Method Not Allowed",
            "text/plain",
            "only GET is supported\n",
        );
        return;
    }
    // Split off the query string: only /series takes one.
    let (path, query) = match request.path.split_once('?') {
        Some((p, q)) => (p, q),
        None => (request.path.as_str(), ""),
    };
    match path {
        "/metrics" => {
            ctx.requests_metrics.inc();
            let body = crate::global().render_prometheus();
            respond(
                stream,
                200,
                "OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            );
        }
        "/healthz" => {
            ctx.requests_healthz.inc();
            let (status, reason, body) = health(ctx);
            respond(stream, status, reason, "application/json", &body);
        }
        "/snapshot" => {
            ctx.requests_snapshot.inc();
            let body = crate::global().render_snapshot_jsonl();
            respond(stream, 200, "OK", "application/x-ndjson", &body);
        }
        "/series" => {
            ctx.requests_series.inc();
            let Some(store) = crate::series::global_series() else {
                respond(
                    stream,
                    503,
                    "Service Unavailable",
                    "text/plain",
                    "series store not running\n",
                );
                return;
            };
            match crate::series::parse_series_query(query) {
                Ok(q) => {
                    let body = store.render_query_json(&q, crate::telemetry::wall_us());
                    respond(stream, 200, "OK", "application/json", &body);
                }
                Err(e) => {
                    ctx.bad_requests.inc();
                    respond(stream, 400, "Bad Request", "text/plain", &format!("{e}\n"));
                }
            }
        }
        "/alerts" => {
            ctx.requests_alerts.inc();
            let body = crate::rules::global_engine().alerts_jsonl();
            respond(stream, 200, "OK", "application/x-ndjson", &body);
        }
        _ => {
            // routes: /metrics /healthz /snapshot /series /alerts
            respond(stream, 404, "Not Found", "text/plain", "unknown path\n");
        }
    }
}

/// Build the `/healthz` verdict: stale iff ingest has happened at least
/// once and the watermark is older than `stale_after`.
fn health(ctx: &Ctx) -> (u16, &'static str, String) {
    let uptime_us = u64::try_from(ctx.started.elapsed().as_micros()).unwrap_or(u64::MAX);
    let (last, staleness) = (last_ingest_us(), ingest_staleness_us());
    let stale = staleness.is_some_and(|s| s > ctx.stale_after_us);
    let status = if stale { "stale" } else { "ok" };
    let body = format!(
        "{{\"status\":\"{status}\",\"uptime_us\":{uptime_us},\"last_ingest_us\":{},\"staleness_us\":{},\"stale_after_us\":{}}}\n",
        last.map_or("null".to_string(), |v| v.to_string()),
        staleness.map_or("null".to_string(), |v| v.to_string()),
        ctx.stale_after_us,
    );
    if stale {
        (503, "Service Unavailable", body)
    } else {
        (200, "OK", body)
    }
}

fn respond(mut stream: &TcpStream, status: u16, reason: &str, content_type: &str, body: &str) {
    let header = format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(header.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
    // Graceful close. The handler only parses the request line, so the
    // rest of the client's headers are still unread; closing with
    // unread data makes the kernel send RST, which destroys the
    // response sitting in the peer's receive buffer. Half-close our
    // side, then drain (bounded) until the peer acknowledges with EOF.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut sink = [0u8; 1024];
    for _ in 0..64 {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_accepts_canonical_lines() {
        for raw in [
            &b"GET /metrics HTTP/1.0\r\n"[..],
            b"GET /healthz HTTP/1.1\n",
            b"GET /snapshot HTTP/1.0",
            b"DELETE /x HTTP/1.1\r\n",
        ] {
            let parsed = parse_request_line(raw).expect("canonical line parses");
            assert!(parsed.path.starts_with('/'));
        }
        let r = parse_request_line(b"GET /metrics HTTP/1.0\r\n").unwrap();
        assert_eq!(
            r,
            RequestLine {
                method: "GET".to_string(),
                path: "/metrics".to_string(),
                version: "HTTP/1.0".to_string(),
            }
        );
    }

    #[test]
    fn parser_rejects_each_violation_with_the_right_error() {
        use RequestError::*;
        let long_path = format!("GET /{} HTTP/1.0", "a".repeat(3000));
        let too_long = format!("GET /{} HTTP/1.0", "a".repeat(MAX_REQUEST_LINE));
        let cases: Vec<(&[u8], RequestError)> = vec![
            (b"", Empty),
            (b"\r\n", Empty),
            (too_long.as_bytes(), TooLong),
            (b"GET /\xff\xfe HTTP/1.0", NotUtf8),
            (b"GET /metrics", MissingTokens),
            (b"GET", MissingTokens),
            (b"GET /metrics HTTP/1.0 extra", ExtraTokens),
            (b"GET  /metrics HTTP/1.0", ExtraTokens), // double space -> empty 2nd token
            (b"get /metrics HTTP/1.0", BadMethod),
            (b"G3T /metrics HTTP/1.0", BadMethod),
            (b" /metrics HTTP/1.0", BadMethod), // leading space -> empty method
            (b"GET metrics HTTP/1.0", BadPath),
            (long_path.as_bytes(), BadPath),
            (b"GET /\x01 HTTP/1.0", BadPath),
            (b"GET /metrics HTTP/2.0", BadVersion),
            (b"GET /metrics http/1.0", BadVersion),
        ];
        for (raw, want) in cases {
            assert_eq!(
                parse_request_line(raw),
                Err(want),
                "input {:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn parser_is_deterministic_on_arbitrary_bytes() {
        let mut state = 0x9e3779b97f4a7c15u64;
        for len in [0usize, 1, 7, 64, 8191, 8192, 8193, 20000] {
            let mut raw = Vec::with_capacity(len);
            for _ in 0..len {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                raw.push((state >> 56) as u8);
            }
            assert_eq!(parse_request_line(&raw), parse_request_line(&raw));
        }
    }
}
