//! Wall-clock span timing.
//!
//! A [`SpanGuard`] measures from construction to drop, records the
//! duration into a global histogram named `<name>_duration_us`, and —
//! when the JSONL trace sink is enabled — emits a `span` event carrying
//! the labels.
//!
//! Spans are also **hierarchical**: each guard pushes a frame onto a
//! thread-local stack (see [`crate::tree`]), so nested spans know their
//! parent, carry process-unique ids, and aggregate total vs. self time
//! per call path. Trace events include `span_id` and `parent` fields so
//! offline tools can rebuild the exact tree.

use crate::trace::{self, TraceEvent};
use crate::Histogram;
use std::time::Instant;

/// An RAII span: times from creation until drop.
///
/// Construct with [`span`] or [`span_labeled`]; see also [`time`] for a
/// closure form.
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    histogram: Histogram,
    labels: Vec<(String, String)>,
    start: Instant,
    id: u64,
    parent_id: u64,
}

impl SpanGuard {
    /// Elapsed time so far, in microseconds.
    #[must_use]
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// This span's process-unique id (0 with the `noop` feature).
    #[must_use]
    pub fn span_id(&self) -> u64 {
        self.id
    }

    /// The id of the enclosing span on this thread at construction time
    /// (0 for a root span).
    #[must_use]
    pub fn parent_id(&self) -> u64 {
        self.parent_id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let dur_us = self.elapsed_us();
        self.histogram.record(dur_us);
        crate::tree::exit(self.id, dur_us);
        if trace::enabled() {
            let mut event = TraceEvent::now("span", self.name).with_duration(dur_us);
            event
                .labels
                .push(("span_id".to_string(), self.id.to_string()));
            event
                .labels
                .push(("parent".to_string(), self.parent_id.to_string()));
            event.labels.append(&mut self.labels);
            trace::emit(&event);
        }
    }
}

/// Open a span named `name`; durations aggregate into the global
/// histogram `<name>_duration_us` and into the span tree under the
/// current thread's open path.
#[must_use]
pub fn span(name: &'static str) -> SpanGuard {
    span_labeled(name, &[])
}

/// Open a span with labels. Labels go into the histogram key (so each
/// label combination aggregates separately) and into the trace event.
/// The span-tree path uses the bare `name` only, keeping tree
/// cardinality bounded by code structure rather than label values.
#[must_use]
pub fn span_labeled(name: &'static str, labels: &[(&str, &str)]) -> SpanGuard {
    let histogram = crate::histogram_labeled(&format!("{name}_duration_us"), labels);
    let (id, parent_id) = crate::tree::enter(name);
    SpanGuard {
        name,
        histogram,
        labels: labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect(),
        start: Instant::now(),
        id,
        parent_id,
    }
}

/// Time a closure under a span and return its result.
pub fn time<T, F: FnOnce() -> T>(name: &'static str, f: F) -> T {
    let _guard = span(name);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(not(feature = "noop"))]
    fn span_records_into_named_histogram() {
        {
            let _g = span("obskit_test_span");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = crate::histogram("obskit_test_span_duration_us").snapshot();
        assert_eq!(snap.count, 1);
        assert!(snap.max >= 1_000, "slept 2ms, recorded {}us", snap.max);
    }

    #[test]
    #[cfg(not(feature = "noop"))]
    fn labeled_spans_aggregate_separately() {
        {
            let _a = span_labeled("obskit_test_cell", &[("method", "systematic")]);
            let _b = span_labeled("obskit_test_cell", &[("method", "random")]);
        }
        let a =
            crate::histogram_labeled("obskit_test_cell_duration_us", &[("method", "systematic")]);
        let b = crate::histogram_labeled("obskit_test_cell_duration_us", &[("method", "random")]);
        assert_eq!(a.snapshot().count, 1);
        assert_eq!(b.snapshot().count, 1);
    }

    #[test]
    #[cfg(not(feature = "noop"))]
    fn time_returns_the_closure_result() {
        let v = time("obskit_test_time", || 21 * 2);
        assert_eq!(v, 42);
        assert_eq!(
            crate::histogram("obskit_test_time_duration_us")
                .snapshot()
                .count,
            1
        );
    }

    #[test]
    #[cfg(not(feature = "noop"))]
    fn span_ids_are_unique_and_ordered() {
        let a = span("obskit_test_ids");
        let b = span("obskit_test_ids");
        assert!(b.span_id() > a.span_id());
        assert_eq!(b.parent_id(), a.span_id());
        drop(b);
        drop(a);
    }

    #[test]
    #[cfg(feature = "noop")]
    fn noop_spans_have_zero_ids() {
        let g = span("obskit_test_noop_ids");
        assert_eq!(g.span_id(), 0);
        assert_eq!(g.parent_id(), 0);
    }
}
