//! Runtime self-telemetry: a background sampler thread that keeps
//! process gauges (`proc_rss_kb`, `proc_rss_max_kb`, `proc_open_fds`)
//! fresh, derives windowed per-second rates from registered counters
//! (`stream_packets_per_sec`, …), and retains a fixed-size ring of
//! samples for post-run inspection — plus the *ingest watermark* the
//! `/healthz` endpoint reports staleness against.
//!
//! Everything here is std-only. RSS comes from `/proc/self/status`
//! (`VmRSS:` is already in kB; `/proc/self/statm` reports pages and the
//! page size is not reachable without libc), fd count from the entry
//! count of `/proc/self/fd`. On platforms without procfs both readers
//! return `None` and the gauges simply stay at zero.

use crate::metrics::{Counter, Gauge};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Microseconds since the Unix epoch.
#[must_use]
pub fn wall_us() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// Process-wide default sampler cadence in ms (see
/// [`set_default_interval_ms`]).
static DEFAULT_INTERVAL_MS: AtomicU64 = AtomicU64::new(200);

/// Override the default sampler cadence (ms, clamped to >= 1) used by
/// [`TelemetryConfig::default`] / [`TelemetryConfig::standard`]. Set
/// this **before** [`ensure_global`] — a sampler already running keeps
/// its original interval.
pub fn set_default_interval_ms(ms: u64) {
    DEFAULT_INTERVAL_MS.store(ms.max(1), Ordering::Release);
}

/// The current default sampler cadence in ms.
#[must_use]
pub fn default_interval_ms() -> u64 {
    DEFAULT_INTERVAL_MS.load(Ordering::Acquire)
}

/// Windowed per-second rate of a counter between two readings,
/// **counter-reset-aware**: when `cur < prev` (registry reset, process
/// restart behind the same scrape address) the delta clamps to 0
/// instead of wrapping into a huge spurious rate. `None` when no time
/// elapsed.
#[must_use]
pub fn counter_rate_per_sec(prev: u64, cur: u64, dt_us: u64) -> Option<f64> {
    if dt_us == 0 {
        return None;
    }
    Some(cur.saturating_sub(prev) as f64 / (dt_us as f64 / 1e6))
}

/// Wall-clock µs of the most recent ingest, 0 = never.
static LAST_INGEST_US: AtomicU64 = AtomicU64::new(0);

/// Record "ingest happened now" — the liveness watermark `/healthz`
/// compares against. Call once per batch, not per packet.
pub fn touch_ingest() {
    LAST_INGEST_US.store(wall_us().max(1), Ordering::Release);
}

/// Wall-clock µs of the last [`touch_ingest`], `None` if never called.
#[must_use]
pub fn last_ingest_us() -> Option<u64> {
    match LAST_INGEST_US.load(Ordering::Acquire) {
        0 => None,
        v => Some(v),
    }
}

/// Time since the last ingest, `None` if ingest never happened.
#[must_use]
pub fn ingest_staleness_us() -> Option<u64> {
    last_ingest_us().map(|t| wall_us().saturating_sub(t))
}

/// Resident set size in kB from `/proc/self/status` (`VmRSS:`), `None`
/// off-Linux or before the first page fault table is populated.
#[must_use]
pub fn rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            return rest
                .trim()
                .strip_suffix("kB")
                .map(str::trim)
                .and_then(|v| v.parse().ok());
        }
    }
    None
}

/// Number of open file descriptors (entries in `/proc/self/fd`),
/// `None` off-Linux.
#[must_use]
pub fn open_fds() -> Option<u64> {
    std::fs::read_dir("/proc/self/fd")
        .ok()
        .map(|d| d.count() as u64)
}

/// Derive `gauge` = per-second rate of `counter` between sampler ticks.
#[derive(Debug, Clone)]
pub struct RateSpec {
    /// Source counter key in the global registry (created if missing).
    pub counter: String,
    /// Destination gauge key for the rounded per-second rate.
    pub gauge: String,
}

/// Sampler configuration.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Time between sampler ticks.
    pub interval: Duration,
    /// How many [`TelemetrySample`]s the ring retains.
    pub ring_capacity: usize,
    /// Counter→gauge rate derivations to maintain.
    pub rates: Vec<RateSpec>,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            interval: Duration::from_millis(default_interval_ms()),
            ring_capacity: 600,
            rates: Vec::new(),
        }
    }
}

impl TelemetryConfig {
    /// The standard pipeline config: default cadence plus the streaming
    /// rates the scrape endpoint documents (`stream_packets_per_sec`,
    /// `stream_windows_per_sec`).
    #[must_use]
    pub fn standard() -> Self {
        TelemetryConfig {
            rates: vec![
                RateSpec {
                    counter: "stream_packets_ingested_total".to_string(),
                    gauge: "stream_packets_per_sec".to_string(),
                },
                RateSpec {
                    counter: "stream_windows_scored_total".to_string(),
                    gauge: "stream_windows_per_sec".to_string(),
                },
            ],
            ..TelemetryConfig::default()
        }
    }
}

/// One sampler tick's readings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetrySample {
    /// Wall-clock µs of the tick.
    pub ts_us: u64,
    /// RSS in kB (0 when procfs is unavailable).
    pub rss_kb: u64,
    /// Open fd count (0 when procfs is unavailable).
    pub open_fds: u64,
}

struct RateTrack {
    counter: Counter,
    gauge: Gauge,
    prev: u64,
    prev_us: u64,
}

struct Shared {
    ring: Mutex<VecDeque<TelemetrySample>>,
    ring_capacity: usize,
    max_rss_kb: AtomicU64,
    rates: Mutex<Vec<RateTrack>>,
    rss_gauge: Gauge,
    rss_max_gauge: Gauge,
    fds_gauge: Gauge,
    ticks: Counter,
    stop: Mutex<bool>,
    wake: Condvar,
}

impl Shared {
    fn tick(&self) -> TelemetrySample {
        let now = wall_us();
        let rss = rss_kb().unwrap_or(0);
        let fds = open_fds().unwrap_or(0);
        let prev_max = self.max_rss_kb.fetch_max(rss, Ordering::AcqRel);
        self.rss_gauge.set(i64::try_from(rss).unwrap_or(i64::MAX));
        self.rss_max_gauge
            .set(i64::try_from(prev_max.max(rss)).unwrap_or(i64::MAX));
        self.fds_gauge.set(i64::try_from(fds).unwrap_or(i64::MAX));
        self.ticks.inc();
        {
            let mut rates = self.rates.lock().expect("telemetry rates poisoned");
            for t in rates.iter_mut() {
                let v = t.counter.get();
                let dt_us = now.saturating_sub(t.prev_us);
                if let Some(per_sec) = counter_rate_per_sec(t.prev, v, dt_us) {
                    t.gauge.set(per_sec.round() as i64);
                }
                t.prev = v;
                t.prev_us = now;
            }
        }
        let sample = TelemetrySample {
            ts_us: now,
            rss_kb: rss,
            open_fds: fds,
        };
        {
            let mut ring = self.ring.lock().expect("telemetry ring poisoned");
            if ring.len() == self.ring_capacity {
                ring.pop_front();
            }
            ring.push_back(sample);
        }
        // With the tick's gauges fresh and no locks held, feed the
        // series store (and through it the alert engine), if installed.
        crate::series::on_tick(now);
        sample
    }
}

/// Handle to a running sampler thread. Dropping it stops the thread.
pub struct Telemetry {
    shared: Arc<Shared>,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("max_rss_kb", &self.max_rss_kb())
            .finish_non_exhaustive()
    }
}

impl Telemetry {
    /// Start the sampler thread; the first tick happens immediately so
    /// gauges are populated before the caller proceeds.
    #[must_use]
    pub fn start(cfg: TelemetryConfig) -> Telemetry {
        let now = wall_us();
        let rates = cfg
            .rates
            .iter()
            .map(|spec| RateTrack {
                counter: crate::counter(&spec.counter),
                gauge: crate::gauge(&spec.gauge),
                prev: 0,
                prev_us: now,
            })
            .collect();
        let shared = Arc::new(Shared {
            ring: Mutex::new(VecDeque::with_capacity(cfg.ring_capacity.max(1))),
            ring_capacity: cfg.ring_capacity.max(1),
            max_rss_kb: AtomicU64::new(0),
            rates: Mutex::new(rates),
            rss_gauge: crate::gauge("proc_rss_kb"),
            rss_max_gauge: crate::gauge("proc_rss_max_kb"),
            fds_gauge: crate::gauge("proc_open_fds"),
            ticks: crate::counter("telemetry_samples_total"),
            stop: Mutex::new(false),
            wake: Condvar::new(),
        });
        shared.tick();
        let interval = cfg.interval.max(Duration::from_millis(1));
        let worker = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("obskit-telemetry".to_string())
            .spawn(move || loop {
                {
                    let stopped = worker.stop.lock().expect("telemetry stop poisoned");
                    let (stopped, _) = worker
                        .wake
                        .wait_timeout(stopped, interval)
                        .expect("telemetry stop poisoned");
                    if *stopped {
                        return;
                    }
                }
                worker.tick();
            })
            .expect("spawn telemetry thread");
        Telemetry {
            shared,
            thread: Some(thread),
        }
    }

    /// Force a tick from the calling thread (tests; end-of-run flush so
    /// `max_rss_kb` includes the final state).
    pub fn sample_now(&self) -> TelemetrySample {
        self.shared.tick()
    }

    /// Highest RSS (kB) seen by any tick so far.
    #[must_use]
    pub fn max_rss_kb(&self) -> u64 {
        self.shared.max_rss_kb.load(Ordering::Acquire)
    }

    /// Copy of the retained sample ring, oldest first.
    #[must_use]
    pub fn samples(&self) -> Vec<TelemetrySample> {
        self.shared
            .ring
            .lock()
            .expect("telemetry ring poisoned")
            .iter()
            .copied()
            .collect()
    }
}

impl Drop for Telemetry {
    fn drop(&mut self) {
        if let Some(thread) = self.thread.take() {
            *self.shared.stop.lock().expect("telemetry stop poisoned") = true;
            self.shared.wake.notify_all();
            let _ = thread.join();
        }
    }
}

static GLOBAL_TELEMETRY: OnceLock<Telemetry> = OnceLock::new();

/// Start the process-wide sampler if it is not already running; either
/// way return it. The global sampler runs until process exit.
pub fn ensure_global(cfg: TelemetryConfig) -> &'static Telemetry {
    GLOBAL_TELEMETRY.get_or_init(|| Telemetry::start(cfg))
}

/// The process-wide sampler, if [`ensure_global`] has run.
#[must_use]
pub fn global_telemetry() -> Option<&'static Telemetry> {
    GLOBAL_TELEMETRY.get()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_rate_is_reset_aware() {
        // Normal progression: 500 in half a second = 1000/s.
        assert_eq!(counter_rate_per_sec(1000, 1500, 500_000), Some(1000.0));
        // Counter reset (cur < prev): clamp to 0, never a spurious
        // huge rate from wraparound arithmetic.
        assert_eq!(counter_rate_per_sec(1500, 10, 500_000), Some(0.0));
        // No elapsed time: undefined, not a division by zero.
        assert_eq!(counter_rate_per_sec(0, 100, 0), None);
    }

    #[test]
    fn default_interval_is_configurable_and_clamped() {
        let original = default_interval_ms();
        set_default_interval_ms(50);
        assert_eq!(default_interval_ms(), 50);
        assert_eq!(
            TelemetryConfig::default().interval,
            Duration::from_millis(50)
        );
        set_default_interval_ms(0);
        assert_eq!(default_interval_ms(), 1, "0 clamps to 1ms");
        set_default_interval_ms(original);
    }

    #[test]
    fn watermark_moves_forward() {
        assert!(ingest_staleness_us().is_none() || last_ingest_us().is_some());
        touch_ingest();
        let first = last_ingest_us().expect("watermark set");
        std::thread::sleep(Duration::from_millis(2));
        touch_ingest();
        let second = last_ingest_us().expect("watermark set");
        assert!(second > first);
        assert!(ingest_staleness_us().expect("stale") < 1_000_000);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn proc_readers_return_plausible_values() {
        let rss = rss_kb().expect("VmRSS on linux");
        assert!(rss > 100, "rss {rss} kB implausibly small");
        let fds = open_fds().expect("fd dir on linux");
        assert!(fds >= 3, "stdio alone gives 3 fds, got {fds}");
    }

    #[test]
    #[cfg(not(feature = "noop"))]
    fn sampler_fills_ring_and_tracks_max() {
        let t = Telemetry::start(TelemetryConfig {
            interval: Duration::from_millis(5),
            ring_capacity: 4,
            rates: vec![RateSpec {
                counter: "telemetry_test_src_total".to_string(),
                gauge: "telemetry_test_rate_per_sec".to_string(),
            }],
        });
        crate::counter("telemetry_test_src_total").add(1000);
        for _ in 0..6 {
            t.sample_now();
        }
        let samples = t.samples();
        assert_eq!(samples.len(), 4, "ring must stay bounded");
        assert!(samples.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
        #[cfg(target_os = "linux")]
        {
            assert!(t.max_rss_kb() > 0);
            assert!(crate::gauge("proc_rss_kb").get() > 0);
            assert!(crate::gauge("proc_rss_max_kb").get() >= crate::gauge("proc_rss_kb").get());
        }
        drop(t); // joins the thread
    }
}
