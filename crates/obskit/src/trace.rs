//! Structured JSONL event tracing.
//!
//! A process-wide sink, disabled by default. Enable it with
//! [`enable_path`] (the CLI's `--trace <path>`) or [`init_from_env`]
//! (the `NETSAMPLE_TRACE` environment variable). Each event is one JSON
//! object per line — flat string/integer fields only, hand-serialized
//! and hand-parsed here so the crate stays dependency-free.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Environment variable naming the trace output path.
pub const TRACE_ENV: &str = "NETSAMPLE_TRACE";

static SINK: OnceLock<Mutex<Box<dyn Write + Send>>> = OnceLock::new();
static ENABLED: AtomicBool = AtomicBool::new(false);

/// One trace event: a kind (`span`, `count`, …), a name, an optional
/// duration, and free-form string labels.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceEvent {
    /// Wall-clock microseconds since the Unix epoch.
    pub ts_us: u64,
    /// Event class, e.g. `"span"`.
    pub kind: String,
    /// Event name, e.g. `"chi2"`.
    pub name: String,
    /// Duration in microseconds, for span-like events.
    pub dur_us: Option<u64>,
    /// Additional key/value context, in emission order.
    pub labels: Vec<(String, String)>,
}

impl TraceEvent {
    /// A new event stamped with the current wall clock.
    #[must_use]
    pub fn now(kind: &str, name: &str) -> Self {
        TraceEvent {
            ts_us: wall_clock_us(),
            kind: kind.to_string(),
            name: name.to_string(),
            dur_us: None,
            labels: Vec::new(),
        }
    }

    /// Attach a duration.
    #[must_use]
    pub fn with_duration(mut self, dur_us: u64) -> Self {
        self.dur_us = Some(dur_us);
        self
    }

    /// Attach one label.
    #[must_use]
    pub fn with_label(mut self, key: &str, value: &str) -> Self {
        self.labels.push((key.to_string(), value.to_string()));
        self
    }

    /// Serialize to a single JSON line (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            "{{\"ts_us\":{},\"kind\":\"{}\",\"name\":\"{}\"",
            self.ts_us,
            escape(&self.kind),
            escape(&self.name)
        );
        if let Some(d) = self.dur_us {
            let _ = write!(out, ",\"dur_us\":{d}");
        }
        for (k, v) in &self.labels {
            let _ = write!(out, ",\"{}\":\"{}\"", escape(k), escape(v));
        }
        out.push('}');
        out
    }

    /// Parse one JSON line produced by [`TraceEvent::to_json`].
    ///
    /// Returns `None` on anything that is not a flat object of string
    /// and unsigned-integer fields with the mandatory `ts_us`, `kind`,
    /// and `name` keys.
    #[must_use]
    pub fn parse_line(line: &str) -> Option<TraceEvent> {
        let fields = parse_flat_object(line.trim())?;
        let mut event = TraceEvent::default();
        let mut saw_ts = false;
        let mut saw_kind = false;
        let mut saw_name = false;
        for (key, value) in fields {
            match (key.as_str(), value) {
                ("ts_us", JsonValue::Int(v)) => {
                    event.ts_us = v;
                    saw_ts = true;
                }
                ("dur_us", JsonValue::Int(v)) => event.dur_us = Some(v),
                ("kind", JsonValue::Str(v)) => {
                    event.kind = v;
                    saw_kind = true;
                }
                ("name", JsonValue::Str(v)) => {
                    event.name = v;
                    saw_name = true;
                }
                (_, JsonValue::Str(v)) => event.labels.push((key, v)),
                (_, JsonValue::Int(v)) => event.labels.push((key, v.to_string())),
            }
        }
        (saw_ts && saw_kind && saw_name).then_some(event)
    }
}

enum JsonValue {
    Str(String),
    Int(u64),
}

/// Parse `{"k":"v","n":1,...}` — flat, no nesting, no arrays.
fn parse_flat_object(s: &str) -> Option<Vec<(String, JsonValue)>> {
    let body = s.strip_prefix('{')?.strip_suffix('}')?;
    let mut fields = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        // Skip whitespace and separators.
        while matches!(chars.peek(), Some(' ' | ',')) {
            chars.next();
        }
        if chars.peek().is_none() {
            break;
        }
        let key = parse_string(&mut chars)?;
        while matches!(chars.peek(), Some(' ')) {
            chars.next();
        }
        if chars.next() != Some(':') {
            return None;
        }
        while matches!(chars.peek(), Some(' ')) {
            chars.next();
        }
        let value = match chars.peek() {
            Some('"') => JsonValue::Str(parse_string(&mut chars)?),
            Some(c) if c.is_ascii_digit() => {
                let mut n = String::new();
                while matches!(chars.peek(), Some(c) if c.is_ascii_digit()) {
                    n.push(chars.next()?);
                }
                JsonValue::Int(n.parse().ok()?)
            }
            _ => return None,
        };
        fields.push((key, value));
    }
    Some(fields)
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars>) -> Option<String> {
    if chars.next() != Some('"') {
        return None;
    }
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'r' => out.push('\r'),
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out
}

/// Microseconds since the Unix epoch (0 if the clock is before 1970).
#[must_use]
pub fn wall_clock_us() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// Route trace events to an arbitrary writer (tests, in-memory sinks).
///
/// The sink can be installed once per process; later calls are ignored
/// and return `false`.
pub fn enable_writer(w: Box<dyn Write + Send>) -> bool {
    let installed = SINK.set(Mutex::new(w)).is_ok();
    if installed {
        ENABLED.store(true, Ordering::Release);
    }
    installed
}

/// Route trace events to a JSONL file at `path` (truncating it).
///
/// # Errors
/// Propagates file-creation errors; returns `Ok(false)` if a sink was
/// already installed.
pub fn enable_path(path: &str) -> std::io::Result<bool> {
    let file = File::create(path)?;
    Ok(enable_writer(Box::new(BufWriter::new(file))))
}

/// Enable tracing from the `NETSAMPLE_TRACE` environment variable, if
/// set. Returns whether tracing is enabled afterwards.
pub fn init_from_env() -> bool {
    if let Ok(path) = std::env::var(TRACE_ENV) {
        if !path.is_empty() {
            let _ = enable_path(&path);
        }
    }
    enabled()
}

/// Whether a trace sink is installed.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// Emit one event to the sink (a no-op when tracing is disabled).
pub fn emit(event: &TraceEvent) {
    if !enabled() {
        return;
    }
    if let Some(sink) = SINK.get() {
        let mut line = event.to_json();
        line.push('\n');
        let mut w = match sink.lock() {
            Ok(w) => w,
            Err(poisoned) => poisoned.into_inner(),
        };
        let _ = w.write_all(line.as_bytes());
    }
}

/// Flush the sink (call before process exit so buffered events land).
pub fn flush() {
    if let Some(sink) = SINK.get() {
        let mut w = match sink.lock() {
            Ok(w) => w,
            // A thread that panicked mid-write poisons the lock; the
            // buffered bytes are still better flushed than dropped.
            Err(poisoned) => poisoned.into_inner(),
        };
        let _ = w.flush();
    }
}

/// An RAII guard that flushes the trace sink when dropped.
///
/// Binaries hold one at the top of `main` so buffered events reach disk
/// on *every* exit path — early error returns and panics (unwinding
/// drops locals) included, not just the clean fall-through at the end.
#[derive(Debug, Default)]
#[must_use = "the guard flushes on drop; binding it to _ drops it immediately"]
pub struct FlushGuard(());

impl Drop for FlushGuard {
    fn drop(&mut self) {
        flush();
    }
}

/// Create a [`FlushGuard`]; see its docs for the intended use.
pub fn flush_on_drop() -> FlushGuard {
    FlushGuard(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip_preserves_every_field() {
        let e = TraceEvent {
            ts_us: 1_700_000_000_123,
            kind: "span".into(),
            name: "chi2".into(),
            dur_us: Some(42),
            labels: vec![
                ("method".into(), "systematic".into()),
                ("note".into(), "quote \" and \\ and\nnewline".into()),
            ],
        };
        let parsed = TraceEvent::parse_line(&e.to_json()).expect("parses");
        assert_eq!(parsed, e);
    }

    #[test]
    fn round_trip_without_optional_fields() {
        let e = TraceEvent {
            ts_us: 5,
            kind: "count".into(),
            name: "packets".into(),
            dur_us: None,
            labels: vec![],
        };
        assert_eq!(TraceEvent::parse_line(&e.to_json()), Some(e));
    }

    #[test]
    fn malformed_lines_parse_to_none() {
        for bad in [
            "",
            "{",
            "not json",
            "{\"kind\":\"x\"}",                              // missing ts/name
            "{\"ts_us\":1,\"kind\":\"a\",\"name\":3}",       // name not a string
            "{\"ts_us\":[1],\"kind\":\"a\",\"name\":\"b\"}", // nested value
        ] {
            assert_eq!(TraceEvent::parse_line(bad), None, "input: {bad}");
        }
    }

    #[test]
    fn numeric_labels_survive_as_strings() {
        let line = "{\"ts_us\":9,\"kind\":\"span\",\"name\":\"cell\",\"k\":50}";
        let e = TraceEvent::parse_line(line).unwrap();
        assert_eq!(e.labels, vec![("k".to_string(), "50".to_string())]);
    }
}
