//! `obskit::rules` — a small on-board alert engine over
//! [`crate::series`].
//!
//! Rules are parsed from a strict line-based text grammar:
//!
//! ```text
//! rule <name> <func>(<metric-key>) <op> <threshold> [for <ticks>]
//! ```
//!
//! * `<name>` — `[A-Za-z_][A-Za-z0-9_]*`, at most 64 bytes, unique.
//! * `<func>` — one of:
//!   - `value` — the series' latest recorded value;
//!   - `rate` — per-second rate over the last two points,
//!     counter-reset-aware (negative deltas clamp to 0);
//!   - `delta` — sum of positive consecutive deltas over the retained
//!     ring (total reset-aware increase);
//!   - `stale` — **milliseconds** since the value last changed; a
//!     missing series evaluates to `+inf` (infinitely stale).
//! * `<metric-key>` — a registry key, optionally with a label block
//!   (`stream_channel_depth{stage="transform"}`); no whitespace.
//! * `<op>` — `>`, `<`, `>=`, `<=`. Comparisons against `NaN` are
//!   false (a `NaN` observation can never breach).
//! * `<threshold>` — a finite decimal number.
//! * `for <ticks>` — symmetric hysteresis: the rule fires only after
//!   `<ticks>` *consecutive* breaching evaluations and clears only
//!   after `<ticks>` consecutive non-breaching ones (default 1).
//!
//! `#` starts a comment; blank lines are ignored; lines are capped at
//! [`MAX_RULE_LINE`] bytes and rule sets at [`MAX_RULES`] rules.
//!
//! The engine is evaluated once per telemetry tick against the global
//! series store and exports `alert_active{rule}` (0/1 gauge) and
//! `alert_flaps_total{rule}` (counter incremented on **every** state
//! transition, either direction — a flapping rule is itself a signal).
//! `GET /alerts` renders one JSONL line per rule.

use crate::series::SeriesStore;
use std::sync::{Mutex, OnceLock};

/// Longest accepted rule line (bytes).
pub const MAX_RULE_LINE: usize = 1024;
/// Most rules one engine accepts.
pub const MAX_RULES: usize = 256;
/// Longest accepted rule name (bytes).
pub const MAX_RULE_NAME: usize = 64;
/// Largest accepted `for <ticks>` hysteresis window.
pub const MAX_FOR_TICKS: u32 = 10_000;

/// Which ring reduction a rule applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleFunc {
    /// Latest recorded value.
    Value,
    /// Reset-aware per-second rate over the last two points.
    Rate,
    /// Reset-aware total increase over the retained ring.
    Delta,
    /// Milliseconds since the value last changed (missing = `+inf`).
    Stale,
}

impl RuleFunc {
    /// Grammar keyword.
    #[must_use]
    pub fn keyword(self) -> &'static str {
        match self {
            RuleFunc::Value => "value",
            RuleFunc::Rate => "rate",
            RuleFunc::Delta => "delta",
            RuleFunc::Stale => "stale",
        }
    }
}

/// Comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleOp {
    /// `>`
    Gt,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `<=`
    Le,
}

impl RuleOp {
    /// Grammar token.
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            RuleOp::Gt => ">",
            RuleOp::Lt => "<",
            RuleOp::Ge => ">=",
            RuleOp::Le => "<=",
        }
    }

    fn holds(self, value: f64, threshold: f64) -> bool {
        match self {
            RuleOp::Gt => value > threshold,
            RuleOp::Lt => value < threshold,
            RuleOp::Ge => value >= threshold,
            RuleOp::Le => value <= threshold,
        }
    }
}

/// One parsed alert rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Unique rule name (label value of the exported metrics).
    pub name: String,
    /// Ring reduction.
    pub func: RuleFunc,
    /// Series key the reduction reads.
    pub metric: String,
    /// Comparison operator.
    pub op: RuleOp,
    /// Finite threshold.
    pub threshold: f64,
    /// Hysteresis window (consecutive ticks to fire / to clear).
    pub for_ticks: u32,
}

/// A rule-grammar parse failure: 1-based line number plus reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleParseError {
    /// 1-based line the violation is on (0 for set-level violations).
    pub line: usize,
    /// Human-readable description of the first violated grammar rule.
    pub reason: String,
}

impl std::fmt::Display for RuleParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rule line {}: {}", self.line, self.reason)
    }
}

fn err(line: usize, reason: impl Into<String>) -> RuleParseError {
    RuleParseError {
        line,
        reason: reason.into(),
    }
}

/// True for `[A-Za-z_][A-Za-z0-9_]*` within the name length cap.
fn valid_rule_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_RULE_NAME
        && name
            .bytes()
            .next()
            .is_some_and(|b| b.is_ascii_alphabetic() || b == b'_')
        && name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_')
}

/// Validate a `<metric-key>`: base name per the exposition rules, an
/// optional well-formed `{k="v",...}` label block, no whitespace.
fn validate_metric_key(key: &str) -> Result<(), String> {
    if key.bytes().any(|b| !b.is_ascii_graphic()) {
        return Err(format!("metric key {key:?} must be graphic ASCII"));
    }
    match key.split_once('{') {
        None => {
            if !crate::exposition::valid_metric_name(key) {
                return Err(format!("invalid metric name {key:?}"));
            }
        }
        Some((name, rest)) => {
            if !crate::exposition::valid_metric_name(name) {
                return Err(format!("invalid metric name {name:?}"));
            }
            let block = rest
                .strip_suffix('}')
                .ok_or_else(|| format!("unterminated label block in {key:?}"))?;
            crate::exposition::parse_label_block(block)?;
        }
    }
    Ok(())
}

/// Parse one non-comment, non-blank rule line (already trimmed).
fn parse_rule_line(line_no: usize, line: &str) -> Result<Rule, RuleParseError> {
    let mut tokens = line.split_ascii_whitespace();
    if tokens.next() != Some("rule") {
        return Err(err(line_no, "line must start with 'rule'"));
    }
    let name = tokens
        .next()
        .ok_or_else(|| err(line_no, "missing rule name"))?;
    if !valid_rule_name(name) {
        return Err(err(
            line_no,
            format!("invalid rule name {name:?} (want [A-Za-z_][A-Za-z0-9_]*, <= {MAX_RULE_NAME} bytes)"),
        ));
    }
    let call = tokens
        .next()
        .ok_or_else(|| err(line_no, "missing <func>(<metric>)"))?;
    let (func_kw, rest) = call
        .split_once('(')
        .ok_or_else(|| err(line_no, format!("expected <func>(<metric>), got {call:?}")))?;
    let metric = rest
        .strip_suffix(')')
        .ok_or_else(|| err(line_no, format!("unterminated '(' in {call:?}")))?;
    let func = match func_kw {
        "value" => RuleFunc::Value,
        "rate" => RuleFunc::Rate,
        "delta" => RuleFunc::Delta,
        "stale" => RuleFunc::Stale,
        other => {
            return Err(err(
                line_no,
                format!("unknown function {other:?} (want value, rate, delta, stale)"),
            ))
        }
    };
    if metric.is_empty() {
        return Err(err(line_no, "empty metric key"));
    }
    validate_metric_key(metric).map_err(|reason| err(line_no, reason))?;
    let op = match tokens.next() {
        Some(">") => RuleOp::Gt,
        Some("<") => RuleOp::Lt,
        Some(">=") => RuleOp::Ge,
        Some("<=") => RuleOp::Le,
        other => {
            return Err(err(
                line_no,
                format!("expected operator >, <, >= or <=, got {other:?}"),
            ))
        }
    };
    let threshold_tok = tokens
        .next()
        .ok_or_else(|| err(line_no, "missing threshold"))?;
    let threshold: f64 = threshold_tok.parse().map_err(|_| {
        err(
            line_no,
            format!("threshold {threshold_tok:?} is not a number"),
        )
    })?;
    if !threshold.is_finite() {
        return Err(err(line_no, "threshold must be finite"));
    }
    let for_ticks = match tokens.next() {
        None => 1,
        Some("for") => {
            let n_tok = tokens
                .next()
                .ok_or_else(|| err(line_no, "missing tick count after 'for'"))?;
            let n: u32 = n_tok
                .parse()
                .map_err(|_| err(line_no, format!("bad tick count {n_tok:?}")))?;
            if n == 0 || n > MAX_FOR_TICKS {
                return Err(err(
                    line_no,
                    format!("tick count must be in 1..={MAX_FOR_TICKS}"),
                ));
            }
            n
        }
        Some(other) => return Err(err(line_no, format!("unexpected token {other:?}"))),
    };
    if tokens.next().is_some() {
        return Err(err(line_no, "trailing tokens after rule"));
    }
    Ok(Rule {
        name: name.to_string(),
        func,
        metric: metric.to_string(),
        op,
        threshold,
        for_ticks,
    })
}

/// Parse a whole rules document.
///
/// # Errors
/// A [`RuleParseError`] naming the first violated grammar rule (line
/// too long, bad syntax, duplicate name, too many rules). Never panics
/// on any input — the faultkit state-fuzz campaign holds it to that.
pub fn parse_rules(text: &str) -> Result<Vec<Rule>, RuleParseError> {
    let mut rules: Vec<Rule> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        if raw.len() > MAX_RULE_LINE {
            return Err(err(
                line_no,
                format!("line too long (max {MAX_RULE_LINE} bytes)"),
            ));
        }
        let line = match raw.split_once('#') {
            Some((before, _)) => before.trim(),
            None => raw.trim(),
        };
        if line.is_empty() {
            continue;
        }
        let rule = parse_rule_line(line_no, line)?;
        if rules.iter().any(|r| r.name == rule.name) {
            return Err(err(line_no, format!("duplicate rule name {:?}", rule.name)));
        }
        if rules.len() >= MAX_RULES {
            return Err(err(line_no, format!("too many rules (max {MAX_RULES})")));
        }
        rules.push(rule);
    }
    Ok(rules)
}

struct RuleState {
    rule: Rule,
    active: bool,
    breaches: u32,
    clears: u32,
    /// Wall-clock µs of the last state transition (0 = never).
    since_us: u64,
    /// Value at the most recent evaluation (NaN before the first).
    last_value: f64,
    /// Transition count (kept locally so JSONL works under `noop`).
    flaps: u64,
    evaluated: bool,
}

/// An evaluated alert engine: rules plus their hysteresis state.
#[derive(Default)]
pub struct RuleEngine {
    states: Mutex<Vec<RuleState>>,
}

impl std::fmt::Debug for RuleEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuleEngine")
            .field("rules", &self.len())
            .finish_non_exhaustive()
    }
}

impl RuleEngine {
    /// Build an empty engine.
    #[must_use]
    pub fn new() -> RuleEngine {
        RuleEngine::default()
    }

    /// Add rules, rejecting duplicates against already-installed names
    /// and the [`MAX_RULES`] cap. On success returns the total rule
    /// count.
    ///
    /// # Errors
    /// A description of the duplicate name or cap violation; no rules
    /// from `rules` are installed on error.
    pub fn add_rules(&self, rules: Vec<Rule>) -> Result<usize, String> {
        let mut states = self.states.lock().expect("rule states poisoned");
        for r in &rules {
            if states.iter().any(|s| s.rule.name == r.name)
                || rules.iter().filter(|o| o.name == r.name).count() > 1
            {
                return Err(format!("duplicate rule name {:?}", r.name));
            }
        }
        if states.len() + rules.len() > MAX_RULES {
            return Err(format!("too many rules (max {MAX_RULES})"));
        }
        for rule in rules {
            states.push(RuleState {
                rule,
                active: false,
                breaches: 0,
                clears: 0,
                since_us: 0,
                last_value: f64::NAN,
                flaps: 0,
                evaluated: false,
            });
        }
        Ok(states.len())
    }

    /// Number of installed rules.
    #[must_use]
    pub fn len(&self) -> usize {
        self.states.lock().expect("rule states poisoned").len()
    }

    /// True when no rules are installed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `name` is currently firing; `None` for an unknown rule.
    #[must_use]
    pub fn is_firing(&self, name: &str) -> Option<bool> {
        let states = self.states.lock().expect("rule states poisoned");
        states
            .iter()
            .find(|s| s.rule.name == name)
            .map(|s| s.active)
    }

    /// True when a rule named `name` is installed.
    #[must_use]
    pub fn has_rule(&self, name: &str) -> bool {
        self.is_firing(name).is_some()
    }

    /// Evaluate every rule against `store` once (one telemetry tick),
    /// updating hysteresis state and the `alert_active{rule}` /
    /// `alert_flaps_total{rule}` metrics.
    pub fn evaluate(&self, store: &SeriesStore, now_us: u64) {
        let mut states = self.states.lock().expect("rule states poisoned");
        for st in states.iter_mut() {
            let value = match st.rule.func {
                RuleFunc::Value => store.latest(&st.rule.metric).map_or(f64::NAN, |p| p.value),
                RuleFunc::Rate => store.rate_per_sec(&st.rule.metric).unwrap_or(f64::NAN),
                RuleFunc::Delta => store.reset_aware_delta(&st.rule.metric).unwrap_or(f64::NAN),
                RuleFunc::Stale => store
                    .staleness_us(&st.rule.metric, now_us)
                    .map_or(f64::INFINITY, |us| us as f64 / 1e3),
            };
            st.last_value = value;
            st.evaluated = true;
            // NaN never breaches: every RuleOp::holds comparison on
            // NaN is false, so a NaN observation counts as a clear.
            let breach = st.rule.op.holds(value, st.rule.threshold);
            if breach {
                st.breaches += 1;
                st.clears = 0;
            } else {
                st.clears += 1;
                st.breaches = 0;
            }
            let flipped = if !st.active && st.breaches >= st.rule.for_ticks {
                st.active = true;
                true
            } else if st.active && st.clears >= st.rule.for_ticks {
                st.active = false;
                true
            } else {
                false
            };
            if flipped {
                st.since_us = now_us;
                st.flaps += 1;
                crate::counter_labeled("alert_flaps_total", &[("rule", &st.rule.name)]).inc();
            }
            crate::gauge_labeled("alert_active", &[("rule", &st.rule.name)])
                .set(i64::from(st.active));
        }
    }

    /// Render the `/alerts` body: one JSON object per rule per line.
    #[must_use]
    pub fn alerts_jsonl(&self) -> String {
        let states = self.states.lock().expect("rule states poisoned");
        let mut out = String::new();
        for st in states.iter() {
            let value = if st.evaluated && st.last_value.is_finite() {
                format!("{}", st.last_value)
            } else {
                "null".to_string()
            };
            let since = if st.since_us == 0 {
                "null".to_string()
            } else {
                st.since_us.to_string()
            };
            out.push_str(&format!(
                "{{\"rule\":\"{}\",\"state\":\"{}\",\"expr\":\"{}({}) {} {}\",\"for_ticks\":{},\"value\":{},\"since_us\":{},\"flaps\":{}}}\n",
                crate::exposition::json_escape(&st.rule.name),
                if st.active { "firing" } else { "ok" },
                st.rule.func.keyword(),
                crate::exposition::json_escape(&st.rule.metric),
                st.rule.op.token(),
                st.rule.threshold,
                st.rule.for_ticks,
                value,
                since,
                st.flaps,
            ));
        }
        out
    }
}

static GLOBAL_ENGINE: OnceLock<RuleEngine> = OnceLock::new();

/// The process-wide rule engine (created empty on first use). The
/// telemetry tick evaluates it whenever the global series store is
/// installed; `GET /alerts` renders it.
pub fn global_engine() -> &'static RuleEngine {
    GLOBAL_ENGINE.get_or_init(RuleEngine::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::{SeriesConfig, SeriesStore};

    fn store() -> SeriesStore {
        SeriesStore::new(SeriesConfig {
            capacity: 16,
            max_series: 16,
            fidelity_keys: vec![],
            fidelity_ks: vec![],
        })
    }

    fn one_rule(text: &str) -> Rule {
        let rules = parse_rules(text).expect("valid rule");
        assert_eq!(rules.len(), 1);
        rules.into_iter().next().unwrap()
    }

    #[test]
    fn grammar_accepts_each_function_and_operator() {
        let r = one_rule("rule r1 value(proc_rss_kb) > 1000");
        assert_eq!(r.func, RuleFunc::Value);
        assert_eq!(r.op, RuleOp::Gt);
        assert_eq!(r.threshold, 1000.0);
        assert_eq!(r.for_ticks, 1);
        let r = one_rule("rule r2 rate(stream_packets_ingested_total) >= 1.5 for 3");
        assert_eq!(r.func, RuleFunc::Rate);
        assert_eq!(r.op, RuleOp::Ge);
        assert_eq!(r.for_ticks, 3);
        let r = one_rule("rule r3 delta(x_total) <= -2.5");
        assert_eq!(r.func, RuleFunc::Delta);
        assert_eq!(r.threshold, -2.5);
        let r = one_rule("rule r4 stale(stream_channel_depth{stage=\"transform\"}) < 5000");
        assert_eq!(r.func, RuleFunc::Stale);
        assert_eq!(r.metric, "stream_channel_depth{stage=\"transform\"}");
        // Comments and blank lines.
        let rules = parse_rules("# header\n\nrule a value(x) > 1 # inline\n").unwrap();
        assert_eq!(rules.len(), 1);
    }

    #[test]
    fn grammar_rejects_each_violation_with_line_numbers() {
        let cases = [
            ("alert a value(x) > 1", "start with 'rule'"),
            ("rule", "missing rule name"),
            ("rule 9bad value(x) > 1", "invalid rule name"),
            ("rule a", "missing <func>"),
            ("rule a value x > 1", "expected <func>(<metric>)"),
            ("rule a value(x > 1", "unterminated '('"),
            ("rule a median(x) > 1", "unknown function"),
            ("rule a value() > 1", "empty metric key"),
            ("rule a value(1bad) > 1", "invalid metric name"),
            ("rule a value(x{y=) > 1", "label"),
            ("rule a value(x{k=\"v\") > 1", "unterminated label block"),
            ("rule a value(x) == 1", "expected operator"),
            ("rule a value(x) >", "missing threshold"),
            ("rule a value(x) > abc", "not a number"),
            ("rule a value(x) > inf", "must be finite"),
            ("rule a value(x) > nan", "must be finite"),
            ("rule a value(x) > 1 for", "missing tick count"),
            ("rule a value(x) > 1 for 0", "tick count"),
            ("rule a value(x) > 1 for x", "bad tick count"),
            ("rule a value(x) > 1 extra", "unexpected token"),
            ("rule a value(x) > 1 for 2 junk", "trailing tokens"),
            (
                "rule a value(x) > 1\nrule a value(y) > 2",
                "duplicate rule name",
            ),
        ];
        for (text, want) in cases {
            let e = parse_rules(text).expect_err(text);
            assert!(
                e.reason.contains(want),
                "input {text:?}: got {:?}, want substring {want:?}",
                e.reason
            );
        }
        let long = format!("rule a value(x) > 1 {}", "#".repeat(MAX_RULE_LINE));
        let e = parse_rules(&long).unwrap_err();
        assert!(e.reason.contains("line too long"));
        let long_name = format!("rule {} value(x) > 1", "a".repeat(MAX_RULE_NAME + 1));
        let e = parse_rules(&long_name).unwrap_err();
        assert!(e.reason.contains("invalid rule name"));
        // Line numbers are 1-based and point at the offending line.
        let e = parse_rules("# ok\nrule a value(x) > 1\nbroken\n").unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn grammar_is_deterministic_on_arbitrary_bytes() {
        let mut state = 0x13198a2e03707344u64;
        for len in [0usize, 3, 40, 300, 1023, 1024, 1025, 5000] {
            let mut raw = Vec::with_capacity(len);
            for _ in 0..len {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                raw.push((state >> 56) as u8);
            }
            let s = String::from_utf8_lossy(&raw).into_owned();
            assert_eq!(parse_rules(&s), parse_rules(&s));
        }
    }

    #[test]
    fn threshold_rule_fires_and_clears_with_hysteresis() {
        let s = store();
        let e = RuleEngine::new();
        e.add_rules(parse_rules("rule hi value(g) >= 10 for 2").unwrap())
            .unwrap();
        // One breach is not enough (for 2).
        s.push("g", 1, 20.0);
        e.evaluate(&s, 1);
        assert_eq!(e.is_firing("hi"), Some(false));
        s.push("g", 2, 25.0);
        e.evaluate(&s, 2);
        assert_eq!(e.is_firing("hi"), Some(true), "2 consecutive breaches fire");
        // One clear is not enough either.
        s.push("g", 3, 5.0);
        e.evaluate(&s, 3);
        assert_eq!(e.is_firing("hi"), Some(true));
        s.push("g", 4, 5.0);
        e.evaluate(&s, 4);
        assert_eq!(e.is_firing("hi"), Some(false), "2 consecutive clears clear");
        let jsonl = e.alerts_jsonl();
        assert!(jsonl.contains("\"rule\":\"hi\""));
        assert!(jsonl.contains("\"state\":\"ok\""));
        assert!(
            jsonl.contains("\"flaps\":2"),
            "fired once, cleared once: {jsonl}"
        );
    }

    #[test]
    fn flapping_series_counts_every_transition() {
        let s = store();
        let e = RuleEngine::new();
        e.add_rules(parse_rules("rule flappy value(g) > 0 for 1").unwrap())
            .unwrap();
        for t in 0..6u64 {
            s.push("g", t + 1, if t % 2 == 0 { 1.0 } else { -1.0 });
            e.evaluate(&s, t + 1);
        }
        let jsonl = e.alerts_jsonl();
        assert!(jsonl.contains("\"flaps\":6"), "every flip counted: {jsonl}");
        // With `for 3` the same series never fires at all.
        let e2 = RuleEngine::new();
        e2.add_rules(parse_rules("rule damped value(g2) > 0 for 3").unwrap())
            .unwrap();
        for t in 0..12u64 {
            s.push("g2", t + 1, if t % 2 == 0 { 1.0 } else { -1.0 });
            e2.evaluate(&s, t + 1);
        }
        assert_eq!(e2.is_firing("damped"), Some(false));
        assert!(e2.alerts_jsonl().contains("\"flaps\":0"));
    }

    #[test]
    fn nan_and_inf_observations_behave() {
        let s = store();
        let e = RuleEngine::new();
        e.add_rules(
            parse_rules("rule nan_never value(g) > 0\nrule inf_fires value(h) > 1e300").unwrap(),
        )
        .unwrap();
        s.push("g", 1, f64::NAN);
        s.push("h", 1, f64::INFINITY);
        e.evaluate(&s, 1);
        assert_eq!(e.is_firing("nan_never"), Some(false), "NaN never breaches");
        assert_eq!(
            e.is_firing("inf_fires"),
            Some(true),
            "+inf > any finite threshold"
        );
        let jsonl = e.alerts_jsonl();
        // Non-finite observations render as null, keeping JSONL valid.
        for line in jsonl.lines() {
            assert!(line.contains("\"value\":null"), "line: {line}");
        }
        // A NaN observation also *clears* an active rule.
        s.push("h", 2, f64::NAN);
        e.evaluate(&s, 2);
        assert_eq!(e.is_firing("inf_fires"), Some(false));
    }

    #[test]
    fn stale_rule_treats_missing_series_as_infinitely_stale() {
        let s = store();
        let e = RuleEngine::new();
        e.add_rules(parse_rules("rule quiet stale(never_recorded) > 5000").unwrap())
            .unwrap();
        e.evaluate(&s, 1);
        assert_eq!(
            e.is_firing("quiet"),
            Some(true),
            "missing series = +inf stale"
        );
        // Once the series appears and changes, staleness drops to ~0.
        s.push("never_recorded", 10_000_000, 1.0);
        e.evaluate(&s, 10_000_001);
        assert_eq!(e.is_firing("quiet"), Some(false));
    }

    #[test]
    fn empty_ring_and_counter_reset_edges() {
        let s = store();
        let e = RuleEngine::new();
        e.add_rules(
            parse_rules("rule v value(m) > 0\nrule r rate(m) > 0\nrule d delta(m) > 0").unwrap(),
        )
        .unwrap();
        // Empty store: value/rate/delta are NaN, nothing fires.
        e.evaluate(&s, 1);
        for name in ["v", "r", "d"] {
            assert_eq!(e.is_firing(name), Some(false), "rule {name} on empty ring");
        }
        // Counter reset: rate and delta stay reset-aware.
        s.push("m", 1_000_000, 100.0);
        s.push("m", 2_000_000, 10.0);
        e.evaluate(&s, 2_000_000);
        assert_eq!(e.is_firing("r"), Some(false), "reset rate clamps to 0");
        assert_eq!(e.is_firing("d"), Some(false), "reset delta contributes 0");
        s.push("m", 3_000_000, 50.0);
        e.evaluate(&s, 3_000_000);
        assert_eq!(e.is_firing("r"), Some(true));
        assert_eq!(e.is_firing("d"), Some(true));
    }

    #[test]
    fn add_rules_rejects_duplicates_and_cap() {
        let e = RuleEngine::new();
        e.add_rules(parse_rules("rule a value(x) > 1").unwrap())
            .unwrap();
        let dup = parse_rules("rule a value(y) > 2").unwrap();
        assert!(e.add_rules(dup).is_err(), "cross-batch duplicate");
        let batch_dup = vec![
            one_rule("rule b value(x) > 1"),
            one_rule("rule b value(y) > 1"),
        ];
        assert!(e.add_rules(batch_dup).is_err(), "in-batch duplicate");
        assert_eq!(e.len(), 1, "failed batches install nothing");
    }

    #[test]
    #[cfg(not(feature = "noop"))]
    fn evaluation_exports_alert_metrics() {
        let s = store();
        let e = RuleEngine::new();
        e.add_rules(parse_rules("rule metric_probe value(mp) > 5").unwrap())
            .unwrap();
        s.push("mp", 1, 10.0);
        e.evaluate(&s, 1);
        assert_eq!(
            crate::gauge_labeled("alert_active", &[("rule", "metric_probe")]).get(),
            1
        );
        s.push("mp", 2, 0.0);
        e.evaluate(&s, 2);
        assert_eq!(
            crate::gauge_labeled("alert_active", &[("rule", "metric_probe")]).get(),
            0
        );
        assert_eq!(
            crate::counter_labeled("alert_flaps_total", &[("rule", "metric_probe")]).get(),
            2
        );
    }
}
