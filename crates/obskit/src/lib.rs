//! # obskit — observability for the sampling pipeline
//!
//! A self-contained (std-only, zero external dependencies) tracing,
//! metrics, and profiling layer. The paper's experiment grid — sampler ×
//! target × fraction over hundreds of thousands of packets — previously
//! ran completely dark; this crate gives every stage counters, latency
//! histograms, span timing, and an optional structured JSONL event log,
//! cheap enough to leave on in release builds.
//!
//! ## Model
//!
//! * A global [`Registry`] maps metric names (optionally with
//!   Prometheus-style `{key="value"}` labels) to one of three metric
//!   kinds: monotonically increasing [`Counter`]s, up/down [`Gauge`]s,
//!   and log₂-bucketed [`Histogram`]s. All three are atomics inside an
//!   `Arc`: recording is lock-free; only the *first* registration of a
//!   name takes a write lock.
//! * [`span`] returns a guard that, on drop, records the elapsed wall
//!   time into a histogram named `<name>_duration_us` and (when tracing
//!   is enabled) appends a JSONL event to the trace sink.
//! * Spans are **hierarchical**: a thread-local stack gives every span a
//!   process-unique id, its parent's id, and a semicolon-joined call
//!   path; [`tree`] aggregates count / total-time / self-time per path
//!   and renders the collapsed-stack ("folded") profile flamegraph
//!   tooling consumes.
//! * [`trace`] holds the JSONL sink, enabled explicitly
//!   ([`trace::enable_path`]) or via the `NETSAMPLE_TRACE` environment
//!   variable ([`trace::init_from_env`]).
//! * [`Registry::render_prometheus`] produces text exposition;
//!   [`Registry::render_summary`] a human-readable table;
//!   [`Registry::render_snapshot_jsonl`] a machine-readable JSONL dump.
//! * [`serve`] is the live telemetry plane: a std-only blocking
//!   HTTP/1.0 server exposing `GET /metrics` (Prometheus text),
//!   `GET /healthz` (liveness + ingest-watermark staleness), and
//!   `GET /snapshot` (JSONL) while the process runs.
//! * [`telemetry`] runs a background sampler keeping `proc_rss_kb`,
//!   `proc_open_fds`, and windowed per-second rate gauges fresh, with a
//!   bounded ring of samples for soak-test evidence.
//! * [`series`] is an on-board bounded ring-buffer time-series store
//!   fed by each telemetry tick, served as `GET /series`, and scored
//!   against its own systematic downsamples with the paper's φ
//!   disparity metric (`series_fidelity_phi_x1000{series,k}`).
//! * [`rules`] evaluates threshold / rate / delta / staleness alert
//!   rules (strict text grammar, hysteresis) over the series rings each
//!   tick, exported as `alert_active{rule}` / `alert_flaps_total{rule}`
//!   and `GET /alerts`.
//!
//! ## Hot-path discipline
//!
//! Handle acquisition (`obskit::counter(...)`) hashes the name and may
//! take a read lock — do it **once per batch/loop**, not per packet.
//! Recording (`c.add(n)`, `h.record(v)`) is a relaxed atomic RMW.
//! Instrumented call sites in this workspace count locally inside their
//! loops and flush a single `add` at the boundary, which keeps measured
//! overhead on the sampler hot path under 1% (see
//! `crates/bench/benches/obskit_overhead.rs`).
//!
//! Building with the `noop` feature turns every record path into a
//! compile-time no-op while keeping the API intact.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod exposition;
mod metrics;
mod registry;
pub mod rules;
pub mod series;
pub mod serve;
mod span;
pub mod telemetry;
pub mod trace;
pub mod tree;

pub use exposition::{parse_exposition, valid_label_name, valid_metric_name, ExpositionSample};
pub use metrics::{Counter, CounterShard, Gauge, Histogram, HistogramSnapshot};
pub use registry::{MetricKind, Registry, SnapshotValue};
pub use rules::{parse_rules, Rule, RuleEngine, RuleParseError};
pub use series::{
    downsample_systematic, fidelity_phi, parse_series_query, SeriesConfig, SeriesPoint,
    SeriesQuery, SeriesStore,
};
pub use serve::{parse_request_line, serve, RequestError, RequestLine, ServeConfig, ServeHandle};
pub use span::{span, span_labeled, time, SpanGuard};
pub use telemetry::{Telemetry, TelemetryConfig, TelemetrySample};
pub use tree::SpanNode;

/// True when recording is compiled in (the `noop` feature is off).
///
/// All record paths check this; with `noop` the optimizer erases them.
#[inline(always)]
#[must_use]
pub const fn recording_enabled() -> bool {
    cfg!(not(feature = "noop"))
}

/// The process-wide registry.
#[must_use]
pub fn global() -> &'static Registry {
    registry::global()
}

/// Get or register a counter in the global registry.
#[must_use]
pub fn counter(name: &str) -> Counter {
    global().counter(name)
}

/// Get or register a labeled counter (`name{k="v",...}`) in the global
/// registry.
#[must_use]
pub fn counter_labeled(name: &str, labels: &[(&str, &str)]) -> Counter {
    global().counter(&keyed(name, labels))
}

/// Get or register a gauge in the global registry.
#[must_use]
pub fn gauge(name: &str) -> Gauge {
    global().gauge(name)
}

/// Get or register a labeled gauge in the global registry.
#[must_use]
pub fn gauge_labeled(name: &str, labels: &[(&str, &str)]) -> Gauge {
    global().gauge(&keyed(name, labels))
}

/// Get or register a histogram in the global registry.
#[must_use]
pub fn histogram(name: &str) -> Histogram {
    global().histogram(name)
}

/// Get or register a labeled histogram in the global registry.
#[must_use]
pub fn histogram_labeled(name: &str, labels: &[(&str, &str)]) -> Histogram {
    global().histogram(&keyed(name, labels))
}

/// Render `name{k="v",...}` (or just `name` without labels), escaping
/// label values.
#[must_use]
pub fn keyed(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut out = String::with_capacity(name.len() + 16 * labels.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                other => out.push(other),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyed_formats_labels_in_order() {
        assert_eq!(keyed("x_total", &[]), "x_total");
        assert_eq!(
            keyed("x_total", &[("method", "systematic"), ("k", "50")]),
            "x_total{method=\"systematic\",k=\"50\"}"
        );
    }

    #[test]
    fn keyed_escapes_quotes_and_backslashes() {
        assert_eq!(keyed("m", &[("a", "q\"b\\c")]), "m{a=\"q\\\"b\\\\c\"}");
    }

    #[test]
    #[cfg(not(feature = "noop"))]
    fn global_handles_are_shared() {
        let a = counter("obskit_test_shared_total");
        let b = counter("obskit_test_shared_total");
        a.add(3);
        b.add(4);
        assert_eq!(a.get(), 7);
        assert_eq!(b.get(), 7);
    }

    #[test]
    #[cfg(feature = "noop")]
    fn noop_feature_drops_every_record() {
        assert!(!recording_enabled());
        let c = counter("obskit_noop_probe_total");
        c.inc();
        c.add(5);
        assert_eq!(c.get(), 0);
        let h = histogram("obskit_noop_probe_us");
        h.record(123);
        assert_eq!(h.snapshot().count, 0);
    }
}
