//! The three metric kinds: counter, gauge, log₂ histogram.
//!
//! All are `Arc`-shared atomics: cloning a handle is cheap, recording is
//! a relaxed atomic RMW, and snapshots can be taken concurrently with
//! writers (each field is read atomically; cross-field skew of a few
//! in-flight increments is acceptable for monitoring).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Number of histogram buckets: bucket `i` counts values `v` with
/// `floor(log2(max(v,1))) == i`, so bucket 0 is `[0,2)`, bucket 1 is
/// `[2,4)`, … bucket 63 is `[2^63, 2^64)`.
pub(crate) const BUCKETS: usize = 64;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh, unregistered counter (registries hand out shared ones).
    #[must_use]
    pub fn new() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::recording_enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An up/down gauge (signed).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A fresh, unregistered gauge.
    #[must_use]
    pub fn new() -> Self {
        Gauge(Arc::new(AtomicI64::new(0)))
    }

    /// Set to an absolute value.
    #[inline]
    pub fn set(&self, v: i64) {
        if crate::recording_enabled() {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        if crate::recording_enabled() {
            self.0.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A thread-local shard of a [`Counter`]: increments accumulate in a
/// plain (unsynchronized) cell and merge into the backing counter with
/// **one** atomic add — either explicitly via [`CounterShard::flush`] or
/// automatically on drop.
///
/// Worker pools hand each worker its own shard so hot loops pay a
/// non-atomic integer bump per event instead of a contended RMW; the
/// backing counter sees the per-worker sums exactly once, when the
/// workers drain. The shard is `Send` (a worker can be handed one) but
/// deliberately **not** `Sync` — shared use would lose increments, so
/// the `Cell` forbids it at compile time.
#[derive(Debug)]
pub struct CounterShard {
    backing: Counter,
    local: std::cell::Cell<u64>,
}

impl CounterShard {
    /// A shard feeding `backing`.
    #[must_use]
    pub fn new(backing: Counter) -> Self {
        CounterShard {
            backing,
            local: std::cell::Cell::new(0),
        }
    }

    /// Increment the local shard by one (no atomics).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment the local shard by `n` (no atomics).
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::recording_enabled() {
            self.local.set(self.local.get().wrapping_add(n));
        }
    }

    /// Increments accumulated locally and not yet flushed.
    #[must_use]
    pub fn pending(&self) -> u64 {
        self.local.get()
    }

    /// Merge the local count into the backing counter (one atomic add)
    /// and reset the shard to zero.
    pub fn flush(&self) {
        let n = self.local.replace(0);
        if n > 0 {
            self.backing.add(n);
        }
    }
}

impl Drop for CounterShard {
    fn drop(&mut self) {
        self.flush();
    }
}

#[derive(Debug)]
pub(crate) struct HistogramInner {
    pub(crate) buckets: [AtomicU64; BUCKETS],
    pub(crate) count: AtomicU64,
    pub(crate) sum: AtomicU64,
    pub(crate) max: AtomicU64,
}

/// A log₂-bucketed histogram of nonnegative integer values (typically
/// durations in microseconds).
///
/// Bucket boundaries are powers of two, so recording is a `leading_zeros`
/// plus one atomic add — no allocation, no locks — at the cost of
/// ≤ 2× relative error on quantile estimates, which is plenty for
/// latency monitoring.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh, unregistered histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }

    /// The bucket index for a value.
    #[inline]
    #[must_use]
    pub fn bucket_index(value: u64) -> usize {
        63 - (value | 1).leading_zeros() as usize
    }

    /// The half-open value range `[lo, hi)` covered by bucket `i`
    /// (`hi` saturates at `u64::MAX` for the last bucket).
    #[must_use]
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        let lo = if i == 0 { 0 } else { 1u64 << i };
        let hi = if i >= 63 { u64::MAX } else { 1u64 << (i + 1) };
        (lo, hi)
    }

    /// Record one value.
    #[inline]
    pub fn record(&self, value: u64) {
        if crate::recording_enabled() {
            let inner = &*self.0;
            inner.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
            inner.count.fetch_add(1, Ordering::Relaxed);
            inner.sum.fetch_add(value, Ordering::Relaxed);
            inner.max.fetch_max(value, Ordering::Relaxed);
        }
    }

    /// Estimate the `p`-th percentile (`0 ≤ p ≤ 100`) of recorded
    /// values; `None` on an empty histogram. Convenience over
    /// [`HistogramSnapshot::percentile`] for one-off reads.
    #[must_use]
    pub fn percentile(&self, p: f64) -> Option<u64> {
        self.snapshot().percentile(p)
    }

    /// The median (50th percentile); `None` on an empty histogram.
    #[must_use]
    pub fn p50(&self) -> Option<u64> {
        self.percentile(50.0)
    }

    /// The 99th percentile; `None` on an empty histogram.
    #[must_use]
    pub fn p99(&self) -> Option<u64> {
        self.percentile(99.0)
    }

    /// A point-in-time copy of the histogram state.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &*self.0;
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| inner.buckets[i].load(Ordering::Relaxed)),
            count: inner.count.load(Ordering::Relaxed),
            sum: inner.sum.load(Ordering::Relaxed),
            max: inner.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`Histogram::bucket_bounds`]).
    pub buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Estimate the `q`-quantile (`0 ≤ q ≤ 1`) by linear interpolation
    /// inside the bucket containing it — the bucket's observations are
    /// assumed evenly spread over its `[lo, hi)` range, so the estimate
    /// moves smoothly with `q` instead of jumping bucket-midpoint to
    /// bucket-midpoint; `None` on an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        // Saturating: per-bucket counts near u64::MAX must not wrap the
        // running total (they can only push it to the ceiling, which
        // still resolves the correct bucket for any reachable rank).
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            let before = seen;
            seen = seen.saturating_add(c);
            if seen >= rank {
                let (lo, hi) = Histogram::bucket_bounds(i);
                // Position of the ranked observation among the bucket's
                // `c`, with a half-observation continuity correction so
                // the first maps near `lo` and the last stays below
                // `hi` (clamped in case `seen` saturated above).
                let frac = (((rank - before) as f64 - 0.5) / c as f64).clamp(0.0, 1.0);
                let est = (lo as f64 + (hi - lo) as f64 * frac) as u64;
                return Some(est.min(self.max).max(lo));
            }
        }
        Some(self.max)
    }

    /// Estimate the `q`-quantile (`0 ≤ q ≤ 1`) as the geometric midpoint
    /// of the bucket containing it; `None` on an empty histogram. The
    /// pre-interpolation estimator, kept for comparison against
    /// [`HistogramSnapshot::quantile`].
    #[must_use]
    pub fn quantile_midpoint(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                let (lo, hi) = Histogram::bucket_bounds(i);
                // Geometric midpoint, clamped to the observed max.
                let mid = ((lo.max(1) as f64) * (hi as f64)).sqrt() as u64;
                return Some(mid.min(self.max).max(lo));
            }
        }
        Some(self.max)
    }

    /// Estimate the `p`-th percentile (`0 ≤ p ≤ 100`, clamped);
    /// `None` on an empty histogram. `percentile(50.0)` is the median.
    #[must_use]
    pub fn percentile(&self, p: f64) -> Option<u64> {
        self.quantile(p.clamp(0.0, 100.0) / 100.0)
    }

    /// Mean of recorded values (0 for an empty histogram).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(not(feature = "noop"))]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        let g = Gauge::new();
        g.set(5);
        g.add(-8);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn bucket_boundaries_are_log2() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 1);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(1023), 9);
        assert_eq!(Histogram::bucket_index(1024), 10);
        assert_eq!(Histogram::bucket_index(u64::MAX), 63);
        // Bounds agree with the index function at every edge.
        for i in 0..BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert_eq!(Histogram::bucket_index(lo), i);
            if hi != u64::MAX {
                assert_eq!(Histogram::bucket_index(hi - 1), i);
                assert_eq!(Histogram::bucket_index(hi), i + 1);
            }
        }
    }

    #[test]
    #[cfg(not(feature = "noop"))]
    fn histogram_records_and_estimates() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000, 10_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 11_106);
        assert_eq!(s.max, 10_000);
        // The median falls in bucket [2,4): estimate must be in range.
        let p50 = s.quantile(0.5).unwrap();
        assert!((2..4).contains(&p50), "p50 {p50}");
        // Extreme quantiles bracket the data.
        assert!(s.quantile(1.0).unwrap() <= 10_000);
        assert!(s.quantile(0.0).unwrap() >= 1);
    }

    #[test]
    fn empty_histogram_has_no_quantile() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn empty_histogram_has_no_percentile() {
        let h = Histogram::new();
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.p50(), None);
        assert_eq!(h.p99(), None);
        assert_eq!(h.snapshot().percentile(99.0), None);
    }

    #[test]
    #[cfg(not(feature = "noop"))]
    fn single_bucket_percentiles_all_land_in_that_bucket() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(700); // bucket [512, 1024)
        }
        let (lo, hi) = Histogram::bucket_bounds(Histogram::bucket_index(700));
        for p in [0.0, 1.0, 50.0, 90.0, 99.0, 100.0] {
            let v = h.percentile(p).unwrap();
            assert!(
                (lo..hi).contains(&v),
                "p{p} = {v} escaped bucket [{lo},{hi})"
            );
            // Estimates never exceed the observed max.
            assert!(v <= 700);
        }
        assert_eq!(h.p50(), h.percentile(50.0));
        assert_eq!(h.p99(), h.percentile(99.0));
    }

    #[test]
    fn interpolated_quantile_moves_smoothly_within_a_bucket() {
        // 100 observations in one bucket [512, 1024): interpolation must
        // be nondecreasing in q and sweep a wide span of the bucket,
        // where the midpoint estimator returns one constant.
        let mut buckets = [0u64; BUCKETS];
        let idx = Histogram::bucket_index(700);
        buckets[idx] = 100;
        let s = HistogramSnapshot {
            buckets,
            count: 100,
            sum: 70_000,
            max: 1023,
        };
        let (lo, hi) = Histogram::bucket_bounds(idx);
        let mut prev = 0u64;
        let mut distinct = std::collections::BTreeSet::new();
        for i in 0..=20 {
            let q = f64::from(i) / 20.0;
            let v = s.quantile(q).unwrap();
            assert!((lo..hi).contains(&v), "q {q} = {v}");
            assert!(v >= prev, "quantile not monotone at q {q}");
            prev = v;
            distinct.insert(v);
        }
        // Midpoint estimator: one value for every q. Interpolation:
        // many.
        assert!(
            distinct.len() > 10,
            "only {} distinct values",
            distinct.len()
        );
        assert_eq!(s.quantile_midpoint(0.1), s.quantile_midpoint(0.9));
    }

    #[test]
    fn interpolation_tracks_uniform_data_closely() {
        // Uniform values over one bucket: the interpolated median should
        // land near the true median (768 for uniform [512, 1024)).
        let mut buckets = [0u64; BUCKETS];
        let idx = Histogram::bucket_index(700);
        buckets[idx] = 512;
        let s = HistogramSnapshot {
            buckets,
            count: 512,
            sum: 0,
            max: 1023,
        };
        let p50 = s.quantile(0.5).unwrap();
        assert!((760..=776).contains(&p50), "p50 {p50}");
    }

    #[test]
    fn saturating_counts_do_not_overflow_percentile() {
        // Hand-built snapshot whose bucket counts would wrap u64 if the
        // cumulative walk used unchecked addition.
        let mut buckets = [0u64; BUCKETS];
        buckets[3] = u64::MAX / 2 + 10; // values in [8,16)
        buckets[10] = u64::MAX / 2 + 10; // values in [1024,2048)
        let s = HistogramSnapshot {
            buckets,
            count: u64::MAX,
            sum: u64::MAX,
            max: 2_000,
        };
        // Low percentiles resolve to the first populated bucket, high
        // ones to the second; nothing panics or wraps.
        let p1 = s.percentile(1.0).unwrap();
        assert!((8..16).contains(&p1), "p1 = {p1}");
        let p99 = s.percentile(99.0).unwrap();
        assert!((1024..2048).contains(&p99), "p99 = {p99}");
        assert!(s.percentile(100.0).unwrap() <= 2_000);
    }

    #[test]
    fn percentile_clamps_out_of_range_inputs() {
        let h = Histogram::new();
        h.record(5);
        if crate::recording_enabled() {
            assert_eq!(h.percentile(-3.0), h.percentile(0.0));
            assert_eq!(h.percentile(250.0), h.percentile(100.0));
        } else {
            assert_eq!(h.percentile(-3.0), None);
        }
    }

    #[test]
    #[cfg(not(feature = "noop"))]
    fn counter_shard_flushes_once_on_drop() {
        let c = Counter::new();
        {
            let shard = CounterShard::new(c.clone());
            shard.inc();
            shard.add(9);
            assert_eq!(shard.pending(), 10);
            // Nothing reaches the backing counter before flush/drop.
            assert_eq!(c.get(), 0);
        }
        assert_eq!(c.get(), 10);
    }

    #[test]
    #[cfg(not(feature = "noop"))]
    fn counter_shard_explicit_flush_resets_local() {
        let c = Counter::new();
        let shard = CounterShard::new(c.clone());
        shard.add(4);
        shard.flush();
        assert_eq!(c.get(), 4);
        assert_eq!(shard.pending(), 0);
        // A second flush with nothing pending is a no-op.
        shard.flush();
        assert_eq!(c.get(), 4);
        shard.add(2);
        drop(shard);
        assert_eq!(c.get(), 6);
    }

    #[test]
    #[cfg(feature = "noop")]
    fn counter_shard_is_noop_under_noop() {
        let c = Counter::new();
        let shard = CounterShard::new(c.clone());
        shard.add(5);
        assert_eq!(shard.pending(), 0);
        drop(shard);
        assert_eq!(c.get(), 0);
    }

    #[test]
    #[cfg(not(feature = "noop"))]
    fn concurrent_increments_are_not_lost() {
        let c = Counter::new();
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let c = c.clone();
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        c.inc();
                        h.record(t * 10_000 + i);
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
        let s = h.snapshot();
        assert_eq!(s.count, 80_000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 80_000);
    }

    #[test]
    #[cfg(not(feature = "noop"))]
    fn snapshot_while_writing_is_internally_plausible() {
        let h = Histogram::new();
        std::thread::scope(|scope| {
            let writer = h.clone();
            scope.spawn(move || {
                for i in 0..50_000u64 {
                    writer.record(i % 4096);
                }
            });
            for _ in 0..50 {
                let s = h.snapshot();
                // Bucket total can trail or lead `count` by in-flight
                // writers, but never exceeds the final total.
                assert!(s.buckets.iter().sum::<u64>() <= 50_000);
                assert!(s.count <= 50_000);
                assert!(s.max < 4096);
            }
        });
        assert_eq!(h.snapshot().count, 50_000);
    }
}
