//! Prometheus text-format helpers: name validity, label-block parsing,
//! and a strict exposition parser used by the conformance tests and the
//! `/metrics` round-trip checks.
//!
//! The grammar implemented here is the Prometheus text format 0.0.4:
//! metric names match `[a-zA-Z_:][a-zA-Z0-9_:]*`, label names match
//! `[a-zA-Z_][a-zA-Z0-9_]*`, and label values escape `\`, `"`, and
//! newline as `\\`, `\"`, and `\n`.

use std::collections::{BTreeMap, BTreeSet};

/// True when `name` is a valid Prometheus metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
#[must_use]
pub fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// True when `name` is a valid Prometheus label name
/// (`[a-zA-Z_][a-zA-Z0-9_]*`).
#[must_use]
pub fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Escape a label value for exposition: `\` → `\\`, `"` → `\"`,
/// newline → `\n`.
#[must_use]
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Parse the interior of a label block (`k="v",k2="v2"` — no braces)
/// into unescaped `(name, value)` pairs.
///
/// # Errors
/// Returns a description of the first syntax error: bad label name,
/// missing `="`, unterminated value, or an invalid escape sequence.
pub fn parse_label_block(block: &str) -> Result<Vec<(String, String)>, String> {
    let mut pairs = Vec::new();
    let mut rest = block;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label block missing '=': {rest:?}"))?;
        let name = &rest[..eq];
        if !valid_label_name(name) {
            return Err(format!("invalid label name {name:?}"));
        }
        rest = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or_else(|| format!("label {name:?} value not quoted"))?;
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let close = loop {
            match chars.next() {
                None => return Err(format!("label {name:?} value unterminated")),
                Some((i, '"')) => break i,
                Some((_, '\\')) => match chars.next() {
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, 'n')) => value.push('\n'),
                    other => {
                        return Err(format!(
                            "label {name:?} value has invalid escape \\{}",
                            other.map_or(String::from("<eof>"), |(_, c)| c.to_string())
                        ))
                    }
                },
                Some((_, c)) => value.push(c),
            }
        };
        pairs.push((name.to_string(), value));
        rest = &rest[close + 1..];
        if let Some(tail) = rest.strip_prefix(',') {
            if tail.is_empty() {
                return Err("trailing ',' in label block".to_string());
            }
            rest = tail;
        } else if !rest.is_empty() {
            return Err(format!("junk after label value: {rest:?}"));
        }
    }
    Ok(pairs)
}

/// One sample line parsed out of an exposition body.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpositionSample {
    /// Full sample name as written (`lat_us_bucket`, `pkts_total`, …).
    pub name: String,
    /// Unescaped label pairs in written order.
    pub labels: Vec<(String, String)>,
    /// Sample value (`+Inf`/`-Inf`/`NaN` accepted).
    pub value: f64,
}

/// Strictly parse a Prometheus text exposition body.
///
/// Enforces, beyond bare syntax:
/// * metric and label names are valid;
/// * at most one `# TYPE` per metric name, with a known type;
/// * every sample belongs to a declared `# TYPE` group (histogram
///   samples may use the `_bucket`/`_sum`/`_count` suffixes);
/// * samples for one metric name are contiguous — a name group never
///   reopens after another group started (the "registry dump ordering"
///   bug this repo once had).
///
/// # Errors
/// Returns `Err(line_number, description)` (1-based) for the first
/// violation.
pub fn parse_exposition(text: &str) -> Result<Vec<ExpositionSample>, (usize, String)> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut samples = Vec::new();
    let mut current_group: Option<String> = None;
    let mut closed_groups: BTreeSet<String> = BTreeSet::new();
    let mut enter_group = |base: &str, current: &mut Option<String>, lineno: usize| {
        if current.as_deref() == Some(base) {
            return Ok(());
        }
        if let Some(prev) = current.take() {
            closed_groups.insert(prev);
        }
        if closed_groups.contains(base) {
            return Err((
                lineno,
                format!("samples for {base:?} are interleaved with another metric"),
            ));
        }
        *current = Some(base.to_string());
        Ok(())
    };

    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, ty) = rest
                .split_once(' ')
                .ok_or((lineno, "malformed TYPE line".to_string()))?;
            if !valid_metric_name(name) {
                return Err((lineno, format!("TYPE line has invalid name {name:?}")));
            }
            if !matches!(
                ty,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err((lineno, format!("unknown metric type {ty:?}")));
            }
            if types.insert(name.to_string(), ty.to_string()).is_some() {
                return Err((lineno, format!("duplicate TYPE for {name:?}")));
            }
            enter_group(name, &mut current_group, lineno)?;
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest
                .split_once(' ')
                .ok_or((lineno, "malformed HELP line".to_string()))?;
            if !valid_metric_name(name) {
                return Err((lineno, format!("HELP line has invalid name {name:?}")));
            }
            let mut chars = help.chars();
            while let Some(c) = chars.next() {
                if c == '\\' && !matches!(chars.next(), Some('\\' | 'n')) {
                    return Err((lineno, format!("HELP for {name:?} has invalid escape")));
                }
            }
            enter_group(name, &mut current_group, lineno)?;
            continue;
        }
        if line.starts_with('#') {
            continue; // other comments are legal and ignored
        }

        // Sample line: name[{labels}] value
        let (name, after_name) = match line.find(['{', ' ']) {
            Some(i) => (&line[..i], &line[i..]),
            None => return Err((lineno, "sample line missing value".to_string())),
        };
        if !valid_metric_name(name) {
            return Err((lineno, format!("invalid metric name {name:?}")));
        }
        let (labels, value_str) = if let Some(rest) = after_name.strip_prefix('{') {
            let close = find_label_block_end(rest)
                .ok_or((lineno, format!("unterminated label block on {name:?}")))?;
            let labels = parse_label_block(&rest[..close]).map_err(|e| (lineno, e))?;
            let rest = rest[close + 1..]
                .strip_prefix(' ')
                .ok_or((lineno, format!("missing value after labels on {name:?}")))?;
            (labels, rest)
        } else {
            (Vec::new(), &after_name[1..])
        };
        let value = match value_str {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            v => v
                .parse::<f64>()
                .map_err(|_| (lineno, format!("bad sample value {v:?} for {name:?}")))?,
        };

        let base = base_name(name, &types)
            .ok_or((lineno, format!("sample {name:?} has no TYPE declaration")))?;
        enter_group(&base, &mut current_group, lineno)?;
        samples.push(ExpositionSample {
            name: name.to_string(),
            labels,
            value,
        });
    }
    Ok(samples)
}

/// Find the index of the `}` closing a label block, honoring escapes
/// inside quoted values. `rest` starts just after the opening `{`.
fn find_label_block_end(rest: &str) -> Option<usize> {
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in rest.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            '}' if !in_quotes => return Some(i),
            _ => {}
        }
    }
    None
}

/// Map a sample name to its TYPE group's base name, accepting histogram
/// suffixes.
fn base_name(sample: &str, types: &BTreeMap<String, String>) -> Option<String> {
    if types.contains_key(sample) {
        return Some(sample.to_string());
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = sample.strip_suffix(suffix) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return Some(base.to_string());
            }
        }
    }
    None
}

/// Escape a string for embedding in a JSON string literal.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_validity() {
        assert!(valid_metric_name("pkts_total"));
        assert!(valid_metric_name("_x"));
        assert!(valid_metric_name("ns:sub_total"));
        assert!(!valid_metric_name(""));
        assert!(!valid_metric_name("9lives"));
        assert!(!valid_metric_name("has-dash"));
        assert!(!valid_metric_name("has space"));
        assert!(valid_label_name("stage"));
        assert!(!valid_label_name("le:"));
        assert!(!valid_label_name("1st"));
    }

    #[test]
    fn label_block_round_trip() {
        let hostile = "a\\b\"c\nd";
        let block = format!("k=\"{}\",other=\"plain\"", escape_label_value(hostile));
        let pairs = parse_label_block(&block).unwrap();
        assert_eq!(
            pairs,
            vec![
                ("k".to_string(), hostile.to_string()),
                ("other".to_string(), "plain".to_string()),
            ]
        );
    }

    #[test]
    fn label_block_rejects_garbage() {
        assert!(parse_label_block("noequals").is_err());
        assert!(parse_label_block("k=unquoted").is_err());
        assert!(parse_label_block("k=\"open").is_err());
        assert!(parse_label_block("k=\"bad\\q\"").is_err());
        assert!(parse_label_block("k=\"v\",").is_err());
        assert!(parse_label_block("k=\"v\"junk").is_err());
        assert!(parse_label_block("1bad=\"v\"").is_err());
    }

    #[test]
    fn parse_rejects_interleaved_groups() {
        let text = "# TYPE a counter\na 1\n# TYPE b counter\nb 1\na{x=\"1\"} 2\n";
        let err = parse_exposition(text).unwrap_err();
        assert_eq!(err.0, 5);
        assert!(err.1.contains("interleaved"), "{}", err.1);
    }

    #[test]
    fn parse_rejects_duplicate_type() {
        let text = "# TYPE a counter\na 1\n# TYPE a counter\n";
        assert!(parse_exposition(text).is_err());
    }

    #[test]
    fn parse_accepts_histogram_suffixes_and_inf() {
        let text = "# TYPE lat_us histogram\n\
                    lat_us_bucket{le=\"2\"} 1\n\
                    lat_us_bucket{le=\"+Inf\"} 4\n\
                    lat_us_sum 707\n\
                    lat_us_count 4\n";
        let samples = parse_exposition(text).unwrap();
        assert_eq!(samples.len(), 4);
        assert_eq!(samples[1].value, 4.0);
        assert_eq!(
            samples[1].labels,
            vec![("le".to_string(), "+Inf".to_string())]
        );
        assert!(parse_exposition("# TYPE up gauge\nup +Inf\n").unwrap()[0]
            .value
            .is_infinite());
    }

    #[test]
    fn parse_rejects_untyped_sample() {
        assert!(parse_exposition("mystery 3\n").is_err());
    }
}
