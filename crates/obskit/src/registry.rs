//! The metric registry and its text expositions (Prometheus, JSONL
//! snapshot, human summary).

use crate::exposition::{json_escape, parse_label_block};
use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{LazyLock, RwLock};

/// What kind of metric a name resolves to.
#[derive(Debug, Clone)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter(Counter),
    /// Up/down gauge.
    Gauge(Gauge),
    /// Log₂ histogram.
    Histogram(Histogram),
}

impl MetricKind {
    fn type_name(&self) -> &'static str {
        match self {
            MetricKind::Counter(_) => "counter",
            MetricKind::Gauge(_) => "gauge",
            MetricKind::Histogram(_) => "histogram",
        }
    }
}

/// A named collection of metrics.
///
/// Keys are full exposition keys — `name` or `name{label="v",...}` (see
/// [`crate::keyed`]). A `BTreeMap` keeps output deterministic. The map
/// is behind an `RwLock`, taken for *write* only on first registration
/// of a key; handle lookups take the read lock, and recording through a
/// held handle takes no lock at all.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: RwLock<BTreeMap<String, MetricKind>>,
    help: RwLock<BTreeMap<String, String>>,
}

static GLOBAL: LazyLock<Registry> = LazyLock::new(Registry::new);

/// The process-wide registry.
#[must_use]
pub fn global() -> &'static Registry {
    &GLOBAL
}

impl Registry {
    /// An empty registry (tests and tools; production code uses
    /// [`crate::global`]).
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    fn get_or_insert<T, F, G>(&self, key: &str, extract: F, make: G) -> T
    where
        F: Fn(&MetricKind) -> Option<T>,
        G: FnOnce() -> (MetricKind, T),
    {
        if let Some(found) = self
            .metrics
            .read()
            .expect("metric registry poisoned")
            .get(key)
            .map(|m| {
                extract(m).unwrap_or_else(|| {
                    panic!("metric '{key}' already registered as a {}", m.type_name())
                })
            })
        {
            return found;
        }
        let mut map = self.metrics.write().expect("metric registry poisoned");
        // Racing registrants: first writer wins, everyone shares.
        if let Some(existing) = map.get(key) {
            return extract(existing).unwrap_or_else(|| {
                panic!(
                    "metric '{key}' already registered as a {}",
                    existing.type_name()
                )
            });
        }
        let (kind, handle) = make();
        map.insert(key.to_string(), kind);
        handle
    }

    /// Get or register a counter under `key`.
    ///
    /// # Panics
    /// Panics if `key` is already registered as a different kind.
    #[must_use]
    pub fn counter(&self, key: &str) -> Counter {
        self.get_or_insert(
            key,
            |m| match m {
                MetricKind::Counter(c) => Some(c.clone()),
                _ => None,
            },
            || {
                let c = Counter::new();
                (MetricKind::Counter(c.clone()), c)
            },
        )
    }

    /// Get or register a gauge under `key`.
    ///
    /// # Panics
    /// Panics if `key` is already registered as a different kind.
    #[must_use]
    pub fn gauge(&self, key: &str) -> Gauge {
        self.get_or_insert(
            key,
            |m| match m {
                MetricKind::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            || {
                let g = Gauge::new();
                (MetricKind::Gauge(g.clone()), g)
            },
        )
    }

    /// Get or register a histogram under `key`.
    ///
    /// # Panics
    /// Panics if `key` is already registered as a different kind.
    #[must_use]
    pub fn histogram(&self, key: &str) -> Histogram {
        self.get_or_insert(
            key,
            |m| match m {
                MetricKind::Histogram(h) => Some(h.clone()),
                _ => None,
            },
            || {
                let h = Histogram::new();
                (MetricKind::Histogram(h.clone()), h)
            },
        )
    }

    /// Number of registered metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.metrics.read().expect("metric registry poisoned").len()
    }

    /// True when nothing has been registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time copy of every metric, sorted by key.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(String, SnapshotValue)> {
        let map = self.metrics.read().expect("metric registry poisoned");
        map.iter()
            .map(|(k, m)| {
                let v = match m {
                    MetricKind::Counter(c) => SnapshotValue::Counter(c.get()),
                    MetricKind::Gauge(g) => SnapshotValue::Gauge(g.get()),
                    MetricKind::Histogram(h) => SnapshotValue::Histogram(Box::new(h.snapshot())),
                };
                (k.clone(), v)
            })
            .collect()
    }

    /// Attach a `# HELP` string to a metric *name* (not a full key);
    /// every labeled series under the name shares it. Last write wins.
    pub fn describe(&self, name: &str, help: &str) {
        self.help
            .write()
            .expect("metric help poisoned")
            .insert(name.to_string(), help.to_string());
    }

    /// Snapshot re-sorted by `(base name, label block)` so exposition
    /// keeps every series of one metric name contiguous. A plain sort on
    /// full keys would split a name group: `'_'` sorts before `'{'`, so
    /// `ab_c` lands between `ab` and `ab{x="1"}`.
    fn ordered_snapshot(&self) -> Vec<(String, String, SnapshotValue)> {
        let mut rows: Vec<(String, String, SnapshotValue)> = self
            .snapshot()
            .into_iter()
            .map(|(key, value)| {
                let (name, labels) = split_key(&key);
                (name.to_string(), labels.to_string(), value)
            })
            .collect();
        rows.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
        rows
    }

    /// Prometheus text exposition (format 0.0.4).
    ///
    /// Series are sorted by `(name, labels)` and grouped by name: each
    /// name gets exactly one `# TYPE` line (plus a `# HELP` line when
    /// [`Registry::describe`]d), followed by all of its samples.
    /// Counters and gauges render as single samples; histograms render
    /// their non-empty buckets cumulatively with `le` upper bounds plus
    /// `_sum` and `_count` samples.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let help = self.help.read().expect("metric help poisoned");
        let mut out = String::new();
        let mut current: Option<String> = None;
        for (name, labels, value) in self.ordered_snapshot() {
            if current.as_deref() != Some(name.as_str()) {
                if let Some(h) = help.get(&name) {
                    let escaped = h.replace('\\', "\\\\").replace('\n', "\\n");
                    let _ = writeln!(out, "# HELP {name} {escaped}");
                }
                let ty = match value {
                    SnapshotValue::Counter(_) => "counter",
                    SnapshotValue::Gauge(_) => "gauge",
                    SnapshotValue::Histogram(_) => "histogram",
                };
                let _ = writeln!(out, "# TYPE {name} {ty}");
                current = Some(name.clone());
            }
            match value {
                SnapshotValue::Counter(v) => {
                    let _ = writeln!(out, "{name}{} {v}", brace(&labels));
                }
                SnapshotValue::Gauge(v) => {
                    let _ = writeln!(out, "{name}{} {v}", brace(&labels));
                }
                SnapshotValue::Histogram(s) => {
                    let mut cumulative = 0u64;
                    for (i, &c) in s.buckets.iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        cumulative += c;
                        let (_, hi) = Histogram::bucket_bounds(i);
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {cumulative}",
                            merge_labels(&labels, &format!("le=\"{hi}\""))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{name}_bucket{} {}",
                        merge_labels(&labels, "le=\"+Inf\""),
                        s.count
                    );
                    let _ = writeln!(out, "{name}_sum{} {}", brace(&labels), s.sum);
                    let _ = writeln!(out, "{name}_count{} {}", brace(&labels), s.count);
                }
            }
        }
        out
    }

    /// JSONL snapshot: one JSON object per line, one line per series,
    /// sorted by `(name, labels)` — the `/snapshot` endpoint body.
    ///
    /// Counters/gauges carry `"value"`; histograms carry `"count"`,
    /// `"sum"`, `"max"`, and non-empty `"buckets"` as `[le, count]`
    /// pairs (per-bucket, not cumulative).
    #[must_use]
    pub fn render_snapshot_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, labels, value) in self.ordered_snapshot() {
            out.push_str("{\"name\":\"");
            out.push_str(&json_escape(&name));
            out.push_str("\",\"labels\":{");
            // The label block came from `keyed`, so it always parses.
            let pairs = parse_label_block(&labels).unwrap_or_default();
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
            }
            out.push_str("},");
            match value {
                SnapshotValue::Counter(v) => {
                    let _ = write!(out, "\"kind\":\"counter\",\"value\":{v}");
                }
                SnapshotValue::Gauge(v) => {
                    let _ = write!(out, "\"kind\":\"gauge\",\"value\":{v}");
                }
                SnapshotValue::Histogram(s) => {
                    let _ = write!(
                        out,
                        "\"kind\":\"histogram\",\"count\":{},\"sum\":{},\"max\":{},\"buckets\":[",
                        s.count, s.sum, s.max
                    );
                    let mut first = true;
                    for (i, &c) in s.buckets.iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        if !first {
                            out.push(',');
                        }
                        first = false;
                        let (_, hi) = Histogram::bucket_bounds(i);
                        let _ = write!(out, "[{hi},{c}]");
                    }
                    out.push(']');
                }
            }
            out.push_str("}\n");
        }
        out
    }

    /// A human-readable summary table: one row per metric; histograms
    /// show count, mean, p50/p90/p99, and max.
    #[must_use]
    pub fn render_summary(&self) -> String {
        let snapshot = self.snapshot();
        if snapshot.is_empty() {
            return "(no metrics registered)\n".to_string();
        }
        let width = snapshot
            .iter()
            .map(|(k, _)| k.len())
            .max()
            .unwrap_or(0)
            .max(6);
        let mut out = String::new();
        let _ = writeln!(out, "{:<width$}  {:>9}  value", "metric", "type");
        for (key, value) in snapshot {
            match value {
                SnapshotValue::Counter(v) => {
                    let _ = writeln!(out, "{key:<width$}  {:>9}  {v}", "counter");
                }
                SnapshotValue::Gauge(v) => {
                    let _ = writeln!(out, "{key:<width$}  {:>9}  {v}", "gauge");
                }
                SnapshotValue::Histogram(s) => {
                    let _ = writeln!(
                        out,
                        "{key:<width$}  {:>9}  count={} mean={:.1} p50={} p90={} p99={} max={}",
                        "histogram",
                        s.count,
                        s.mean(),
                        s.quantile(0.50).unwrap_or(0),
                        s.quantile(0.90).unwrap_or(0),
                        s.quantile(0.99).unwrap_or(0),
                        s.max,
                    );
                }
            }
        }
        out
    }
}

/// A snapshot of one metric's value.
///
/// The histogram variant is boxed: a [`HistogramSnapshot`] carries its
/// full bucket array and would otherwise inflate every snapshot entry.
#[derive(Debug, Clone)]
pub enum SnapshotValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram state.
    Histogram(Box<HistogramSnapshot>),
}

/// Split a registry key into `(base_name, label_block)` where the label
/// block is the `k="v",...` interior (empty when unlabeled).
pub(crate) fn split_key(key: &str) -> (&str, &str) {
    match key.split_once('{') {
        Some((name, rest)) => (name, rest.strip_suffix('}').unwrap_or(rest)),
        None => (key, ""),
    }
}

/// `{existing,extra}` — merge an existing label block with one more
/// label.
fn merge_labels(existing: &str, extra: &str) -> String {
    if existing.is_empty() {
        format!("{{{extra}}}")
    } else {
        format!("{{{existing},{extra}}}")
    }
}

/// Wrap a label block back in braces ("" stays "").
fn brace(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(not(feature = "noop"))]
    fn registration_is_idempotent_and_shared() {
        let r = Registry::new();
        r.counter("a_total").add(2);
        r.counter("a_total").add(3);
        assert_eq!(r.counter("a_total").get(), 5);
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn kind_conflicts_panic() {
        let r = Registry::new();
        let _ = r.counter("x");
        let _ = r.gauge("x");
    }

    #[test]
    #[cfg(not(feature = "noop"))]
    fn concurrent_registration_yields_one_metric() {
        let r = Registry::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1_000 {
                        r.counter("contended_total").inc();
                    }
                });
            }
        });
        assert_eq!(r.len(), 1);
        assert_eq!(r.counter("contended_total").get(), 8_000);
    }

    #[test]
    #[cfg(not(feature = "noop"))]
    fn exposition_golden() {
        let r = Registry::new();
        r.counter("pkts_total").add(7);
        r.gauge("depth").set(-2);
        let h = r.histogram("lat_us{stage=\"read\"}");
        h.record(1); // bucket [0,2)   -> le="2"
        h.record(3); // bucket [2,4)   -> le="4"
        h.record(3);
        h.record(700); // bucket [512,1024) -> le="1024"
        let expected = "\
# TYPE depth gauge
depth -2
# TYPE lat_us histogram
lat_us_bucket{stage=\"read\",le=\"2\"} 1
lat_us_bucket{stage=\"read\",le=\"4\"} 3
lat_us_bucket{stage=\"read\",le=\"1024\"} 4
lat_us_bucket{stage=\"read\",le=\"+Inf\"} 4
lat_us_sum{stage=\"read\"} 707
lat_us_count{stage=\"read\"} 4
# TYPE pkts_total counter
pkts_total 7
";
        assert_eq!(r.render_prometheus(), expected);
    }

    #[test]
    #[cfg(not(feature = "noop"))]
    fn exposition_keeps_name_groups_contiguous() {
        // Full-key string order is ab < ab_c < ab{x="1"} ('_' < '{'),
        // which used to split the `ab` group and emit a duplicate TYPE.
        let r = Registry::new();
        r.counter("ab").add(1);
        r.counter("ab_c").add(2);
        r.counter("ab{x=\"1\"}").add(3);
        r.counter("ab{x=\"0\"}").add(4);
        let text = r.render_prometheus();
        let expected = "\
# TYPE ab counter
ab 1
ab{x=\"0\"} 4
ab{x=\"1\"} 3
# TYPE ab_c counter
ab_c 2
";
        assert_eq!(text, expected);
        assert_eq!(text.matches("# TYPE ab counter").count(), 1);
        crate::exposition::parse_exposition(&text).expect("self-exposition must parse");
    }

    #[test]
    #[cfg(not(feature = "noop"))]
    fn help_lines_render_once_per_name_and_escape() {
        let r = Registry::new();
        r.counter("x_total{k=\"a\"}").inc();
        r.counter("x_total{k=\"b\"}").inc();
        r.describe("x_total", "slash \\ and\nnewline");
        let text = r.render_prometheus();
        assert_eq!(
            text.matches("# HELP x_total slash \\\\ and\\nnewline")
                .count(),
            1
        );
        crate::exposition::parse_exposition(&text).expect("help escaping must parse");
    }

    #[test]
    #[cfg(not(feature = "noop"))]
    fn snapshot_jsonl_is_sorted_and_structured() {
        let r = Registry::new();
        r.counter("zz_total").add(9);
        r.gauge("aa{q=\"v\"}").set(-3);
        r.histogram("h_us").record(700);
        let text = r.render_snapshot_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"name\":\"aa\",\"labels\":{\"q\":\"v\"},\"kind\":\"gauge\",\"value\":-3}"
        );
        assert!(lines[1].starts_with("{\"name\":\"h_us\""));
        assert!(lines[1].contains("\"kind\":\"histogram\",\"count\":1,\"sum\":700"));
        assert_eq!(
            lines[2],
            "{\"name\":\"zz_total\",\"labels\":{},\"kind\":\"counter\",\"value\":9}"
        );
    }

    #[test]
    fn summary_mentions_every_metric() {
        let r = Registry::new();
        r.counter("c_total").inc();
        r.gauge("g").set(4);
        r.histogram("h_us").record(100);
        let s = r.render_summary();
        assert!(s.contains("c_total"));
        assert!(s.contains("g"));
        assert!(s.contains("h_us"));
        assert!(s.contains("p99="));
        assert!(Registry::new().render_summary().contains("no metrics"));
    }
}
