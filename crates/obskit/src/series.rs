//! `obskit::series` — an on-board, bounded ring-buffer time-series
//! store over the global registry.
//!
//! Every telemetry tick ([`crate::telemetry`]) snapshots the registry
//! and appends one `(ts_us, value)` point per metric key to a bounded
//! per-key ring: counters and gauges record their value directly,
//! histograms expand to `<name>_count` and `<name>_sum` series. The
//! store is the substrate for three consumers:
//!
//! * `GET /series?name=&since=&step=` in [`crate::serve`] — JSON dumps
//!   with server-side systematic-`step` downsampling;
//! * the alert engine in [`crate::rules`], whose `value`/`rate`/
//!   `delta`/`stale` functions all read the rings;
//! * the **telemetry self-sampling φ check**: the paper scores a
//!   sampled packet stream against its parent population with the
//!   disparity metric φ = √(χ²ₚ/n) over log₂ histograms; the store
//!   applies the same protocol to its *own* series — systematic
//!   1-in-k downsamples of each configured series are scored against
//!   the full ring and exported as
//!   `series_fidelity_phi_x1000{series,k}` gauges, so the fidelity of
//!   the monitoring path itself is characterized, not assumed.
//!
//! Memory is strictly bounded: at most [`SeriesConfig::max_series`]
//! rings of [`SeriesConfig::capacity`] points each; series beyond the
//! cap are counted in `series_dropped_total` and skipped.

use crate::metrics::Histogram;
use crate::registry::SnapshotValue;
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Mutex, OnceLock};

/// Longest raw query string `parse_series_query` accepts.
pub const MAX_QUERY_LEN: usize = 2048;
/// Longest (decoded) value of a single query parameter.
pub const MAX_QUERY_VALUE_LEN: usize = 256;
/// Largest accepted `step` (systematic downsample stride).
pub const MAX_STEP: usize = 1_000_000;

/// One recorded observation of one series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// Wall-clock µs of the tick that recorded the point.
    pub ts_us: u64,
    /// Metric value at that tick.
    pub value: f64,
}

/// Store configuration.
#[derive(Debug, Clone)]
pub struct SeriesConfig {
    /// Points retained per series ring.
    pub capacity: usize,
    /// Maximum distinct series; later keys are dropped (counted).
    pub max_series: usize,
    /// Series keys scored by the φ fidelity self-check each tick.
    pub fidelity_keys: Vec<String>,
    /// Systematic downsample strides `k` scored per fidelity key.
    pub fidelity_ks: Vec<usize>,
}

impl Default for SeriesConfig {
    fn default() -> Self {
        SeriesConfig {
            capacity: 600,
            max_series: 1024,
            fidelity_keys: vec![
                "proc_rss_kb".to_string(),
                "stream_channel_depth{stage=\"transform\"}".to_string(),
                "stream_channel_depth{stage=\"score\"}".to_string(),
            ],
            fidelity_ks: vec![2, 5, 10],
        }
    }
}

struct Ring {
    points: VecDeque<SeriesPoint>,
    /// Wall-clock µs of the last point whose value differed from its
    /// predecessor (staleness watermark for `stale()` rules).
    last_change_us: u64,
}

/// Bounded per-metric time-series rings over the global registry.
pub struct SeriesStore {
    capacity: usize,
    max_series: usize,
    fidelity_keys: Vec<String>,
    fidelity_ks: Vec<usize>,
    rings: Mutex<BTreeMap<String, Ring>>,
}

impl std::fmt::Debug for SeriesStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SeriesStore")
            .field("capacity", &self.capacity)
            .field("max_series", &self.max_series)
            .finish_non_exhaustive()
    }
}

impl SeriesStore {
    /// Build an empty store.
    #[must_use]
    pub fn new(cfg: SeriesConfig) -> SeriesStore {
        SeriesStore {
            capacity: cfg.capacity.max(2),
            max_series: cfg.max_series.max(1),
            fidelity_keys: cfg.fidelity_keys,
            fidelity_ks: cfg.fidelity_ks,
            rings: Mutex::new(BTreeMap::new()),
        }
    }

    /// Append one point to `key`'s ring (creating it if the series cap
    /// allows). This is the raw ingestion path `record_registry` uses;
    /// tests use it to inject synthetic series (NaN/Inf included).
    pub fn push(&self, key: &str, ts_us: u64, value: f64) {
        let mut rings = self.rings.lock().expect("series rings poisoned");
        if !rings.contains_key(key) {
            if rings.len() >= self.max_series {
                drop(rings);
                crate::counter("series_dropped_total").inc();
                return;
            }
            rings.insert(
                key.to_string(),
                Ring {
                    points: VecDeque::with_capacity(self.capacity),
                    last_change_us: ts_us,
                },
            );
        }
        let ring = rings.get_mut(key).expect("ring just ensured");
        let changed = ring
            .points
            .back()
            .is_none_or(|last| last.value.to_bits() != value.to_bits());
        if changed {
            ring.last_change_us = ts_us;
        }
        if ring.points.len() == self.capacity {
            ring.points.pop_front();
        }
        ring.points.push_back(SeriesPoint { ts_us, value });
    }

    /// Record one registry snapshot: counters and gauges verbatim,
    /// histograms expanded to `<name>_count` / `<name>_sum` series.
    pub fn record_registry(&self, now_us: u64, snapshot: &[(String, SnapshotValue)]) {
        for (key, value) in snapshot {
            match value {
                SnapshotValue::Counter(v) => self.push(key, now_us, *v as f64),
                SnapshotValue::Gauge(v) => self.push(key, now_us, *v as f64),
                SnapshotValue::Histogram(h) => {
                    let (name, labels) = crate::registry::split_key(key);
                    let block = if labels.is_empty() {
                        String::new()
                    } else {
                        format!("{{{labels}}}")
                    };
                    self.push(&format!("{name}_count{block}"), now_us, h.count as f64);
                    self.push(&format!("{name}_sum{block}"), now_us, h.sum as f64);
                }
            }
        }
    }

    /// One store tick: snapshot the global registry, record every
    /// metric, then refresh the φ fidelity gauges. Driven by the
    /// telemetry sampler thread via [`ensure_global_series`].
    pub fn tick(&self, now_us: u64) {
        let snapshot = crate::global().snapshot();
        self.record_registry(now_us, &snapshot);
        self.refresh_fidelity();
        crate::counter("series_ticks_total").inc();
    }

    /// Recompute `series_fidelity_phi_x1000{series,k}` for every
    /// configured fidelity key × stride.
    pub fn refresh_fidelity(&self) {
        for key in &self.fidelity_keys {
            let full: Vec<f64> = {
                let rings = self.rings.lock().expect("series rings poisoned");
                match rings.get(key) {
                    Some(r) => r.points.iter().map(|p| p.value).collect(),
                    None => continue,
                }
            };
            for &k in &self.fidelity_ks {
                if let Some(phi) = fidelity_phi(&full, k) {
                    let ks = k.to_string();
                    crate::gauge_labeled(
                        "series_fidelity_phi_x1000",
                        &[("series", key.as_str()), ("k", ks.as_str())],
                    )
                    .set((phi * 1000.0).round() as i64);
                }
            }
        }
    }

    /// Latest point of `key`, if the series exists and is nonempty.
    #[must_use]
    pub fn latest(&self, key: &str) -> Option<SeriesPoint> {
        let rings = self.rings.lock().expect("series rings poisoned");
        rings.get(key).and_then(|r| r.points.back().copied())
    }

    /// Per-second rate over the last two points, counter-reset-aware:
    /// a negative delta (registry reset, process restart behind the
    /// same scrape address) clamps to 0 instead of going negative or
    /// spuriously huge. `None` with fewer than two points or zero dt.
    #[must_use]
    pub fn rate_per_sec(&self, key: &str) -> Option<f64> {
        let rings = self.rings.lock().expect("series rings poisoned");
        let ring = rings.get(key)?;
        let n = ring.points.len();
        if n < 2 {
            return None;
        }
        let prev = ring.points[n - 2];
        let cur = ring.points[n - 1];
        let dt_us = cur.ts_us.saturating_sub(prev.ts_us);
        if dt_us == 0 {
            return None;
        }
        let delta = cur.value - prev.value;
        if !delta.is_finite() || delta < 0.0 {
            return Some(0.0);
        }
        Some(delta / (dt_us as f64 / 1e6))
    }

    /// Sum of **positive** consecutive deltas over the retained ring —
    /// the counter-reset-aware total increase. A reset (value drop)
    /// contributes 0 rather than a negative jump. `None` with fewer
    /// than two points.
    #[must_use]
    pub fn reset_aware_delta(&self, key: &str) -> Option<f64> {
        let rings = self.rings.lock().expect("series rings poisoned");
        let ring = rings.get(key)?;
        if ring.points.len() < 2 {
            return None;
        }
        let mut total = 0.0;
        let mut prev: Option<f64> = None;
        for p in &ring.points {
            if let Some(prev) = prev {
                let d = p.value - prev;
                if d.is_finite() && d > 0.0 {
                    total += d;
                }
            }
            prev = Some(p.value);
        }
        Some(total)
    }

    /// Microseconds since `key`'s value last changed, `None` when the
    /// series does not exist (callers treat that as infinitely stale).
    #[must_use]
    pub fn staleness_us(&self, key: &str, now_us: u64) -> Option<u64> {
        let rings = self.rings.lock().expect("series rings poisoned");
        let ring = rings.get(key)?;
        if ring.points.is_empty() {
            return None;
        }
        Some(now_us.saturating_sub(ring.last_change_us))
    }

    /// All series keys currently retained, sorted.
    #[must_use]
    pub fn keys(&self) -> Vec<String> {
        let rings = self.rings.lock().expect("series rings poisoned");
        rings.keys().cloned().collect()
    }

    /// Evaluate a query: series matching `name` (exact key, or every
    /// series when absent), points at `ts_us >= since`, systematically
    /// downsampled to every `step`-th point.
    #[must_use]
    pub fn select(&self, q: &SeriesQuery) -> Vec<(String, Vec<SeriesPoint>)> {
        let rings = self.rings.lock().expect("series rings poisoned");
        let mut out = Vec::new();
        for (key, ring) in rings.iter() {
            if let Some(name) = &q.name {
                if name != key {
                    continue;
                }
            }
            let pts: Vec<SeriesPoint> = ring
                .points
                .iter()
                .filter(|p| p.ts_us >= q.since_us)
                .copied()
                .collect();
            out.push((key.clone(), downsample_systematic(&pts, q.step)));
        }
        out
    }

    /// Render a query result as the `/series` JSON document.
    #[must_use]
    pub fn render_query_json(&self, q: &SeriesQuery, now_us: u64) -> String {
        let selected = self.select(q);
        let interval_us = crate::telemetry::default_interval_ms().saturating_mul(1000);
        let mut out = String::with_capacity(1024);
        out.push_str(&format!(
            "{{\"now_us\":{now_us},\"interval_us\":{interval_us},\"step\":{},\"series\":[",
            q.step
        ));
        for (i, (key, pts)) in selected.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"key\":\"{}\",\"points\":[",
                crate::exposition::json_escape(key)
            ));
            for (j, p) in pts.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{},{}]", p.ts_us, json_num(p.value)));
            }
            out.push_str("]}");
        }
        out.push_str("]}\n");
        out
    }
}

/// Format an `f64` as a JSON number; non-finite values become `null`.
fn json_num(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Systematic 1-in-`k` downsample: the first point, then every `k`-th
/// after it — the paper's count-driven systematic sampler applied to
/// the telemetry stream. `k <= 1` returns the input unchanged.
#[must_use]
pub fn downsample_systematic(points: &[SeriesPoint], k: usize) -> Vec<SeriesPoint> {
    if k <= 1 {
        return points.to_vec();
    }
    points.iter().copied().step_by(k).collect()
}

/// Map a series value onto the log₂ histogram's integer domain:
/// negative values clamp to 0, non-finite values are unrepresentable
/// (`None`), everything else rounds.
fn bucket_value(v: f64) -> Option<u64> {
    if !v.is_finite() {
        return None;
    }
    let v = v.max(0.0);
    if v >= u64::MAX as f64 {
        return Some(u64::MAX);
    }
    Some(v.round() as u64)
}

/// Score a systematic 1-in-`k` downsample of `full` against `full`
/// itself with the paper's disparity metric: both go through the log₂
/// histogram ([`Histogram::bucket_index`]), the population counts are
/// scaled to the sample size, and φ = √(χ²ₚ/n) with the paired
/// statistic χ²ₚ = Σ (E−O)²/(E+O) over non-empty buckets — the same
/// formula `sampling::disparity` applies to packet populations
/// (cross-checked bit-for-bit in streamkit's `fidelity_crosscheck`
/// test). Non-finite values are skipped. `None` when either side has
/// no representable mass. φ ∈ [0, √2]; 0 = perfect fidelity.
#[must_use]
pub fn fidelity_phi(full: &[f64], k: usize) -> Option<f64> {
    let mut pop = [0u64; 64];
    let mut obs = [0u64; 64];
    for v in full {
        if let Some(u) = bucket_value(*v) {
            pop[Histogram::bucket_index(u)] += 1;
        }
    }
    for v in full.iter().step_by(k.max(1)) {
        if let Some(u) = bucket_value(*v) {
            obs[Histogram::bucket_index(u)] += 1;
        }
    }
    let big_n: u64 = pop.iter().sum();
    let n: u64 = obs.iter().sum();
    if big_n == 0 || n == 0 {
        return None;
    }
    let scale = n as f64 / big_n as f64;
    let mut chi2_paired = 0.0;
    for i in 0..64 {
        let expected = pop[i] as f64 * scale;
        let observed = obs[i] as f64;
        let both = expected + observed;
        if both > 0.0 {
            let d = expected - observed;
            chi2_paired += d * d / both;
        }
    }
    Some((chi2_paired / n as f64).sqrt())
}

/// A parsed `/series` query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesQuery {
    /// Exact series key to select; `None` selects every series.
    pub name: Option<String>,
    /// Only points with `ts_us >= since_us` are returned.
    pub since_us: u64,
    /// Systematic downsample stride (1 = every point).
    pub step: usize,
}

impl Default for SeriesQuery {
    fn default() -> Self {
        SeriesQuery {
            name: None,
            since_us: 0,
            step: 1,
        }
    }
}

/// Why a `/series` query string failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// Raw query exceeds [`MAX_QUERY_LEN`].
    TooLong,
    /// Empty `&`-separated segment (`&&`, leading/trailing `&`).
    EmptyPair,
    /// Segment has no `=`.
    MissingEquals,
    /// Key is not one of `name`, `since`, `step`.
    UnknownKey,
    /// The same key appears twice.
    DuplicateKey(&'static str),
    /// Malformed `%XX` percent escape.
    BadPercent,
    /// Decoded value exceeds [`MAX_QUERY_VALUE_LEN`] bytes.
    ValueTooLong(&'static str),
    /// Decoded `name` contains non-graphic or non-ASCII bytes.
    BadName,
    /// `since` is not an unsigned decimal integer.
    BadSince,
    /// `step` is not an integer in `1..=`[`MAX_STEP`].
    BadStep,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::TooLong => write!(f, "query string too long (max {MAX_QUERY_LEN})"),
            QueryError::EmptyPair => f.write_str("empty query parameter"),
            QueryError::MissingEquals => f.write_str("query parameter missing '='"),
            QueryError::UnknownKey => f.write_str("unknown query key (want name, since, step)"),
            QueryError::DuplicateKey(k) => write!(f, "duplicate query key {k:?}"),
            QueryError::BadPercent => f.write_str("malformed %XX escape"),
            QueryError::ValueTooLong(k) => {
                write!(f, "value of {k:?} too long (max {MAX_QUERY_VALUE_LEN})")
            }
            QueryError::BadName => f.write_str("name must be graphic ASCII"),
            QueryError::BadSince => f.write_str("since must be an unsigned integer"),
            QueryError::BadStep => write!(f, "step must be an integer in 1..={MAX_STEP}"),
        }
    }
}

/// Decode `%XX` percent escapes (strict: exactly two hex digits).
fn percent_decode(raw: &str) -> Result<String, QueryError> {
    let bytes = raw.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes.get(i + 1..i + 3).ok_or(QueryError::BadPercent)?;
            let s = std::str::from_utf8(hex).map_err(|_| QueryError::BadPercent)?;
            let v = u8::from_str_radix(s, 16).map_err(|_| QueryError::BadPercent)?;
            out.push(v);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| QueryError::BadName)
}

/// Strictly parse a `/series` query string (the part after `?`, no
/// leading `?`). Empty input yields the default query (all series,
/// all points, step 1).
///
/// Grammar: `&`-separated `key=value` pairs; keys are `name`, `since`,
/// `step`, each at most once; values are percent-decodable (`%XX`).
/// `name` must decode to graphic ASCII, `since` to a `u64`, `step` to
/// `1..=`[`MAX_STEP`].
///
/// # Errors
/// The first violated rule as a [`QueryError`]. Never panics — the
/// faultkit state-fuzz campaign holds it to that.
pub fn parse_series_query(query: &str) -> Result<SeriesQuery, QueryError> {
    if query.len() > MAX_QUERY_LEN {
        return Err(QueryError::TooLong);
    }
    let mut out = SeriesQuery::default();
    let mut seen_name = false;
    let mut seen_since = false;
    let mut seen_step = false;
    if query.is_empty() {
        return Ok(out);
    }
    for pair in query.split('&') {
        if pair.is_empty() {
            return Err(QueryError::EmptyPair);
        }
        let (key, raw_value) = pair.split_once('=').ok_or(QueryError::MissingEquals)?;
        let value = percent_decode(raw_value)?;
        match key {
            "name" => {
                if seen_name {
                    return Err(QueryError::DuplicateKey("name"));
                }
                seen_name = true;
                if value.len() > MAX_QUERY_VALUE_LEN {
                    return Err(QueryError::ValueTooLong("name"));
                }
                if value.is_empty() || !value.bytes().all(|b| b.is_ascii_graphic()) {
                    return Err(QueryError::BadName);
                }
                out.name = Some(value);
            }
            "since" => {
                if seen_since {
                    return Err(QueryError::DuplicateKey("since"));
                }
                seen_since = true;
                if value.len() > MAX_QUERY_VALUE_LEN {
                    return Err(QueryError::ValueTooLong("since"));
                }
                out.since_us = value.parse().map_err(|_| QueryError::BadSince)?;
            }
            "step" => {
                if seen_step {
                    return Err(QueryError::DuplicateKey("step"));
                }
                seen_step = true;
                if value.len() > MAX_QUERY_VALUE_LEN {
                    return Err(QueryError::ValueTooLong("step"));
                }
                let step: usize = value.parse().map_err(|_| QueryError::BadStep)?;
                if step == 0 || step > MAX_STEP {
                    return Err(QueryError::BadStep);
                }
                out.step = step;
            }
            _ => return Err(QueryError::UnknownKey),
        }
    }
    Ok(out)
}

static GLOBAL_SERIES: OnceLock<SeriesStore> = OnceLock::new();

/// Install (or return) the process-wide series store. Once installed,
/// every telemetry tick records a snapshot into it and evaluates the
/// global rule engine against it.
pub fn ensure_global_series(cfg: SeriesConfig) -> &'static SeriesStore {
    GLOBAL_SERIES.get_or_init(|| SeriesStore::new(cfg))
}

/// The process-wide series store, if [`ensure_global_series`] has run.
#[must_use]
pub fn global_series() -> Option<&'static SeriesStore> {
    GLOBAL_SERIES.get()
}

/// Telemetry-tick hook: record a registry snapshot into the global
/// store (when installed) and evaluate the global rule engine on it.
/// Called by the sampler thread after each tick's gauges are fresh.
pub(crate) fn on_tick(now_us: u64) {
    if let Some(store) = global_series() {
        store.tick(now_us);
        crate::rules::global_engine().evaluate(store, now_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> SeriesStore {
        SeriesStore::new(SeriesConfig {
            capacity: 8,
            max_series: 4,
            fidelity_keys: vec![],
            fidelity_ks: vec![],
        })
    }

    #[test]
    fn ring_stays_bounded_and_ordered() {
        let s = store();
        for i in 0..20u64 {
            s.push("a_total", i * 10, i as f64);
        }
        let sel = s.select(&SeriesQuery::default());
        assert_eq!(sel.len(), 1);
        let pts = &sel[0].1;
        assert_eq!(pts.len(), 8, "ring must stay bounded");
        assert_eq!(pts[0].value, 12.0, "oldest points evicted first");
        assert!(pts.windows(2).all(|w| w[0].ts_us < w[1].ts_us));
    }

    #[test]
    fn series_cap_drops_excess_keys() {
        let s = store();
        for i in 0..10 {
            s.push(&format!("k{i}"), 1, 1.0);
        }
        assert_eq!(s.keys().len(), 4, "max_series bounds distinct keys");
    }

    #[test]
    fn select_filters_by_name_since_and_step() {
        let s = store();
        for i in 0..8u64 {
            s.push("a", 100 + i, i as f64);
            s.push("b", 100 + i, 0.0);
        }
        let q = SeriesQuery {
            name: Some("a".to_string()),
            since_us: 102,
            step: 2,
        };
        let sel = s.select(&q);
        assert_eq!(sel.len(), 1);
        assert_eq!(sel[0].0, "a");
        let ts: Vec<u64> = sel[0].1.iter().map(|p| p.ts_us).collect();
        assert_eq!(ts, vec![102, 104, 106], "since then every 2nd");
    }

    #[test]
    fn rate_clamps_counter_resets_to_zero() {
        let s = store();
        s.push("c_total", 0, 100.0);
        s.push("c_total", 1_000_000, 250.0);
        assert_eq!(s.rate_per_sec("c_total"), Some(150.0));
        // Registry reset behind the same address: value drops.
        s.push("c_total", 2_000_000, 10.0);
        assert_eq!(
            s.rate_per_sec("c_total"),
            Some(0.0),
            "negative delta must clamp, not explode"
        );
        assert_eq!(s.rate_per_sec("absent"), None);
    }

    #[test]
    fn reset_aware_delta_sums_only_increases() {
        let s = store();
        for (t, v) in [(0, 10.0), (1, 40.0), (2, 5.0), (3, 25.0)] {
            s.push("c_total", t, v);
        }
        // +30, reset (ignored), +20.
        assert_eq!(s.reset_aware_delta("c_total"), Some(50.0));
        assert_eq!(s.reset_aware_delta("absent"), None);
    }

    #[test]
    fn staleness_tracks_last_value_change() {
        let s = store();
        s.push("g", 100, 7.0);
        s.push("g", 200, 7.0);
        s.push("g", 300, 7.0);
        assert_eq!(s.staleness_us("g", 1000), Some(900));
        s.push("g", 400, 8.0);
        assert_eq!(s.staleness_us("g", 1000), Some(600));
        assert_eq!(s.staleness_us("absent", 1000), None);
    }

    #[test]
    fn histograms_expand_to_count_and_sum_series() {
        let s = store();
        let snap = vec![(
            "lat_us{stage=\"x\"}".to_string(),
            SnapshotValue::Histogram(Box::new(crate::metrics::HistogramSnapshot {
                buckets: [0; 64],
                count: 5,
                sum: 123,
                max: 60,
            })),
        )];
        s.record_registry(42, &snap);
        let keys = s.keys();
        assert_eq!(
            keys,
            vec![
                "lat_us_count{stage=\"x\"}".to_string(),
                "lat_us_sum{stage=\"x\"}".to_string()
            ]
        );
        assert_eq!(s.latest("lat_us_sum{stage=\"x\"}").unwrap().value, 123.0);
    }

    #[test]
    fn downsample_systematic_takes_first_then_every_kth() {
        let pts: Vec<SeriesPoint> = (0..10)
            .map(|i| SeriesPoint {
                ts_us: i,
                value: i as f64,
            })
            .collect();
        let d = downsample_systematic(&pts, 3);
        let ts: Vec<u64> = d.iter().map(|p| p.ts_us).collect();
        assert_eq!(ts, vec![0, 3, 6, 9]);
        assert_eq!(downsample_systematic(&pts, 1).len(), 10);
        assert_eq!(downsample_systematic(&pts, 0).len(), 10);
    }

    #[test]
    fn fidelity_phi_is_zero_for_constant_series_and_bounded() {
        let flat = vec![32.0; 100];
        let phi = fidelity_phi(&flat, 5).expect("phi");
        assert!(phi.abs() < 1e-12, "constant series is perfectly faithful");
        // Wildly bimodal series: still bounded by sqrt(2).
        let mut bi = Vec::new();
        for i in 0..100 {
            bi.push(if i % 2 == 0 { 1.0 } else { 1.0e12 });
        }
        let phi = fidelity_phi(&bi, 2).expect("phi");
        assert!((0.0..=std::f64::consts::SQRT_2 + 1e-12).contains(&phi));
        assert!(fidelity_phi(&[], 2).is_none());
        assert!(fidelity_phi(&[f64::NAN, f64::INFINITY], 2).is_none());
    }

    #[test]
    fn fidelity_phi_detects_skewed_downsample() {
        // Alternating small/large: k=2 sees only the small mode, so the
        // sampled distribution diverges and phi must be well off zero.
        let mut vals = Vec::new();
        for i in 0..200 {
            vals.push(if i % 2 == 0 { 2.0 } else { 2.0e9 });
        }
        let phi = fidelity_phi(&vals, 2).expect("phi");
        assert!(
            phi > 0.5,
            "k=2 on period-2 series must look distorted, phi={phi}"
        );
        let phi5 = fidelity_phi(&vals, 5).expect("phi");
        assert!(phi5 < 0.2, "odd stride keeps both modes, phi={phi5}");
    }

    #[test]
    fn query_parser_accepts_valid_forms() {
        assert_eq!(parse_series_query(""), Ok(SeriesQuery::default()));
        let q = parse_series_query("name=proc_rss_kb&since=123&step=5").unwrap();
        assert_eq!(q.name.as_deref(), Some("proc_rss_kb"));
        assert_eq!(q.since_us, 123);
        assert_eq!(q.step, 5);
        // Percent-decoded label block in the name.
        let q = parse_series_query("name=d%7Bstage%3D%22t%22%7D").unwrap();
        assert_eq!(q.name.as_deref(), Some("d{stage=\"t\"}"));
    }

    #[test]
    fn query_parser_rejects_each_violation() {
        use QueryError::*;
        let long = format!("name={}", "a".repeat(MAX_QUERY_LEN + 1));
        let long_val = format!("name={}", "a".repeat(MAX_QUERY_VALUE_LEN + 1));
        let cases: Vec<(&str, QueryError)> = vec![
            (&long, TooLong),
            ("&name=a", EmptyPair),
            ("name=a&&step=1", EmptyPair),
            ("name", MissingEquals),
            ("names=a", UnknownKey),
            ("name=a&name=b", DuplicateKey("name")),
            ("step=1&step=2", DuplicateKey("step")),
            ("name=%zz", BadPercent),
            ("name=%f", BadPercent),
            ("name=a%ff", BadName), // invalid UTF-8 after decode
            (&long_val, ValueTooLong("name")),
            ("name=", BadName),
            ("name=a%20b", BadName), // space is not graphic
            ("since=x", BadSince),
            ("since=-1", BadSince),
            ("step=0", BadStep),
            ("step=1000001", BadStep),
            ("step=1.5", BadStep),
        ];
        for (raw, want) in cases {
            assert_eq!(parse_series_query(raw), Err(want), "input {raw:?}");
        }
    }

    #[test]
    fn query_parser_is_deterministic_on_arbitrary_bytes() {
        let mut state = 0x243f6a8885a308d3u64;
        for len in [0usize, 1, 9, 120, 2047, 2048, 2049, 9000] {
            let mut raw = Vec::with_capacity(len);
            for _ in 0..len {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                raw.push((state >> 56) as u8);
            }
            let s = String::from_utf8_lossy(&raw).into_owned();
            assert_eq!(parse_series_query(&s), parse_series_query(&s));
        }
    }

    #[test]
    fn json_render_is_well_formed_and_nulls_non_finite() {
        let s = store();
        s.push("a", 1, 2.5);
        s.push("a", 2, f64::NAN);
        s.push("a", 3, 7.0);
        let body = s.render_query_json(&SeriesQuery::default(), 99);
        assert!(body.starts_with("{\"now_us\":99,"));
        assert!(body.contains("\"key\":\"a\""));
        assert!(body.contains("[1,2.5],[2,null],[3,7]"), "body: {body}");
        assert!(body.ends_with("]}\n"));
    }
}
