//! Hierarchical span trees: who called whom, and where the time went.
//!
//! Flat span histograms (`<name>_duration_us`) answer "how long does X
//! take"; they cannot answer "how much of `repro_all` is χ² evaluation
//! inside `experiment_cell`". This module adds that second axis:
//!
//! * every [`crate::span`] pushes a frame onto a **thread-local span
//!   stack** at construction and pops it at drop, so nesting is captured
//!   without any global coordination on the hot path;
//! * each span gets a process-unique **span id** and records its
//!   **parent id** (0 at the root), which the JSONL trace sink emits so
//!   offline tools can rebuild exact trees;
//! * on drop, the span's **total time** (construction→drop) and **self
//!   time** (total minus the total time of its direct children) are
//!   aggregated into a global table keyed by the semicolon-joined call
//!   path (`repro_all;experiment_cell;sampling_select`).
//!
//! The aggregate is exactly the *collapsed stack* ("folded") format that
//! flamegraph tooling (inferno, speedscope, Brendan Gregg's
//! `flamegraph.pl`) consumes: [`render_folded`] emits one
//! `path self_time` line per node.
//!
//! Cost model: entering a span is a thread-local push plus one relaxed
//! atomic id fetch; leaving takes one global mutex to bump three
//! integers for the path. Spans sit at *batch* boundaries (one per
//! `select_indices` call, per experiment cell, per pcap file), not per
//! packet, so this stays far below 1% of hot-path cost — see the
//! `obskit_overhead` bench. With the `noop` feature every entry point
//! returns immediately.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{LazyLock, Mutex};

/// One aggregated node of the span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Semicolon-joined call path, e.g. `repro_all;sampling_select`.
    pub path: String,
    /// Number of spans that completed at this path.
    pub count: u64,
    /// Sum of wall-clock time from construction to drop, in µs.
    pub total_us: u64,
    /// Sum of time not attributed to child spans, in µs.
    pub self_us: u64,
}

impl SpanNode {
    /// The leaf name (last path segment).
    #[must_use]
    pub fn name(&self) -> &str {
        self.path.rsplit(';').next().unwrap_or(&self.path)
    }

    /// Nesting depth: 0 for roots.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.path.matches(';').count()
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct Agg {
    count: u64,
    total_us: u64,
    self_us: u64,
}

/// A live frame on a thread's span stack.
#[derive(Debug)]
struct Frame {
    id: u64,
    path: String,
    /// Total µs of direct children that have already finished.
    child_us: u64,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// Ids start at 1; 0 means "no parent".
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

static TREE: LazyLock<Mutex<BTreeMap<String, Agg>>> = LazyLock::new(|| Mutex::new(BTreeMap::new()));

/// Push a frame for `name` onto this thread's span stack.
///
/// Returns `(span_id, parent_id)`; `parent_id` is 0 at the root. With
/// the `noop` feature this is a constant `(0, 0)` and nothing is pushed.
pub(crate) fn enter(name: &'static str) -> (u64, u64) {
    if !crate::recording_enabled() {
        return (0, 0);
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let (parent_id, path) = match stack.last() {
            Some(parent) => (parent.id, format!("{};{name}", parent.path)),
            None => (0, name.to_string()),
        };
        stack.push(Frame {
            id,
            path,
            child_us: 0,
        });
        (id, parent_id)
    })
}

/// Pop the frame for span `id` (total wall time `total_us`), attribute
/// its total to its parent's child-time, and fold it into the global
/// aggregate.
///
/// Spans normally finish in LIFO order; a span dropped out of order is
/// removed from the middle of the stack (its still-open children are
/// reparented to the frame below — best effort for a misuse the RAII
/// API makes hard to express).
pub(crate) fn exit(id: u64, total_us: u64) {
    if !crate::recording_enabled() || id == 0 {
        return;
    }
    let finished = STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let pos = stack.iter().rposition(|f| f.id == id)?;
        let frame = stack.remove(pos);
        if pos > 0 {
            if let Some(parent) = stack.get_mut(pos - 1) {
                parent.child_us = parent.child_us.saturating_add(total_us);
            }
        }
        Some(frame)
    });
    let Some(frame) = finished else { return };
    let self_us = total_us.saturating_sub(frame.child_us);
    let mut tree = TREE.lock().expect("span tree poisoned");
    let agg = tree.entry(frame.path).or_default();
    agg.count += 1;
    agg.total_us = agg.total_us.saturating_add(total_us);
    agg.self_us = agg.self_us.saturating_add(self_us);
}

/// Depth of this thread's span stack (open spans), for tests and
/// diagnostics.
#[must_use]
pub fn current_depth() -> usize {
    STACK.with(|s| s.borrow().len())
}

/// A point-in-time copy of the aggregated span tree, sorted by path.
#[must_use]
pub fn snapshot() -> Vec<SpanNode> {
    TREE.lock()
        .expect("span tree poisoned")
        .iter()
        .map(|(path, a)| SpanNode {
            path: path.clone(),
            count: a.count,
            total_us: a.total_us,
            self_us: a.self_us,
        })
        .collect()
}

/// Clear the aggregated tree (open spans keep running and will
/// re-populate it as they finish). Used by benchmarks and `perf record`
/// to scope a report to one workload.
pub fn reset() {
    TREE.lock().expect("span tree poisoned").clear();
}

/// Render the aggregate in collapsed-stack ("folded") format: one
/// `path self_us` line per node, the input format of inferno /
/// speedscope / flamegraph.pl. Values are self-time in microseconds.
#[must_use]
pub fn render_folded() -> String {
    render_folded_from(&snapshot())
}

/// [`render_folded`] over an explicit node list (e.g. one loaded from a
/// `BENCH_*.json` report rather than the live process).
#[must_use]
pub fn render_folded_from(nodes: &[SpanNode]) -> String {
    let mut out = String::new();
    for n in nodes {
        let _ = writeln!(out, "{} {}", n.path, n.self_us);
    }
    out
}

/// Render the aggregate as an indented human-readable tree with
/// count / total / self columns.
#[must_use]
pub fn render_tree() -> String {
    render_tree_from(&snapshot())
}

/// [`render_tree`] over an explicit (path-sorted) node list.
#[must_use]
pub fn render_tree_from(nodes: &[SpanNode]) -> String {
    if nodes.is_empty() {
        return "(no spans recorded)\n".to_string();
    }
    let name_w = nodes
        .iter()
        .map(|n| 2 * n.depth() + n.name().len())
        .max()
        .unwrap_or(4)
        .max(4);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<name_w$}  {:>8}  {:>12}  {:>12}",
        "span", "count", "total_us", "self_us"
    );
    for n in nodes {
        let label = format!("{}{}", "  ".repeat(n.depth()), n.name());
        let _ = writeln!(
            out,
            "{label:<name_w$}  {:>8}  {:>12}  {:>12}",
            n.count, n.total_us, n.self_us
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The tree aggregate is process-global; tests share it. Each test
    // uses uniquely named spans and filters its own paths out of the
    // snapshot, so they stay independent of ordering and of other
    // modules' spans.
    fn nodes_with_prefix(prefix: &str) -> Vec<SpanNode> {
        snapshot()
            .into_iter()
            .filter(|n| n.path.starts_with(prefix))
            .collect()
    }

    #[test]
    #[cfg(not(feature = "noop"))]
    fn nesting_builds_paths_and_ids() {
        let outer = crate::span("tree_nest_outer");
        assert_eq!(outer.parent_id(), 0);
        let inner = crate::span("tree_nest_inner");
        assert_eq!(inner.parent_id(), outer.span_id());
        assert!(inner.span_id() > outer.span_id());
        drop(inner);
        drop(outer);
        let nodes = nodes_with_prefix("tree_nest_outer");
        let paths: Vec<&str> = nodes.iter().map(|n| n.path.as_str()).collect();
        assert!(paths.contains(&"tree_nest_outer"), "{paths:?}");
        assert!(
            paths.contains(&"tree_nest_outer;tree_nest_inner"),
            "{paths:?}"
        );
    }

    #[test]
    #[cfg(not(feature = "noop"))]
    fn self_time_excludes_children() {
        {
            let _outer = crate::span("tree_self_outer");
            std::thread::sleep(std::time::Duration::from_millis(4));
            {
                let _inner = crate::span("tree_self_inner");
                std::thread::sleep(std::time::Duration::from_millis(8));
            }
        }
        let nodes = nodes_with_prefix("tree_self_outer");
        let outer = nodes.iter().find(|n| n.path == "tree_self_outer").unwrap();
        let inner = nodes
            .iter()
            .find(|n| n.path == "tree_self_outer;tree_self_inner")
            .unwrap();
        assert!(inner.total_us >= 7_000, "inner {}", inner.total_us);
        assert_eq!(inner.total_us, inner.self_us, "leaf self == total");
        assert!(outer.total_us >= inner.total_us + 3_000);
        // Outer self-time must not include the inner 8 ms.
        assert!(
            outer.self_us < outer.total_us,
            "outer self {} < total {}",
            outer.self_us,
            outer.total_us
        );
        assert!(outer.self_us >= 3_000, "outer self {}", outer.self_us);
        assert!(
            outer.self_us <= outer.total_us - inner.total_us,
            "child time not excluded: self={} total={} child={}",
            outer.self_us,
            outer.total_us,
            inner.total_us
        );
    }

    #[test]
    #[cfg(not(feature = "noop"))]
    fn repeated_spans_aggregate_counts() {
        for _ in 0..5 {
            let _g = crate::span("tree_repeat");
        }
        let nodes = nodes_with_prefix("tree_repeat");
        assert_eq!(nodes.len(), 1);
        assert!(nodes[0].count >= 5);
    }

    #[test]
    #[cfg(not(feature = "noop"))]
    fn threads_have_independent_stacks() {
        let _outer = crate::span("tree_thread_main");
        std::thread::scope(|s| {
            s.spawn(|| {
                let g = crate::span("tree_thread_child");
                // A fresh thread has no parent frame: the span is a root.
                assert_eq!(g.parent_id(), 0);
            });
        });
        let nodes = nodes_with_prefix("tree_thread_child");
        assert_eq!(nodes.len(), 1, "other thread's span is its own root");
        assert_eq!(nodes[0].depth(), 0);
    }

    #[test]
    #[cfg(not(feature = "noop"))]
    fn out_of_order_drop_does_not_corrupt_the_stack() {
        let before = current_depth();
        let a = crate::span("tree_ooo_a");
        let b = crate::span("tree_ooo_b");
        drop(a); // non-LIFO
        drop(b);
        assert_eq!(current_depth(), before);
        let nodes = nodes_with_prefix("tree_ooo_a");
        assert!(nodes.iter().any(|n| n.path == "tree_ooo_a"));
    }

    #[test]
    #[cfg(not(feature = "noop"))]
    fn folded_output_is_path_space_value() {
        {
            let _o = crate::span("tree_folded_outer");
            let _i = crate::span("tree_folded_inner");
        }
        let folded = render_folded();
        let line = folded
            .lines()
            .find(|l| l.starts_with("tree_folded_outer;tree_folded_inner "))
            .expect("folded line present");
        let mut parts = line.rsplitn(2, ' ');
        let value = parts.next().unwrap();
        assert!(value.parse::<u64>().is_ok(), "value not numeric: {line}");
    }

    #[test]
    fn render_tree_handles_empty() {
        assert!(render_tree_from(&[]).contains("no spans"));
    }

    #[test]
    fn span_node_name_and_depth() {
        let n = SpanNode {
            path: "a;b;c".into(),
            count: 1,
            total_us: 10,
            self_us: 5,
        };
        assert_eq!(n.name(), "c");
        assert_eq!(n.depth(), 2);
        let root = SpanNode {
            path: "root".into(),
            count: 1,
            total_us: 1,
            self_us: 1,
        };
        assert_eq!(root.name(), "root");
        assert_eq!(root.depth(), 0);
    }

    #[test]
    #[cfg(feature = "noop")]
    fn noop_records_nothing() {
        {
            let _g = crate::span("tree_noop_probe");
        }
        assert!(nodes_with_prefix("tree_noop_probe").is_empty());
        assert_eq!(current_depth(), 0);
    }
}
