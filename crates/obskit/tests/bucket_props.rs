//! Property tests for the log₂ histogram bucket mapping (in-tree
//! proptest shim): the bucket function must be monotone, invertible to
//! within one bucket, and total over all of `u64` with no overflow.

use obskit::Histogram;
use proptest::prelude::*;

/// Strategy: u64 values spread across every magnitude, not just the
/// uniform-random high end — mix a uniform draw with a draw of
/// `2^k ± {1, 0}` edge values.
fn magnitude_spread() -> impl Strategy<Value = u64> {
    (any::<u64>(), 0u32..64u32, 0u8..=4u8).prop_map(|(raw, shift, tweak)| match tweak {
        0 => raw,
        1 => 1u64 << shift,
        2 => (1u64 << shift).saturating_sub(1),
        3 => (1u64 << shift).saturating_add(1),
        _ => raw >> shift,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    // bucket(v) is monotone non-decreasing in v.
    #[test]
    fn bucket_is_monotone(pair in (magnitude_spread(), magnitude_spread())) {
        let (a, b) = pair;
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(
            Histogram::bucket_index(lo) <= Histogram::bucket_index(hi),
            "bucket({lo}) > bucket({hi})"
        );
    }

    // bucket_bounds inverts bucket_index to within one bucket:
    // every value lies inside the half-open range of its own bucket.
    #[test]
    fn bounds_invert_index(v in magnitude_spread()) {
        let i = Histogram::bucket_index(v);
        let (lo, hi) = Histogram::bucket_bounds(i);
        prop_assert!(lo <= v, "v {v} below bucket {i} lower bound {lo}");
        if hi != u64::MAX {
            prop_assert!(v < hi, "v {v} at/above bucket {i} upper bound {hi}");
        } else {
            prop_assert!(v <= hi, "v {v} above saturated top bound");
        }
    }

    // The mapping is total: every u64 (including u64::MAX) lands in a
    // valid bucket index without panicking or overflowing.
    #[test]
    fn mapping_is_total(v in magnitude_spread()) {
        let i = Histogram::bucket_index(v);
        prop_assert!(i < 64, "bucket index {i} out of range for {v}");
        // bounds are computable for every index the mapping can emit.
        let (lo, hi) = Histogram::bucket_bounds(i);
        prop_assert!(lo < hi || (lo == hi && hi == u64::MAX));
    }
}

#[test]
fn extremes_are_exact() {
    // Pin the edges the strategies might only sample probabilistically.
    assert_eq!(Histogram::bucket_index(0), 0);
    assert_eq!(Histogram::bucket_index(1), 0);
    assert_eq!(Histogram::bucket_index(u64::MAX), 63);
    assert_eq!(Histogram::bucket_index(u64::MAX - 1), 63);
    assert_eq!(Histogram::bucket_index(1u64 << 63), 63);
    assert_eq!(Histogram::bucket_index((1u64 << 63) - 1), 62);
    let (lo, hi) = Histogram::bucket_bounds(63);
    assert_eq!(lo, 1u64 << 63);
    assert_eq!(hi, u64::MAX);
}
