//! Prometheus text-format conformance of the live global registry.
//!
//! These tests register deliberately hostile metrics (label values with
//! backslashes, quotes, newlines; every metric kind; interleaved
//! registration order) and hold `render_prometheus` to the exposition
//! format rules a real scraper enforces: valid names, escaped label
//! values, one HELP/TYPE per name, contiguous name groups, and a full
//! round-trip through the crate's own strict parser.

use obskit::{parse_exposition, valid_label_name, valid_metric_name};

/// Every name and label in the default exposition must satisfy the
/// Prometheus grammar, whatever the rest of the workspace registered
/// before this test ran (tests share the global registry).
#[test]
fn live_exposition_round_trips_through_the_strict_parser() {
    // Populate with one of each kind plus labels, on top of whatever is
    // already registered.
    obskit::counter("conformance_events_total").add(3);
    obskit::gauge("conformance_depth").set(-7);
    obskit::histogram("conformance_latency_us").record(1234);
    obskit::counter_labeled(
        "conformance_events_total",
        &[("method", "systematic"), ("k", "50")],
    )
    .inc();

    let text = obskit::global().render_prometheus();
    let samples = parse_exposition(&text)
        .unwrap_or_else(|(line, msg)| panic!("line {line}: {msg}\n---\n{text}"));
    assert!(!samples.is_empty());
    for s in &samples {
        assert!(valid_metric_name(&s.name), "bad metric name {:?}", s.name);
        for (k, _) in &s.labels {
            assert!(valid_label_name(k), "bad label name {k:?} on {:?}", s.name);
        }
    }
    // The hostile registrations surfaced with their values.
    let find = |name: &str, labels: &[(&str, &str)]| {
        samples
            .iter()
            .find(|s| {
                s.name == name
                    && labels
                        .iter()
                        .all(|(k, v)| s.labels.iter().any(|(lk, lv)| lk == k && lv == v))
            })
            .unwrap_or_else(|| panic!("missing {name} {labels:?}"))
    };
    // Under the `noop` feature the metrics register but never record,
    // so only the structural assertions apply there.
    if obskit::recording_enabled() {
        assert!(find("conformance_events_total", &[]).value >= 3.0);
        assert_eq!(find("conformance_depth", &[]).value, -7.0);
    }
    find(
        "conformance_events_total",
        &[("method", "systematic"), ("k", "50")],
    );
    // Histograms expose the canonical suffix triple with +Inf closing.
    find("conformance_latency_us_bucket", &[("le", "+Inf")]);
    find("conformance_latency_us_sum", &[]);
    find("conformance_latency_us_count", &[]);
}

/// Label values containing every escape-worthy character must survive a
/// render → parse round trip byte-for-byte.
#[test]
fn hostile_label_values_round_trip() {
    let hostile = "a\\b\"c\nd,e{f}g";
    obskit::counter_labeled("conformance_hostile_total", &[("path", hostile)]).inc();

    let text = obskit::global().render_prometheus();
    // The raw newline must never appear inside the rendered line.
    for line in text.lines() {
        if line.contains("conformance_hostile_total") && !line.starts_with('#') {
            assert!(line.contains("\\n"), "newline not escaped: {line}");
            assert!(line.contains("\\\\"), "backslash not escaped: {line}");
            assert!(line.contains("\\\""), "quote not escaped: {line}");
        }
    }
    let samples = parse_exposition(&text).expect("hostile exposition must stay parseable");
    let got = samples
        .iter()
        .find(|s| s.name == "conformance_hostile_total")
        .expect("hostile counter in exposition");
    assert_eq!(got.labels, vec![("path".to_string(), hostile.to_string())]);
}

/// Name groups stay contiguous and TYPE lines unique even when
/// registration interleaves a name, a labeled variant, and a longer
/// name that sorts between them in raw key order (`'_'` > `'{'` is the
/// classic trap).
#[test]
fn interleaved_registration_keeps_type_lines_unique() {
    obskit::counter("conformance_ab").inc();
    obskit::counter("conformance_ab_c").inc();
    obskit::counter_labeled("conformance_ab", &[("x", "1")]).inc();

    let text = obskit::global().render_prometheus();
    let type_lines: Vec<&str> = text
        .lines()
        .filter(|l| l.starts_with("# TYPE conformance_ab"))
        .collect();
    let mut seen = std::collections::BTreeSet::new();
    for l in &type_lines {
        assert!(seen.insert(*l), "duplicate TYPE line: {l}");
    }
    // The parser enforces contiguity; a split group fails here.
    parse_exposition(&text).expect("interleaved names must stay grouped");
}

/// HELP text registered via `describe` renders once, before the TYPE
/// line, with its own escaping rules (no label-style quote escaping).
#[test]
fn help_lines_precede_type_and_render_once() {
    obskit::counter("conformance_described_total").inc();
    obskit::global().describe(
        "conformance_described_total",
        "events seen\nsecond line \\ backslash",
    );

    let text = obskit::global().render_prometheus();
    let lines: Vec<&str> = text.lines().collect();
    let help_at = lines
        .iter()
        .position(|l| l.starts_with("# HELP conformance_described_total"))
        .expect("HELP line");
    let type_at = lines
        .iter()
        .position(|l| l.starts_with("# TYPE conformance_described_total"))
        .expect("TYPE line");
    assert!(help_at < type_at, "HELP must precede TYPE");
    assert_eq!(
        lines[help_at],
        "# HELP conformance_described_total events seen\\nsecond line \\\\ backslash"
    );
    assert_eq!(
        lines
            .iter()
            .filter(|l| l.starts_with("# HELP conformance_described_total"))
            .count(),
        1
    );
}
