//! End-to-end exercise of the telemetry scrape server over real
//! sockets: live `/metrics` scrapes between counter increments,
//! `/healthz` staleness flips, `/snapshot` JSONL, error statuses for
//! malformed requests, the slowloris read timeout, and graceful
//! shutdown.
//!
//! All tests share one process-global registry and ingest watermark, so
//! each starts its own server but only `healthz_flips_stale_when_ingest
//! _stops` touches the watermark — keep it that way.

use obskit::{parse_exposition, serve, ServeConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One blocking HTTP/1.0 exchange; returns (status code, full response
/// text).
fn get(addr: std::net::SocketAddr, request: &[u8]) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    conn.write_all(request).expect("send request");
    let mut response = Vec::new();
    conn.read_to_end(&mut response).expect("read response");
    let text = String::from_utf8_lossy(&response).into_owned();
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable status line in {text:?}"));
    (status, text)
}

fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or("")
}

#[test]
fn metrics_scrape_sees_live_counter_movement() {
    let handle = serve(&ServeConfig::default()).expect("bind ephemeral port");
    let addr = handle.addr();
    let c = obskit::counter("serve_e2e_events_total");
    c.add(5);

    let (status, first) = get(addr, b"GET /metrics HTTP/1.0\r\n\r\n");
    assert_eq!(status, 200, "{first}");
    assert!(
        first.contains("Content-Type: text/plain; version=0.0.4; charset=utf-8"),
        "{first}"
    );
    let samples = parse_exposition(body_of(&first)).expect("scrape must parse strictly");
    let value_of = |text: &str| {
        parse_exposition(body_of(text))
            .unwrap()
            .into_iter()
            .find(|s| s.name == "serve_e2e_events_total")
            .expect("counter in exposition")
            .value
    };
    assert!(!samples.is_empty());
    let v1 = value_of(&first);
    // Under the `noop` feature adds never record; the scrape contract
    // (registration visible, live re-read) still holds with delta 0.
    let delta = if obskit::recording_enabled() {
        2.0
    } else {
        0.0
    };
    if obskit::recording_enabled() {
        assert!(v1 >= 5.0, "{v1}");
    }

    // The second scrape reads the *live* registry, not a snapshot taken
    // at server start.
    c.add(2);
    let (_, second) = get(addr, b"GET /metrics HTTP/1.0\r\n\r\n");
    assert_eq!(value_of(&second), v1 + delta);
    handle.shutdown();
}

#[test]
fn healthz_flips_stale_when_ingest_stops() {
    let cfg = ServeConfig {
        stale_after: Duration::from_millis(80),
        ..ServeConfig::default()
    };
    let handle = serve(&cfg).expect("bind");
    let addr = handle.addr();

    obskit::telemetry::touch_ingest();
    let (status, ok) = get(addr, b"GET /healthz HTTP/1.0\r\n\r\n");
    assert_eq!(status, 200, "{ok}");
    assert!(ok.contains("\"status\":\"ok\""), "{ok}");
    assert!(ok.contains("Content-Type: application/json"), "{ok}");
    assert!(ok.contains("\"last_ingest_us\":"), "{ok}");

    // Stop ingesting; once the watermark ages past stale_after the
    // endpoint must answer 503 stale.
    std::thread::sleep(Duration::from_millis(200));
    let (status, stale) = get(addr, b"GET /healthz HTTP/1.0\r\n\r\n");
    assert_eq!(status, 503, "{stale}");
    assert!(stale.contains("\"status\":\"stale\""), "{stale}");

    // Ingest resuming flips it back without restarting the server.
    obskit::telemetry::touch_ingest();
    let (status, back) = get(addr, b"GET /healthz HTTP/1.0\r\n\r\n");
    assert_eq!(status, 200, "{back}");
    handle.shutdown();
}

#[test]
fn snapshot_returns_sorted_jsonl() {
    let handle = serve(&ServeConfig::default()).expect("bind");
    obskit::counter("serve_e2e_snapshot_total").inc();
    let (status, response) = get(handle.addr(), b"GET /snapshot HTTP/1.0\r\n\r\n");
    assert_eq!(status, 200, "{response}");
    assert!(
        response.contains("Content-Type: application/x-ndjson"),
        "{response}"
    );
    let body = body_of(&response);
    assert!(!body.is_empty());
    let mut names = Vec::new();
    for line in body.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not a JSON object line: {line}"
        );
        let name = line
            .split("\"name\":\"")
            .nth(1)
            .and_then(|r| r.split('"').next())
            .unwrap_or_else(|| panic!("no name field in {line}"));
        names.push(name.to_string());
    }
    assert!(names.iter().any(|n| n == "serve_e2e_snapshot_total"));
    let mut sorted = names.clone();
    sorted.sort();
    assert_eq!(names, sorted, "snapshot lines must be name-sorted");
    handle.shutdown();
}

#[test]
fn malformed_requests_get_typed_errors_and_server_survives() {
    let handle = serve(&ServeConfig::default()).expect("bind");
    let addr = handle.addr();

    let (status, r) = get(addr, b"POST /metrics HTTP/1.0\r\n\r\n");
    assert_eq!(status, 405, "{r}");
    let (status, r) = get(addr, b"GET /nope HTTP/1.0\r\n\r\n");
    assert_eq!(status, 404, "{r}");
    let (status, r) = get(addr, b"GET /metrics SPDY/9\r\n\r\n");
    assert_eq!(status, 400, "{r}");
    let (status, r) = get(addr, b"\xff\xfe\xfd garbage \xff\r\n");
    assert_eq!(status, 400, "{r}");
    let mut oversized = b"GET /".to_vec();
    oversized.resize(9_000, b'a');
    oversized.extend_from_slice(b" HTTP/1.0\r\n");
    let (status, r) = get(addr, &oversized);
    assert_eq!(status, 400, "{r}");

    // After all that abuse a normal scrape still works.
    let (status, r) = get(addr, b"GET /metrics HTTP/1.0\r\n\r\n");
    assert_eq!(status, 200, "{r}");
    handle.shutdown();
}

#[test]
fn slowloris_connection_times_out_without_wedging_the_server() {
    let cfg = ServeConfig {
        read_timeout: Duration::from_millis(100),
        ..ServeConfig::default()
    };
    let handle = serve(&cfg).expect("bind");
    let addr = handle.addr();

    // Open a connection and send nothing: the handler must give up
    // after read_timeout (408 or a plain close both prove it).
    let mut idle = TcpStream::connect(addr).expect("connect");
    idle.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut leftover = Vec::new();
    let _ = idle.read_to_end(&mut leftover);
    let text = String::from_utf8_lossy(&leftover);
    assert!(
        leftover.is_empty() || text.contains("408"),
        "unexpected slowloris response: {text:?}"
    );

    // The stalled peer consumed one handler slot for 100ms, not forever.
    let (status, r) = get(addr, b"GET /metrics HTTP/1.0\r\n\r\n");
    assert_eq!(status, 200, "{r}");
    handle.shutdown();
}

#[test]
fn shutdown_stops_accepting() {
    let handle = serve(&ServeConfig::default()).expect("bind");
    let addr = handle.addr();
    let (status, _) = get(addr, b"GET /healthz HTTP/1.0\r\n\r\n");
    assert!(status == 200 || status == 503);
    handle.shutdown();
    // The listener is gone: connects must fail (or be reset before a
    // response arrives if the OS briefly keeps the backlog).
    match TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
        Err(_) => {}
        Ok(mut conn) => {
            conn.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
            let _ = conn.write_all(b"GET /healthz HTTP/1.0\r\n\r\n");
            let mut out = Vec::new();
            let n = conn.read_to_end(&mut out).unwrap_or(0);
            assert_eq!(n, 0, "server answered after shutdown: {out:?}");
        }
    }
}
