//! The trace sink must not lose buffered events on a panicking exit
//! path: a [`obskit::trace::FlushGuard`] dropped during unwinding has to
//! flush everything written so far.
//!
//! This lives in its own integration-test binary because the trace sink
//! is process-global (installable once); sharing a process with other
//! sink-installing tests would make it order-dependent.

use obskit::trace::{self, TraceEvent};
use std::io::BufWriter;
use std::panic::{catch_unwind, AssertUnwindSafe};

#[test]
fn events_survive_a_panic_when_guarded() {
    let path =
        std::env::temp_dir().join(format!("obskit_flush_guard_{}.jsonl", std::process::id()));
    let file = std::fs::File::create(&path).unwrap();
    // A deliberately large buffer: without an explicit flush nothing
    // this test writes would reach the file.
    assert!(trace::enable_writer(Box::new(BufWriter::with_capacity(
        1 << 20,
        file
    ))));

    let result = catch_unwind(AssertUnwindSafe(|| {
        let _guard = trace::flush_on_drop();
        trace::emit(&TraceEvent::now("span", "before_panic").with_duration(7));
        {
            // A span open at panic time: its drop also runs during
            // unwinding and must be emitted and flushed too.
            let _span = obskit::span("panicking_section");
            panic!("simulated failure mid-run");
        }
    }));
    assert!(result.is_err(), "the closure must have panicked");

    let body = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = body.lines().collect();
    assert!(
        lines.iter().any(|l| l.contains("before_panic")),
        "pre-panic event lost: {body:?}"
    );
    if obskit::recording_enabled() {
        assert!(
            lines.iter().any(|l| l.contains("panicking_section")),
            "span open at panic time lost: {body:?}"
        );
    }
    // Every line is complete, parseable JSON — no torn writes.
    for line in &lines {
        assert!(
            TraceEvent::parse_line(line).is_some(),
            "incomplete trace line: {line}"
        );
    }
    std::fs::remove_file(&path).ok();
}
