//! Socket-level conformance for the `/series` and `/alerts` endpoints:
//! 503 before the store exists, strict query handling (200 JSON, 400
//! typed errors), NaN-as-null rendering, name/since/step selection,
//! and alert JSONL state flipping over real TCP.
//!
//! The series store and rule engine are process-global and tests run
//! concurrently, so the whole sequence lives in ONE test function —
//! the "store not yet installed" assertion is only meaningful before
//! `ensure_global_series` has run anywhere in the process.

use obskit::{serve, SeriesConfig, ServeConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One blocking HTTP/1.0 exchange; returns (status code, full response
/// text).
fn get(addr: std::net::SocketAddr, request: &[u8]) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    conn.write_all(request).expect("send request");
    let mut response = Vec::new();
    conn.read_to_end(&mut response).expect("read response");
    let text = String::from_utf8_lossy(&response).into_owned();
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable status line in {text:?}"));
    (status, text)
}

fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or("")
}

#[test]
fn series_and_alerts_conform_over_real_sockets() {
    let handle = serve(&ServeConfig::default()).expect("bind ephemeral port");
    let addr = handle.addr();

    // Phase 1: no store installed yet — the endpoint must refuse
    // loudly, not answer an empty document.
    let (status, r) = get(addr, b"GET /series HTTP/1.0\r\n\r\n");
    assert_eq!(status, 503, "{r}");
    assert!(r.contains("series store not running"), "{r}");

    // Phase 2: install the store and hand-feed deterministic history
    // (no background sampler in this test binary — pushes are exact).
    let store = obskit::series::ensure_global_series(SeriesConfig::default());
    for i in 0..10u64 {
        store.push("serve_e2e_series_kb", 1_000 + i * 100, (i * 2) as f64);
    }
    store.push("serve_e2e_holes", 1_000, f64::NAN);

    let (status, r) = get(addr, b"GET /series HTTP/1.0\r\n\r\n");
    assert_eq!(status, 200, "{r}");
    assert!(r.contains("Content-Type: application/json"), "{r}");
    let body = body_of(&r);
    assert!(body.contains("\"now_us\":"), "{body}");
    assert!(body.contains("\"interval_us\":"), "{body}");
    assert!(body.contains("\"key\":\"serve_e2e_series_kb\""), "{body}");
    assert!(body.contains("[1000,0]"), "{body}");
    assert!(body.contains("[1900,18]"), "{body}");
    // Non-finite points render as JSON null, never a bare NaN token.
    assert!(body.contains("null"), "{body}");
    assert!(!body.contains("NaN"), "{body}");

    // Phase 3: name/since/step narrow the selection server-side.
    let (status, r) = get(
        addr,
        b"GET /series?name=serve_e2e_series_kb&since=1300&step=2 HTTP/1.0\r\n\r\n",
    );
    assert_eq!(status, 200, "{r}");
    let body = body_of(&r);
    assert!(!body.contains("serve_e2e_holes"), "{body}");
    // since=1300 keeps ts 1300..=1900; step=2 keeps every other point.
    for kept in ["[1300,6]", "[1500,10]", "[1700,14]", "[1900,18]"] {
        assert!(body.contains(kept), "missing {kept} in {body}");
    }
    for dropped in ["[1000,", "[1200,", "[1400,", "[1600,", "[1800,"] {
        assert!(!body.contains(dropped), "unexpected {dropped} in {body}");
    }

    // A percent-escaped name (labels carry quotes) decodes strictly.
    let (status, r) = get(
        addr,
        b"GET /series?name=serve_e2e_series_kb&step=1000000 HTTP/1.0\r\n\r\n",
    );
    assert_eq!(status, 200, "{r}");
    assert!(
        body_of(&r).contains("\"points\":[[1000,0]]"),
        "max step keeps only the first point: {r}"
    );

    // Phase 4: malformed queries get typed 400s, and the server
    // survives every one of them.
    for (bad, want) in [
        (
            &b"GET /series?bogus=1 HTTP/1.0\r\n\r\n"[..],
            "unknown query key",
        ),
        (b"GET /series?step=0 HTTP/1.0\r\n\r\n", "step must be"),
        (b"GET /series?step=2&step=3 HTTP/1.0\r\n\r\n", "duplicate"),
        (b"GET /series?name=%zz HTTP/1.0\r\n\r\n", "%XX"),
        (b"GET /series?since=soon HTTP/1.0\r\n\r\n", "since must be"),
        (b"GET /series?&& HTTP/1.0\r\n\r\n", "empty query"),
    ] {
        let (status, r) = get(addr, bad);
        assert_eq!(status, 400, "{r}");
        assert!(r.contains(want), "want {want:?} in {r}");
    }

    // Phase 5: /alerts with no rules is an empty (but well-typed) feed.
    let (status, r) = get(addr, b"GET /alerts HTTP/1.0\r\n\r\n");
    assert_eq!(status, 200, "{r}");
    assert!(r.contains("Content-Type: application/x-ndjson"), "{r}");

    // Phase 6: install a rule over the hand-fed series and evaluate two
    // ticks — value 18 > 10 with `for 2` must flip it to firing, and
    // the feed must say so in one JSON object per line.
    let rules = obskit::parse_rules(
        "rule serve_e2e_hot value(serve_e2e_series_kb) > 10 for 2\n\
         rule serve_e2e_cold value(serve_e2e_series_kb) > 1000000\n",
    )
    .expect("valid grammar");
    obskit::rules::global_engine()
        .add_rules(rules)
        .expect("fresh names");
    obskit::rules::global_engine().evaluate(store, 2_000);
    obskit::rules::global_engine().evaluate(store, 2_200);

    let (status, r) = get(addr, b"GET /alerts HTTP/1.0\r\n\r\n");
    assert_eq!(status, 200, "{r}");
    let body = body_of(&r);
    let hot = body
        .lines()
        .find(|l| l.contains("\"rule\":\"serve_e2e_hot\""))
        .unwrap_or_else(|| panic!("no serve_e2e_hot line in {body}"));
    assert!(hot.contains("\"state\":\"firing\""), "{hot}");
    assert!(hot.contains("\"value\":18"), "{hot}");
    assert!(
        hot.contains("\"expr\":\"value(serve_e2e_series_kb) > 10\""),
        "{hot}"
    );
    let cold = body
        .lines()
        .find(|l| l.contains("\"rule\":\"serve_e2e_cold\""))
        .unwrap_or_else(|| panic!("no serve_e2e_cold line in {body}"));
    assert!(cold.contains("\"state\":\"ok\""), "{cold}");
    for line in body.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not a JSON object line: {line}"
        );
    }

    // After all that, a plain scrape still works: the new routes did
    // not destabilize the server.
    let (status, r) = get(addr, b"GET /metrics HTTP/1.0\r\n\r\n");
    assert_eq!(status, 200, "{r}");
    handle.shutdown();
}
