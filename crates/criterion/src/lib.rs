//! In-tree micro-benchmark harness.
//!
//! A *workspace-local stand-in* for the crates.io `criterion` crate
//! (the CI environment cannot reach a registry), exposing the API
//! subset the workspace's benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] with [`BenchmarkGroup::throughput`] /
//! [`BenchmarkGroup::sample_size`] / [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Throughput`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Methodology (simpler than real criterion, honest about what it is):
//! each benchmark is calibrated so one timing batch runs ≥ ~5 ms, then
//! `sample_size` batches are timed and the **median** per-iteration time
//! is reported, along with min/max and optional throughput. There is no
//! statistical regression analysis and no plotting. Results go to
//! stdout, one line per benchmark.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark: how much work one iteration
/// represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// One iteration processes this many logical elements.
    Elements(u64),
    /// One iteration processes this many bytes.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new<N: std::fmt::Display, P: std::fmt::Display>(name: N, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter (the group name provides the context).
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// The timing loop handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Median ns/iter of the last `iter` call, for the caller to report.
    result: Option<Estimate>,
}

/// A condensed timing estimate.
#[derive(Debug, Clone, Copy)]
struct Estimate {
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
}

impl Bencher {
    /// Time `f`, storing an estimate of its per-call cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate the batch size so one batch takes >= ~5 ms (or the
        // routine is so slow a single call exceeds it).
        let mut batch: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(5) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..batch {
                    black_box(f());
                }
                t.elapsed().as_nanos() as f64 / batch as f64
            })
            .collect();
        per_iter.sort_by(f64::total_cmp);
        self.result = Some(Estimate {
            median_ns: per_iter[per_iter.len() / 2],
            min_ns: per_iter[0],
            max_ns: per_iter[per_iter.len() - 1],
        });
    }
}

fn human_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn report(label: &str, est: Estimate, throughput: Option<Throughput>) {
    // Record the median where perfkit can find it: a BENCH_<n>.json
    // written after this run (see `finalize`) picks these up as its
    // `benches` section.
    obskit::gauge_labeled("criterion_median_ns", &[("bench", label)]).set(est.median_ns as i64);
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.1} Melem/s", n as f64 / est.median_ns * 1_000.0)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  {:>12.1} MiB/s",
                n as f64 / est.median_ns * 1e9 / (1 << 20) as f64
            )
        }
        None => String::new(),
    };
    println!(
        "{label:<44} {:>12}  [{} .. {}]{rate}",
        human_ns(est.median_ns),
        human_ns(est.min_ns),
        human_ns(est.max_ns),
    );
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        samples,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some(est) => report(label, est, throughput),
        None => println!("{label:<44} (no measurement: closure never called iter)"),
    }
}

/// The benchmark driver; one per bench binary.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

const DEFAULT_SAMPLES: usize = 15;

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, DEFAULT_SAMPLES, None, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            throughput: None,
            samples: DEFAULT_SAMPLES,
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.clamp(5, 1_000);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.samples, self.throughput, |b| f(b, input));
        self
    }

    /// Run one benchmark without an input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.samples, self.throughput, f);
        self
    }

    /// Finish the group (a no-op here; results print as they complete).
    pub fn finish(&mut self) {}
}

/// Bundle benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $function(&mut c); )+
        }
    };
}

/// Post-run hook: when `NETSAMPLE_BENCH_DIR` names a directory, write
/// the run's metrics (criterion medians, span tree, duration
/// histograms) as the next `BENCH_<n>.json` there and diff it against
/// the newest prior report. A no-op otherwise, so plain `cargo bench`
/// output is unchanged.
pub fn finalize() {
    let Ok(dir) = std::env::var("NETSAMPLE_BENCH_DIR") else {
        return;
    };
    let dir = std::path::PathBuf::from(dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("criterion: cannot create bench dir {}: {e}", dir.display());
        return;
    }
    let ts_us = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0);
    let mut report = perfkit::BenchReport::collect(
        perfkit::RunMeta {
            ts_us,
            source: "criterion".to_string(),
            seed: 0,
            packets: 0,
            // Bench iterations are single-threaded by construction.
            jobs: 1,
        },
        Vec::new(),
    );
    match report.write_next(&dir) {
        Ok(path) => {
            println!("\nbench report written: {}", path.display());
            if let Some((base, _)) = perfkit::baseline_before(&dir, report.bench_version) {
                match perfkit::BenchReport::load(&base) {
                    Ok(old) => {
                        print!(
                            "{}",
                            perfkit::diff(&old, &report, perfkit::DEFAULT_THRESHOLD).render()
                        );
                    }
                    Err(e) => eprintln!("criterion: cannot load baseline: {e}"),
                }
            }
        }
        Err(e) => eprintln!("criterion: bench report failed: {e}"),
    }
}

/// Entry point: run the named groups, then [`finalize`].
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            samples: 5,
            result: None,
        };
        b.iter(|| black_box(3u64).wrapping_mul(7));
        let est = b.result.expect("estimate recorded");
        assert!(est.median_ns > 0.0);
        assert!(est.min_ns <= est.median_ns && est.median_ns <= est.max_ns);
    }

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("systematic", 50).label, "systematic/50");
        assert_eq!(BenchmarkId::from_parameter("t1").label, "t1");
    }

    #[test]
    fn human_units_scale() {
        assert!(human_ns(12.3).ends_with("ns"));
        assert!(human_ns(12_300.0).ends_with("us"));
        assert!(human_ns(12_300_000.0).ends_with("ms"));
    }
}
