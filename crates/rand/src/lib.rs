//! In-tree pseudo-random number generation.
//!
//! This crate is a *workspace-local stand-in* for the crates.io `rand`
//! crate: the CI environment has no network access to the registry, so
//! everything the workspace needs is hand-rolled here on `std` alone.
//! It exposes exactly the API surface the other crates use — the
//! [`Rng`] / [`RngExt`] / [`SeedableRng`] traits and [`rngs::StdRng`] —
//! with the same calling conventions, so `use rand::...` lines work
//! unchanged.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ (Blackman &
//! Vigna), seeded through SplitMix64. It is *not* cryptographically
//! secure, which is fine: the workspace uses randomness only for
//! reproducible Monte-Carlo experiments, where statistical quality and
//! determinism under a fixed seed are what matter.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words. The base trait every generator
/// implements; everything else is derived from [`Rng::next_u64`].
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Values that can be drawn uniformly from a generator's raw bits via
/// [`RngExt::random`].
pub trait Random: Sized {
    /// Draw one uniformly distributed value.
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Random for bool {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            #[allow(clippy::cast_lossless)]
            fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for u128 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

/// Ranges that [`RngExt::random_range`] can sample values of type `T`
/// from. Parameterized by the output type and implemented as blanket
/// impls over [`SampleUniform`] (like real `rand`), so unsuffixed range
/// literals unify with the expected result type during inference.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Types drawable uniformly from a `[lo, hi)` / `[lo, hi]` span.
pub trait SampleUniform: Sized {
    /// Draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`).
    ///
    /// # Panics
    /// Panics if the span is empty.
    fn sample_span<R: Rng + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_span(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_span(lo, hi, true, rng)
    }
}

/// Unbiased integer draw in `[0, bound)` by Lemire's multiply-shift
/// rejection method.
fn uniform_u64_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(bound);
        let low = m as u64;
        if low >= bound {
            return (m >> 64) as u64;
        }
        // Rejection zone: accept unless low falls in the biased region.
        let threshold = bound.wrapping_neg() % bound;
        if low >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_span<R: Rng + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                if inclusive {
                    assert!(lo <= hi, "cannot sample from empty range");
                    let width = (hi as i128 - lo as i128) as u128 + 1;
                    if width > u128::from(u64::MAX) {
                        // Full 64-bit span: every word is a valid draw.
                        return rng.next_u64() as $t;
                    }
                    let draw = uniform_u64_below(rng, width as u64);
                    (lo as i128 + draw as i128) as $t
                } else {
                    assert!(lo < hi, "cannot sample from empty range");
                    let width = (hi as i128 - lo as i128) as u64;
                    let draw = uniform_u64_below(rng, width);
                    (lo as i128 + draw as i128) as $t
                }
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_span<R: Rng + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                if inclusive {
                    assert!(lo <= hi, "cannot sample from empty range");
                } else {
                    assert!(lo < hi, "cannot sample from empty range");
                }
                let u = <$t as Random>::random_from(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Convenience sampling methods, available on every [`Rng`].
pub trait RngExt: Rng {
    /// One uniformly distributed value of type `T` (for floats, in
    /// `[0, 1)`).
    fn random<T: Random>(&mut self) -> T {
        T::random_from(self)
    }

    /// One value drawn uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 <= p <= 1`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Deterministic construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// The raw seed type (byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanded through SplitMix64 — the common
    /// path for reproducible experiments.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — used to expand small seeds into full generator state.
/// Public so callers can use it as a tiny standalone stream if needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Next word of the SplitMix64 sequence.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// 256 bits of state, period 2²⁵⁶ − 1, passes BigCrush; a few ns per
    /// draw. Not cryptographically secure (not needed here).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // All-zero state is the one fixed point of the xoshiro
            // transition; nudge it to a nonzero constant.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    /// Alias: the workspace has no separate small generator.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_under_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_half_open_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..100_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn unit_float_mean_is_half() {
        let mut r = StdRng::seed_from_u64(8);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.random::<f64>()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn integer_ranges_cover_uniformly() {
        let mut r = StdRng::seed_from_u64(9);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.random_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn inclusive_ranges_hit_both_endpoints() {
        let mut r = StdRng::seed_from_u64(10);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            match r.random_range(1..=2) {
                1 => lo_seen = true,
                2 => hi_seen = true,
                _ => unreachable!("out of range"),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x = r.random_range(-4.0..=4.0);
            assert!((-4.0..=4.0).contains(&x));
            let y = r.random_range(10.0..20.0);
            assert!((10.0..20.0).contains(&y));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(12);
        let hits = (0..100_000).filter(|_| r.random_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = StdRng::seed_from_u64(13);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(14);
        let _ = r.random_range(5usize..5);
    }

    #[test]
    fn works_through_unsized_references() {
        fn draw(rng: &mut dyn Rng) -> f64 {
            rng.random()
        }
        let mut r = StdRng::seed_from_u64(15);
        let x = draw(&mut r);
        assert!((0.0..1.0).contains(&x));
    }
}
