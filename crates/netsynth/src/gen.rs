//! Trace assembly: rate process × size mixture × gap placement → `Trace`.

use crate::apps::ZipfNets;
use crate::profile::TraceProfile;
use crate::rate::plan_seconds;
use crate::sizes::SizeModel;
use nettrace::{Micros, PacketRecord, Trace};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use statkit::rand_ext::poisson;

/// Generate a synthetic trace from a profile, deterministically under the
/// given seed.
///
/// Pipeline per second `t`:
/// 1. the rate process supplies an intensity `λ_t` and bulk weight `w_t`;
/// 2. the packet count is `N_t ~ Poisson(λ_t)`;
/// 3. `N_t + 1` exponential gaps (with rare pause stretches) are drawn and
///    normalized to fill the second, placing the `N_t` packets — a Poisson
///    process conditioned on its count, plus pause-induced clustering;
/// 4. each packet's application class is drawn from the size mixture at
///    `w_t`, fixing its size, protocol, ports, and network pair;
/// 5. final timestamps are quantized by the profile's capture clock.
///
/// ```
/// use netsynth::{generate, TraceProfile};
/// let trace = generate(&TraceProfile::short(5), 42);
/// // ~424 pps for 5 seconds, deterministic under the seed.
/// assert!(trace.len() > 1_000 && trace.len() < 4_000);
/// assert_eq!(trace, generate(&TraceProfile::short(5), 42));
/// ```
#[must_use]
pub fn generate(profile: &TraceProfile, seed: u64) -> Trace {
    let _span = obskit::span("netsynth_generate");
    profile.validate();
    let mut rng = StdRng::seed_from_u64(seed);
    let plans = plan_seconds(profile, &mut rng);
    let model = SizeModel::standard();
    let nets = ZipfNets::standard();

    let expected = (profile.mean_pps * f64::from(profile.duration_secs)) as usize;
    let mut packets: Vec<PacketRecord> = Vec::with_capacity(expected + expected / 8);
    let mut gaps: Vec<f64> = Vec::new();

    for (sec, plan) in plans.iter().enumerate() {
        let n = poisson(&mut rng, plan.intensity) as usize;
        if n == 0 {
            continue;
        }
        gaps.clear();
        gaps.reserve(n + 1);
        let mut total = 0.0;
        for _ in 0..=n {
            let mut g = -(1.0 - rng.random::<f64>()).ln();
            let u: f64 = rng.random();
            if u < profile.pause_prob {
                g *= profile.pause_scale;
            } else if u < profile.pause_prob + profile.cluster_prob {
                g *= profile.cluster_scale;
            }
            total += g;
            gaps.push(g);
        }
        let base = sec as u64 * 1_000_000;
        let mut cum = 0.0;
        for &g in gaps.iter().take(n) {
            cum += g;
            let frac = cum / total; // strictly in (0, 1): the trailing gap is positive
            let ts = Micros(base + (frac * 1e6) as u64);
            let class = model.sample_class(plan.bulk_weight, &mut rng);
            let size = class.sample_size(&mut rng);
            let (protocol, src_port, dst_port) = class.sample_app(&mut rng);
            let (src_net, dst_net) = nets.sample(&mut rng);
            packets.push(PacketRecord {
                timestamp: ts,
                size,
                protocol,
                src_port,
                dst_port,
                src_net,
                dst_net,
                flow_id: 0,
                flags: 0,
            });
        }
    }

    let trace = Trace::new(packets).expect("generator emits ordered timestamps");
    if obskit::recording_enabled() {
        obskit::counter("netsynth_packets_generated_total").add(trace.len() as u64);
    }
    trace.quantized(profile.clock)
}

/// The calibrated SDSC hour: `generate(TraceProfile::sdsc_1993(), seed)`.
#[must_use]
pub fn sdsc_hour(seed: u64) -> Trace {
    generate(&TraceProfile::sdsc_1993(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettrace::{ClockModel, PerSecondSeries};
    use statkit::Moments;

    fn minute_trace(seed: u64) -> Trace {
        generate(&TraceProfile::short(60), seed)
    }

    #[test]
    fn deterministic_under_seed() {
        let a = minute_trace(42);
        let b = minute_trace(42);
        assert_eq!(a, b);
        let c = minute_trace(43);
        assert_ne!(a, c);
    }

    #[test]
    fn packet_count_near_intensity_budget() {
        let t = minute_trace(1);
        let expected = 424.2 * 60.0;
        let ratio = t.len() as f64 / expected;
        assert!(
            (0.8..1.2).contains(&ratio),
            "count {} vs {}",
            t.len(),
            expected
        );
    }

    #[test]
    fn timestamps_are_ordered_and_quantized() {
        let t = minute_trace(2);
        let mut last = 0u64;
        for p in t.iter() {
            let ts = p.timestamp.as_u64();
            assert!(ts >= last);
            assert_eq!(ts % 400, 0, "timestamps must sit on the 400us grid");
            last = ts;
        }
        assert!(last < 60_000_000);
    }

    #[test]
    fn sizes_within_table3_bounds() {
        let t = minute_trace(3);
        for p in t.iter() {
            assert!((28..=1500).contains(&p.size), "size {}", p.size);
        }
    }

    #[test]
    fn per_second_rates_fluctuate() {
        let t = generate(&TraceProfile::short(300), 4);
        let s = PerSecondSeries::from_trace(&t);
        let m = Moments::from_values(s.packet_rates());
        assert!(
            m.std_dev() > 30.0,
            "per-second rates too smooth: {}",
            m.std_dev()
        );
        assert!(m.mean() > 300.0 && m.mean() < 550.0, "mean {}", m.mean());
    }

    #[test]
    fn interarrival_mean_tracks_rate() {
        let t = generate(&TraceProfile::short(300), 5);
        let ia = t.interarrivals();
        let m = Moments::from_values(ia.iter().map(|&x| x as f64));
        // mean interarrival ~ 1e6 / mean_pps = 2358us; allow wide band on
        // a 5-minute run.
        assert!((m.mean() - 2358.0).abs() < 250.0, "mean ia {}", m.mean());
        // Overdispersed relative to exponential.
        assert!(
            m.std_dev() / m.mean() > 1.0,
            "cv {}",
            m.std_dev() / m.mean()
        );
    }

    #[test]
    fn ideal_clock_profile_is_unquantized() {
        let mut p = TraceProfile::short(10);
        p.clock = ClockModel::IDEAL;
        let t = generate(&p, 6);
        let off_grid = t.iter().filter(|p| p.timestamp.as_u64() % 400 != 0).count();
        assert!(
            off_grid > t.len() / 2,
            "ideal clock should not snap to grid"
        );
    }

    #[test]
    fn protocols_are_mixed() {
        let t = minute_trace(7);
        let tcp = t
            .iter()
            .filter(|p| p.protocol == nettrace::Protocol::Tcp)
            .count();
        let udp = t
            .iter()
            .filter(|p| p.protocol == nettrace::Protocol::Udp)
            .count();
        let icmp = t
            .iter()
            .filter(|p| p.protocol == nettrace::Protocol::Icmp)
            .count();
        assert!(tcp > udp && udp > icmp && icmp > 0);
        // TCP strongly dominates (ACKs + telnet + bulk).
        assert!(tcp as f64 / t.len() as f64 > 0.7);
    }

    #[test]
    fn network_numbers_populated() {
        let t = minute_trace(8);
        assert!(t.iter().all(|p| p.src_net >= 1 && p.dst_net >= 1));
        let distinct_dst: std::collections::HashSet<u16> = t.iter().map(|p| p.dst_net).collect();
        assert!(distinct_dst.len() > 100, "zipf tail should appear");
    }

    #[test]
    fn sdsc_hour_is_full_length() {
        // Cheap structural check on the flagship profile without paying
        // for a full-hour generation in unit tests (integration tests do).
        let p = TraceProfile::sdsc_1993();
        assert_eq!(p.duration_secs, 3600);
        let t = generate(&TraceProfile::short(20), 9);
        assert!(t.duration().as_secs_f64() > 18.0);
    }
}
