//! Application classes: the size/protocol/port signatures of early-1990s
//! WAN traffic.
//!
//! The paper chose its packet-size bins to "characterize certain
//! protocols: ACKs, character echos, transaction-oriented, bulk transfer"
//! (§7.1.1). Each [`AppClass`] models one of those signatures: a size
//! distribution plus a protocol/port assignment consistent with the
//! NSFNET application mix of March 1993 (telnet, FTP, SMTP, NNTP, DNS,
//! NFS, ICMP). Network numbers for the traffic-matrix objects are drawn
//! from Zipf-like popularity distributions ([`ZipfNets`]).

use nettrace::Protocol;
use rand::{Rng, RngExt};
use statkit::rand_ext::Discrete;

/// One application-level packet signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppClass {
    /// ICMP control packets, 28–39 bytes (below the TCP ACK size).
    IcmpControl,
    /// Bare TCP acknowledgments: exactly 40 bytes (20 IP + 20 TCP).
    /// The dominant atom — ACKs of inbound bulk transfers.
    TcpAck,
    /// Interactive telnet/rlogin keystroke traffic, 41–75 bytes.
    Telnet,
    /// Character-echo packets with options: exactly 76 bytes.
    TelnetEcho,
    /// Transaction-oriented datagrams (DNS, SMTP handshakes, NTP),
    /// 77–250 bytes.
    Transaction,
    /// Mid-size transfer segments, 251–551 bytes.
    MidTransfer,
    /// Full bulk-transfer segments at the era's common 552-byte MSS.
    BulkMss,
    /// Large datagrams: 576 (default IP MTU), 1006, up to the 1500-byte
    /// MTU (NFS over UDP, large FTP segments).
    LargeData,
}

impl AppClass {
    /// Draw a packet size for this class.
    pub fn sample_size<R: Rng + ?Sized>(self, rng: &mut R) -> u16 {
        match self {
            AppClass::IcmpControl => rng.random_range(28..=39),
            AppClass::TcpAck => 40,
            AppClass::Telnet => rng.random_range(41..=75),
            AppClass::TelnetEcho => 76,
            AppClass::Transaction => rng.random_range(77..=250),
            AppClass::MidTransfer => rng.random_range(251..=551),
            AppClass::BulkMss => 552,
            AppClass::LargeData => {
                let u: f64 = rng.random();
                if u < 0.45 {
                    576
                } else if u < 0.60 {
                    1006
                } else if u < 0.72 {
                    1500
                } else {
                    rng.random_range(553..=1500)
                }
            }
        }
    }

    /// Draw a (protocol, src port, dst port) assignment for this class.
    ///
    /// The trace is unidirectional (SDSC → backbone), so "client" ports
    /// are ephemeral SDSC-side ports and "server" ports are the
    /// well-known destination services.
    pub fn sample_app<R: Rng + ?Sized>(self, rng: &mut R) -> (Protocol, u16, u16) {
        let ephemeral = rng.random_range(1024..=4999);
        match self {
            AppClass::IcmpControl => (Protocol::Icmp, 0, 0),
            AppClass::TcpAck => {
                let dst = pick(rng, &[(20, 0.5), (119, 0.3), (25, 0.2)]);
                (Protocol::Tcp, ephemeral, dst)
            }
            AppClass::Telnet | AppClass::TelnetEcho => {
                let dst = pick(rng, &[(23, 0.8), (513, 0.2)]);
                (Protocol::Tcp, ephemeral, dst)
            }
            AppClass::Transaction => {
                let u: f64 = rng.random();
                if u < 0.45 {
                    (Protocol::Udp, ephemeral, 53)
                } else if u < 0.80 {
                    (Protocol::Tcp, ephemeral, 25)
                } else {
                    (Protocol::Udp, ephemeral, 123)
                }
            }
            AppClass::MidTransfer => {
                let dst = pick(rng, &[(25, 0.5), (119, 0.5)]);
                (Protocol::Tcp, ephemeral, dst)
            }
            AppClass::BulkMss => {
                let dst = pick(rng, &[(20, 0.5), (119, 0.3), (25, 0.2)]);
                (Protocol::Tcp, ephemeral, dst)
            }
            AppClass::LargeData => {
                if rng.random::<f64>() < 0.5 {
                    (Protocol::Udp, ephemeral, 2049)
                } else {
                    (Protocol::Tcp, ephemeral, 20)
                }
            }
        }
    }

    /// Analytic mean packet size of this class (used by calibration
    /// tests).
    #[must_use]
    pub fn mean_size(self) -> f64 {
        match self {
            AppClass::IcmpControl => (28.0 + 39.0) / 2.0,
            AppClass::TcpAck => 40.0,
            AppClass::Telnet => (41.0 + 75.0) / 2.0,
            AppClass::TelnetEcho => 76.0,
            AppClass::Transaction => (77.0 + 250.0) / 2.0,
            AppClass::MidTransfer => (251.0 + 551.0) / 2.0,
            AppClass::BulkMss => 552.0,
            AppClass::LargeData => {
                0.45 * 576.0 + 0.15 * 1006.0 + 0.12 * 1500.0 + 0.28 * (553.0 + 1500.0) / 2.0
            }
        }
    }
}

/// Weighted choice over a tiny static table.
fn pick<R: Rng + ?Sized>(rng: &mut R, table: &[(u16, f64)]) -> u16 {
    let mut u: f64 = rng.random();
    for &(v, w) in table {
        if u < w {
            return v;
        }
        u -= w;
    }
    table[table.len() - 1].0
}

/// Zipf-like source/destination network-number popularity.
///
/// The NSFNET traffic matrix is dominated by a few heavy pairs with a
/// long tail of pairs exchanging little traffic — the property the paper
/// singles out as making the sampled matrix hard to validate (§8). A
/// Zipf(s) popularity over network numbers reproduces it.
#[derive(Debug, Clone)]
pub struct ZipfNets {
    src: Discrete<u16>,
    dst: Discrete<u16>,
}

impl ZipfNets {
    /// Build with `n_src` source networks and `n_dst` destination
    /// networks, both with Zipf exponent `s`.
    ///
    /// # Panics
    /// Panics if either count is zero.
    #[must_use]
    pub fn new(n_src: u16, n_dst: u16, s: f64) -> Self {
        assert!(n_src > 0 && n_dst > 0, "network counts must be positive");
        let weights = |n: u16| -> Vec<(u16, f64)> {
            (1..=n).map(|k| (k, 1.0 / f64::from(k).powf(s))).collect()
        };
        ZipfNets {
            src: Discrete::new(&weights(n_src)),
            dst: Discrete::new(&weights(n_dst)),
        }
    }

    /// The SDSC-side default: ~120 campus/regional source networks,
    /// ~1500 destination networks, exponent 1.0.
    #[must_use]
    pub fn standard() -> Self {
        ZipfNets::new(120, 1500, 1.0)
    }

    /// Draw a (src, dst) network pair.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> (u16, u16) {
        (*self.src.sample(rng), *self.dst.sample(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    const ALL: [AppClass; 8] = [
        AppClass::IcmpControl,
        AppClass::TcpAck,
        AppClass::Telnet,
        AppClass::TelnetEcho,
        AppClass::Transaction,
        AppClass::MidTransfer,
        AppClass::BulkMss,
        AppClass::LargeData,
    ];

    #[test]
    fn sizes_stay_in_class_ranges() {
        let mut r = rng(1);
        for class in ALL {
            for _ in 0..2000 {
                let s = class.sample_size(&mut r);
                let ok = match class {
                    AppClass::IcmpControl => (28..=39).contains(&s),
                    AppClass::TcpAck => s == 40,
                    AppClass::Telnet => (41..=75).contains(&s),
                    AppClass::TelnetEcho => s == 76,
                    AppClass::Transaction => (77..=250).contains(&s),
                    AppClass::MidTransfer => (251..=551).contains(&s),
                    AppClass::BulkMss => s == 552,
                    AppClass::LargeData => (553..=1500).contains(&s) || s == 553,
                };
                assert!(ok, "{class:?} produced {s}");
            }
        }
    }

    #[test]
    fn global_size_bounds_match_table3() {
        let mut r = rng(2);
        let mut lo = u16::MAX;
        let mut hi = 0u16;
        for class in ALL {
            for _ in 0..5000 {
                let s = class.sample_size(&mut r);
                lo = lo.min(s);
                hi = hi.max(s);
            }
        }
        assert_eq!(lo, 28, "Table 3 min");
        assert_eq!(hi, 1500, "Table 3 max");
    }

    #[test]
    fn empirical_means_match_analytic() {
        let mut r = rng(3);
        for class in ALL {
            let n = 20_000;
            let sum: f64 = (0..n).map(|_| f64::from(class.sample_size(&mut r))).sum();
            let emp = sum / f64::from(n);
            assert!(
                (emp - class.mean_size()).abs() / class.mean_size() < 0.02,
                "{class:?}: {emp} vs {}",
                class.mean_size()
            );
        }
    }

    #[test]
    fn protocols_match_class() {
        let mut r = rng(4);
        for _ in 0..1000 {
            let (p, _, _) = AppClass::IcmpControl.sample_app(&mut r);
            assert_eq!(p, Protocol::Icmp);
            let (p, _, d) = AppClass::BulkMss.sample_app(&mut r);
            assert_eq!(p, Protocol::Tcp);
            assert!([20, 119, 25].contains(&d));
            let (p, _, d) = AppClass::Telnet.sample_app(&mut r);
            assert_eq!(p, Protocol::Tcp);
            assert!([23, 513].contains(&d));
        }
    }

    #[test]
    fn transaction_mix_includes_udp_dns() {
        let mut r = rng(5);
        let mut dns = 0;
        for _ in 0..5000 {
            let (p, _, d) = AppClass::Transaction.sample_app(&mut r);
            if p == Protocol::Udp && d == 53 {
                dns += 1;
            }
        }
        let frac = f64::from(dns) / 5000.0;
        assert!((frac - 0.45).abs() < 0.03, "DNS fraction {frac}");
    }

    #[test]
    fn ephemeral_ports_in_range() {
        let mut r = rng(6);
        for _ in 0..1000 {
            let (_, s, _) = AppClass::BulkMss.sample_app(&mut r);
            assert!((1024..=4999).contains(&s));
        }
    }

    #[test]
    fn zipf_nets_are_skewed() {
        let z = ZipfNets::standard();
        let mut r = rng(7);
        let mut top_src = 0usize;
        let mut total = 0usize;
        for _ in 0..50_000 {
            let (s, _) = z.sample(&mut r);
            assert!((1..=120).contains(&s));
            if s == 1 {
                top_src += 1;
            }
            total += 1;
        }
        // Zipf(1.0) over 120 ranks: rank 1 has weight 1/H_120 ≈ 0.186.
        let frac = top_src as f64 / total as f64;
        assert!((frac - 0.186).abs() < 0.02, "top-rank fraction {frac}");
    }

    #[test]
    fn zipf_dst_range() {
        let z = ZipfNets::new(10, 50, 0.8);
        let mut r = rng(8);
        for _ in 0..10_000 {
            let (s, d) = z.sample(&mut r);
            assert!((1..=10).contains(&s));
            assert!((1..=50).contains(&d));
        }
    }
}
