//! The nonstationary per-second intensity process.
//!
//! Traffic on the SDSC link was "not time-homogeneous" (paper §4); its
//! per-second packet counts are right-skewed and heavy-tailed (Table 2:
//! skew 0.96, kurtosis 4.95). We model the intensity as an AR(1)
//! log-normal process overlaid with burst and lull *episodes* (multi-
//! second multiplicative excursions — bulk transfers and quiet spells),
//! which supply the extra skew/kurtosis and the extreme seconds
//! (min 156, max 966 in the paper's hour).
//!
//! The same module also produces the per-second *bulk tilt* `w_t`: the
//! fraction of the size mixture drawn from the bulk component in second
//! `t`. The tilt is correlated with the intensity deviation (bursts are
//! transfers), which is what spreads the per-second mean packet size
//! (Table 2's mean-size row) and makes byte rates skew harder than packet
//! rates.

use crate::profile::TraceProfile;
use rand::{Rng, RngExt};
use statkit::rand_ext::standard_normal;

/// Per-second generation parameters produced by the rate process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SecondPlan {
    /// Poisson intensity for the second (packets).
    pub intensity: f64,
    /// Bulk weight of the size mixture in this second.
    pub bulk_weight: f64,
}

/// The state of an ongoing burst/lull episode.
#[derive(Debug, Clone, Copy)]
struct Episode {
    remaining: u32,
    factor: f64,
}

/// Generate the per-second plan for a whole trace.
///
/// Deterministic given `rng` state; consumes randomness only from `rng`.
#[must_use]
pub fn plan_seconds<R: Rng + ?Sized>(profile: &TraceProfile, rng: &mut R) -> Vec<SecondPlan> {
    profile.validate();
    let n = profile.duration_secs as usize;
    let mut plans = Vec::with_capacity(n);

    // Log-normal parameters so the *lognormal* has mean `mean_pps` and
    // coefficient of variation `rate_cv`.
    let sigma2 = (1.0 + profile.rate_cv * profile.rate_cv).ln();
    let sigma = sigma2.sqrt();
    let mu = profile.mean_pps.ln() - sigma2 / 2.0;

    let a = profile.rate_ar1;
    let innov = (1.0 - a * a).sqrt();
    let tilt_a = profile.bulk_tilt_ar1;
    let tilt_innov = (1.0 - tilt_a * tilt_a).sqrt();
    let rho = profile.bulk_rate_corr;
    let rho_c = (1.0 - rho * rho).sqrt();

    // Stationary starts.
    let mut z = standard_normal(rng); // log-rate deviation, N(0,1)
    let mut y = standard_normal(rng); // tilt's own factor, N(0,1)
    let mut episode: Option<Episode> = None;

    for _ in 0..n {
        // AR(1) updates preserving unit stationary variance.
        z = a * z + innov * standard_normal(rng);
        y = tilt_a * y + tilt_innov * standard_normal(rng);

        // Episode lifecycle.
        if let Some(ep) = &mut episode {
            ep.remaining -= 1;
            if ep.remaining == 0 {
                episode = None;
            }
        }
        if episode.is_none() {
            let u: f64 = rng.random();
            if u < profile.burst_prob {
                episode = Some(Episode {
                    remaining: geometric_len(rng, profile.burst_mean_secs),
                    factor: rng.random_range(profile.burst_factor.0..=profile.burst_factor.1),
                });
            } else if u < profile.burst_prob + profile.lull_prob {
                episode = Some(Episode {
                    remaining: geometric_len(rng, profile.lull_mean_secs),
                    factor: rng.random_range(profile.lull_factor.0..=profile.lull_factor.1),
                });
            }
        }
        let factor = episode.map_or(1.0, |e| e.factor);
        let intensity = ((mu + sigma * z).exp() * factor).clamp(
            profile.mean_pps * profile.rate_clamp.0,
            profile.mean_pps * profile.rate_clamp.1,
        );

        // Effective standardized rate deviation, episodes included, drives
        // the correlated part of the tilt.
        let rate_dev = ((intensity / profile.mean_pps).ln()) / sigma;
        let tilt_driver = rho * rate_dev + rho_c * y;
        let bulk_weight = (profile.bulk_weight + profile.bulk_tilt_std * tilt_driver)
            .clamp(profile.bulk_clamp.0, profile.bulk_clamp.1);

        plans.push(SecondPlan {
            intensity,
            bulk_weight,
        });
    }
    plans
}

/// Geometric episode length with the given mean, at least 1 second.
fn geometric_len<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u32 {
    let p = (1.0 / mean.max(1.0)).clamp(1e-6, 1.0);
    let mut len = 1u32;
    while rng.random::<f64>() > p && len < 120 {
        len += 1;
    }
    len
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use statkit::Moments;

    fn plans(seed: u64, secs: u32) -> Vec<SecondPlan> {
        let profile = TraceProfile::short(secs);
        let mut rng = StdRng::seed_from_u64(seed);
        plan_seconds(&profile, &mut rng)
    }

    #[test]
    fn produces_one_plan_per_second() {
        assert_eq!(plans(1, 60).len(), 60);
        assert_eq!(plans(1, 3600).len(), 3600);
    }

    #[test]
    fn intensities_are_positive_and_near_mean() {
        let p = plans(2, 3600);
        let m = Moments::from_values(p.iter().map(|s| s.intensity));
        assert!(m.min() > 0.0);
        let target = TraceProfile::sdsc_1993().mean_pps;
        assert!(
            (m.mean() - target).abs() / target < 0.05,
            "mean intensity {}",
            m.mean()
        );
    }

    #[test]
    fn rate_process_is_right_skewed() {
        // Aggregate over several seeds to beat single-run noise.
        let mut m = Moments::new();
        for seed in 0..5 {
            let p = plans(seed, 3600);
            for s in p {
                m.push(s.intensity);
            }
        }
        assert!(m.skewness() > 0.3, "skew {}", m.skewness());
        assert!(m.kurtosis() > 3.0, "kurtosis {}", m.kurtosis());
    }

    #[test]
    fn bulk_weights_respect_clamp() {
        let profile = TraceProfile::sdsc_1993();
        for s in plans(3, 3600) {
            assert!(s.bulk_weight >= profile.bulk_clamp.0);
            assert!(s.bulk_weight <= profile.bulk_clamp.1);
        }
    }

    #[test]
    fn bulk_weight_mean_near_baseline() {
        let m = Moments::from_values(plans(4, 3600).iter().map(|s| s.bulk_weight));
        let target = TraceProfile::sdsc_1993().bulk_weight;
        assert!((m.mean() - target).abs() < 0.03, "mean tilt {}", m.mean());
        assert!(m.std_dev() > 0.05, "tilt should actually vary");
    }

    #[test]
    fn tilt_correlates_with_rate() {
        // Empirical correlation between intensity and bulk weight should be
        // clearly positive (bursts are bulk transfers).
        let p = plans(5, 3600);
        let mi = Moments::from_values(p.iter().map(|s| s.intensity));
        let mw = Moments::from_values(p.iter().map(|s| s.bulk_weight));
        let mut cov = 0.0;
        for s in &p {
            cov += (s.intensity - mi.mean()) * (s.bulk_weight - mw.mean());
        }
        cov /= p.len() as f64;
        let corr = cov / (mi.std_dev() * mw.std_dev());
        assert!(corr > 0.25, "corr {corr}");
    }

    #[test]
    fn autocorrelation_is_positive() {
        let p = plans(6, 3600);
        let m = Moments::from_values(p.iter().map(|s| s.intensity));
        let mut num = 0.0;
        for w in p.windows(2) {
            num += (w[0].intensity - m.mean()) * (w[1].intensity - m.mean());
        }
        let r1 = num / ((p.len() - 1) as f64 * m.variance());
        assert!(r1 > 0.5, "lag-1 autocorr {r1}");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = plans(7, 100);
        let b = plans(7, 100);
        assert_eq!(a, b);
    }

    #[test]
    fn geometric_len_mean() {
        let mut rng = StdRng::seed_from_u64(8);
        let m = Moments::from_values((0..20_000).map(|_| f64::from(geometric_len(&mut rng, 2.0))));
        assert!((m.mean() - 2.0).abs() < 0.1, "mean {}", m.mean());
        assert!(m.min() >= 1.0);
    }
}
