//! Flow-level traffic generation — the correlation ablation.
//!
//! The paper's authors chose their methods because they "were motivated
//! by an interest in the effects of patterns in the data" (§4). The
//! calibrated per-second mixture generator ([`crate::gen`]) has only
//! per-second correlation; this module generates traffic as explicit
//! **flows** (connections), each emitting its packets with its
//! application's temporal signature:
//!
//! * **bulk transfers** (FTP-data/NNTP/SMTP): heavy-tailed packet counts,
//!   window-of-segments bursts separated by an RTT — back-to-back MSS
//!   packets, strong short-range correlation;
//! * **interactive sessions** (telnet/rlogin): long sparse trains of
//!   small packets at human typing timescales;
//! * **transactions** (DNS/NTP): one or two datagrams.
//!
//! Consecutive packets on the wire are then often *from the same flow
//! and the same size class* — precisely the short-range correlation that
//! could, in principle, separate systematic from random sampling. The
//! `correlation` ablation experiment shows it does not at operational
//! sampling intervals (the sampling lag outstrips the burst length),
//! which is why the paper's methods tie on real traffic too.

use crate::apps::ZipfNets;
use nettrace::{ClockModel, Micros, PacketRecord, Protocol, Trace};
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use statkit::rand_ext::{Exponential, Pareto};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The kind of flow, determining packet sizes and temporal signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowKind {
    /// Window-burst bulk transfer (552-byte MSS segments + trailing
    /// smaller segment behavior folded into the MSS class).
    Bulk,
    /// Interactive keystroke session (small packets, seconds apart).
    Interactive,
    /// Short transaction (1–2 datagrams).
    Transaction,
    /// Outbound ACK stream of an *inbound* transfer (40-byte packets at
    /// the inbound data rate — the dominant small-packet source on a
    /// unidirectional campus-egress link).
    AckStream,
}

/// Parameters of the flow-level generator.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowProfile {
    /// Trace duration in seconds.
    pub duration_secs: u32,
    /// Flow arrivals per second (all kinds).
    pub flow_rate: f64,
    /// Mix of flow kinds (bulk, interactive, transaction, ack-stream);
    /// must sum to ~1.
    pub kind_mix: [f64; 4],
    /// Round-trip time range for bulk window pacing, microseconds.
    pub rtt_us: (u64, u64),
    /// TCP window in segments for bulk bursts.
    pub window_segments: u32,
    /// Pareto shape for bulk transfer lengths (in segments).
    pub bulk_alpha: f64,
    /// Minimum bulk transfer length in segments.
    pub bulk_min_segments: f64,
    /// Cap on segments per flow (keeps the tail finite).
    pub max_segments: u32,
    /// Capture clock.
    pub clock: ClockModel,
}

impl Default for FlowProfile {
    fn default() -> Self {
        FlowProfile {
            duration_secs: 300,
            // ~30 flows/s at ~14 packets/flow ≈ 420 pps.
            flow_rate: 30.0,
            kind_mix: [0.22, 0.12, 0.36, 0.30],
            rtt_us: (30_000, 120_000),
            window_segments: 4,
            bulk_alpha: 1.3,
            bulk_min_segments: 6.0,
            max_segments: 4000,
            clock: ClockModel::SDSC_1993,
        }
    }
}

impl FlowProfile {
    /// Sanity checks.
    ///
    /// # Panics
    /// Panics on degenerate parameters.
    pub fn validate(&self) {
        assert!(self.duration_secs > 0, "duration must be positive");
        assert!(self.flow_rate > 0.0, "flow rate must be positive");
        let sum: f64 = self.kind_mix.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "kind mix must sum to 1");
        assert!(
            self.rtt_us.0 > 0 && self.rtt_us.0 <= self.rtt_us.1,
            "bad RTT range"
        );
        assert!(self.window_segments >= 1, "window must be >= 1 segment");
        assert!(self.bulk_alpha > 1.0, "bulk alpha must exceed 1");
        assert!(self.max_segments >= 1, "segment cap must be >= 1");
    }
}

/// One packet scheduled for emission.
#[derive(Debug, Clone, Copy)]
struct Emission {
    at: u64,
    record: PacketRecord,
}

/// Generate a flow-level trace, deterministic under `seed`.
#[must_use]
pub fn generate_flows(profile: &FlowProfile, seed: u64) -> Trace {
    profile.validate();
    let mut rng = StdRng::seed_from_u64(seed);
    let nets = ZipfNets::standard();
    let horizon = u64::from(profile.duration_secs) * 1_000_000;
    let flow_gap = Exponential::new(1e6 / profile.flow_rate);

    // Schedule every flow's packets eagerly into a heap, then drain in
    // time order. Memory: a few hundred thousand emissions for the
    // default profile — fine.
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    let mut emissions: Vec<Emission> = Vec::new();

    let mut t = 0.0f64;
    loop {
        t += flow_gap.sample(&mut rng);
        let start = t as u64;
        if start >= horizon {
            break;
        }
        let kind = pick_kind(profile.kind_mix, &mut rng);
        schedule_flow(profile, kind, start, &nets, &mut rng, &mut emissions);
    }
    for (i, e) in emissions.iter().enumerate() {
        if e.at < horizon {
            heap.push(Reverse((e.at, i)));
        }
    }

    let mut packets = Vec::with_capacity(heap.len());
    while let Some(Reverse((at, i))) = heap.pop() {
        let mut rec = emissions[i].record;
        rec.timestamp = Micros(at);
        packets.push(rec);
    }
    Trace::new(packets)
        .expect("heap drain is time-ordered")
        .quantized(profile.clock)
}

fn pick_kind<R: Rng + ?Sized>(mix: [f64; 4], rng: &mut R) -> FlowKind {
    let kinds = [
        FlowKind::Bulk,
        FlowKind::Interactive,
        FlowKind::Transaction,
        FlowKind::AckStream,
    ];
    let mut u: f64 = rng.random();
    for (k, w) in kinds.iter().zip(mix) {
        if u < w {
            return *k;
        }
        u -= w;
    }
    FlowKind::AckStream
}

/// Emit one flow's packets.
fn schedule_flow(
    profile: &FlowProfile,
    kind: FlowKind,
    start: u64,
    nets: &ZipfNets,
    rng: &mut StdRng,
    out: &mut Vec<Emission>,
) {
    let (src_net, dst_net) = nets.sample(rng);
    let mut push = |at: u64, size: u16, protocol: Protocol, sport: u16, dport: u16| {
        out.push(Emission {
            at,
            record: PacketRecord {
                timestamp: Micros(at),
                size,
                protocol,
                src_port: sport,
                dst_port: dport,
                src_net,
                dst_net,
                flow_id: 0,
                flags: 0,
            },
        });
    };
    let ephemeral: u16 = rng.random_range(1024..=4999);
    match kind {
        FlowKind::Bulk => {
            let dport = [20u16, 119, 25][rng.random_range(0..3usize)];
            let segments = (bulk_segments(profile, rng)).min(profile.max_segments);
            let rtt = rng.random_range(profile.rtt_us.0..=profile.rtt_us.1);
            let mut at = start;
            let mut sent = 0u32;
            while sent < segments {
                let burst = profile.window_segments.min(segments - sent);
                for b in 0..burst {
                    // Back-to-back segments ~0.8 ms apart (serialization
                    // + queueing on the campus path).
                    let jitter = rng.random_range(0..400);
                    push(
                        at + u64::from(b) * 800 + jitter,
                        552,
                        Protocol::Tcp,
                        ephemeral,
                        dport,
                    );
                }
                sent += burst;
                at += rtt + rng.random_range(0..rtt / 4 + 1);
            }
        }
        FlowKind::Interactive => {
            let dport = if rng.random::<f64>() < 0.8 { 23 } else { 513 };
            let keystrokes = rng.random_range(5..60u32);
            let think = Exponential::new(900_000.0); // ~0.9 s between keys
            let mut at = start as f64;
            for _ in 0..keystrokes {
                at += think.sample(rng);
                let size = if rng.random::<f64>() < 0.3 {
                    76
                } else {
                    rng.random_range(41..=75)
                };
                push(at as u64, size, Protocol::Tcp, ephemeral, dport);
            }
        }
        FlowKind::Transaction => {
            let (proto, dport) = if rng.random::<f64>() < 0.7 {
                (Protocol::Udp, 53)
            } else {
                (Protocol::Udp, 123)
            };
            let n = rng.random_range(1..=2);
            for i in 0..n {
                push(
                    start + i * rng.random_range(2_000..50_000),
                    rng.random_range(77..=250),
                    proto,
                    ephemeral,
                    dport,
                );
            }
        }
        FlowKind::AckStream => {
            // ACK clocking of an inbound transfer: one 40-byte ACK per
            // inbound window, i.e. bursts of ~window/2 ACKs per RTT.
            let dport = [20u16, 119, 25][rng.random_range(0..3usize)];
            let segments = (bulk_segments(profile, rng)).min(profile.max_segments);
            let acks = segments.div_ceil(2);
            let rtt = rng.random_range(profile.rtt_us.0..=profile.rtt_us.1);
            let per_rtt = (profile.window_segments / 2).max(1);
            let mut at = start;
            let mut sent = 0u32;
            while sent < acks {
                let burst = per_rtt.min(acks - sent);
                for b in 0..burst {
                    push(
                        at + u64::from(b) * 900 + rng.random_range(0..400),
                        40,
                        Protocol::Tcp,
                        ephemeral,
                        dport,
                    );
                }
                sent += burst;
                at += rtt + rng.random_range(0..rtt / 4 + 1);
            }
        }
    }
}

fn bulk_segments(profile: &FlowProfile, rng: &mut StdRng) -> u32 {
    Pareto::new(profile.bulk_min_segments, profile.bulk_alpha)
        .sample(rng)
        .round()
        .clamp(1.0, f64::from(u32::MAX)) as u32
}

/// Summary of within-flow structure, for tests and the correlation
/// ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowStats {
    /// Number of packets generated.
    pub packets: usize,
    /// Fraction of adjacent wire packets that share (src_port, dst_net)
    /// — i.e. belong to the same flow.
    pub adjacent_same_flow: f64,
}

/// Measure flow-adjacency on a trace (flows identified by
/// `(src_port, src_net, dst_net, dst_port)`).
#[must_use]
pub fn flow_adjacency(trace: &Trace) -> FlowStats {
    let packets = trace.packets();
    let mut same = 0usize;
    for w in packets.windows(2) {
        if w[0].src_port == w[1].src_port
            && w[0].src_net == w[1].src_net
            && w[0].dst_net == w[1].dst_net
            && w[0].dst_port == w[1].dst_port
        {
            same += 1;
        }
    }
    FlowStats {
        packets: packets.len(),
        adjacent_same_flow: if packets.len() > 1 {
            same as f64 / (packets.len() - 1) as f64
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use statkit::acf::{acf, white_noise_band};

    fn trace(seed: u64) -> Trace {
        generate_flows(&FlowProfile::default(), seed)
    }

    #[test]
    fn deterministic_and_ordered() {
        let a = trace(1);
        let b = trace(1);
        assert_eq!(a, b);
        assert!(a
            .packets()
            .windows(2)
            .all(|w| w[0].timestamp <= w[1].timestamp));
    }

    #[test]
    fn volume_in_expected_range() {
        let t = trace(2);
        // ~26 flows/s * ~16 pkts * 300 s ~ 125k; accept a broad band
        // (heavy-tailed flow sizes).
        assert!(t.len() > 40_000, "{}", t.len());
        assert!(t.len() < 600_000, "{}", t.len());
    }

    #[test]
    fn sizes_have_the_wan_signature() {
        let t = trace(3);
        let n = t.len() as f64;
        let acks = t.iter().filter(|p| p.size == 40).count() as f64 / n;
        let mss = t.iter().filter(|p| p.size == 552).count() as f64 / n;
        assert!(acks > 0.15, "ACK fraction {acks}");
        assert!(mss > 0.15, "MSS fraction {mss}");
        assert!(t.iter().all(|p| (28..=1500).contains(&p.size)));
    }

    #[test]
    fn flows_create_wire_adjacency() {
        // In flow-level traffic many adjacent packets belong to the same
        // flow; in the per-second mixture generator almost none do.
        let flow_stats = flow_adjacency(&trace(4));
        assert!(
            flow_stats.adjacent_same_flow > 0.15,
            "adjacency {}",
            flow_stats.adjacent_same_flow
        );
        let mixture = crate::generate(&crate::TraceProfile::short(60), 4);
        let mix_stats = flow_adjacency(&mixture);
        assert!(
            mix_stats.adjacent_same_flow < 0.05,
            "mixture adjacency {}",
            mix_stats.adjacent_same_flow
        );
    }

    #[test]
    fn short_lag_size_correlation_exists() {
        // The point of this generator: packet sizes are serially
        // correlated at short lags (within a burst)...
        let t = trace(5);
        let sizes: Vec<f64> = t.sizes().iter().map(|&s| f64::from(s)).collect();
        let band = white_noise_band(sizes.len());
        let r = acf(&sizes, &[1, 2, 50]);
        assert!(r[0] > 5.0 * band, "lag-1 ACF {} vs band {band}", r[0]);
        // ...but has decayed by lag 50 (an operational sampling interval).
        assert!(
            r[2] < r[0] / 2.0,
            "lag-50 ACF {} should be far below lag-1 {}",
            r[2],
            r[0]
        );
    }

    #[test]
    fn clock_quantization_applies() {
        let t = trace(6);
        assert!(t.iter().all(|p| p.timestamp.as_u64() % 400 == 0));
    }

    #[test]
    fn bulk_flows_pace_by_rtt() {
        // A profile of pure bulk flows at a low rate: gaps inside a
        // window are sub-millisecond, gaps between windows are ~RTT.
        let profile = FlowProfile {
            flow_rate: 0.2,
            kind_mix: [1.0, 0.0, 0.0, 0.0],
            ..FlowProfile::default()
        };
        let t = generate_flows(&profile, 7);
        let ia = t.interarrivals();
        let tiny = ia.iter().filter(|&&g| g <= 1600).count();
        let rttish = ia
            .iter()
            .filter(|&&g| (20_000..300_000).contains(&g))
            .count();
        assert!(tiny > ia.len() / 3, "in-window gaps {tiny}/{}", ia.len());
        assert!(rttish > ia.len() / 20, "rtt gaps {rttish}/{}", ia.len());
    }

    #[test]
    #[should_panic(expected = "kind mix must sum to 1")]
    fn bad_mix_panics() {
        let profile = FlowProfile {
            kind_mix: [0.5, 0.0, 0.0, 0.0],
            ..FlowProfile::default()
        };
        profile.validate();
    }
}
