//! Per-lane incremental traffic sources for the sharded collector.
//!
//! The collector daemon (`crates/collectd`) multiplexes N virtual
//! interfaces × M tenants; each (tenant, interface) pair is a **lane**
//! with its own packet stream. Two source families feed a lane, both
//! deterministic under the lane's folded seed and both O(chunk) in
//! memory so a million-flow soak never materializes a trace:
//!
//! * [`LaneGen`] — a windowed flow mix: every window of
//!   `window_packets` packets introduces exactly `flows_per_window`
//!   fresh flows whose per-window packet quotas follow the configured
//!   [`FlowSizeDist`] (Zipf / LogNormal / Geometric, the same parent
//!   mixes [`generate_flow_pack`](crate::generate_flow_pack) draws
//!   from), interleaved round-robin the way concurrent transfers
//!   interleave on a link. Flow ids are SYN-marked on first packet and
//!   strictly increase across windows, so a window's live-flow count is
//!   exact by construction — the knob the ≥1M-live-flow soak turns.
//! * [`replay_lane`] — a per-interface [`PacedReader`] replay decoded
//!   through [`nettrace::CaptureStream`]: the calibrated 1993 marginals
//!   without flow ids (flows fall back to 5-tuple keys), for lanes that
//!   model an interface tap rather than a flow exporter.
//!
//! A lane's stream is a pure function of `(seed, lane)` — never of the
//! shard that happens to host it — which is what lets the collector
//! keep its merged output bit-identical at any shard count.

use crate::pack::{FlowSizeDist, SizeSampler};
use crate::replay::{PacedReader, ReplayConfig};
use nettrace::time::Micros;
use nettrace::{CaptureStream, PacketRecord, Protocol};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::io::BufReader;

/// Shape of one lane's synthetic flow mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneConfig {
    /// Collector-wide seed; the lane folds its index in.
    pub seed: u64,
    /// Global lane index (tenant-major) — part of the seed fold and of
    /// every flow id, so lanes never alias each other's streams.
    pub lane: u32,
    /// Packets per window (the collector's window extent).
    pub window_packets: u64,
    /// Fresh flows introduced per window; each gets a quota ≥ 1 packet,
    /// so a window's live-flow count is exactly this.
    pub flows_per_window: u32,
    /// Parent distribution of the per-window flow quotas.
    pub size_dist: FlowSizeDist,
    /// Mean intra-lane packet gap in microseconds (uniform ±50 %
    /// jitter, so the interarrival target stays non-degenerate).
    pub mean_gap_us: u64,
}

impl LaneConfig {
    /// Sanity checks, mirrored by the collector's config validation.
    ///
    /// # Panics
    /// Panics on degenerate parameters: zero window, zero flows, more
    /// flows than packets (a flow needs at least one packet), or a zero
    /// mean gap.
    pub fn validate(&self) {
        assert!(self.window_packets > 0, "window must hold packets");
        assert!(self.flows_per_window > 0, "flow mix must hold flows");
        assert!(
            u64::from(self.flows_per_window) <= self.window_packets,
            "flows per window ({}) exceed the window's packets ({})",
            self.flows_per_window,
            self.window_packets
        );
        assert!(self.mean_gap_us > 0, "mean gap must be positive");
    }
}

/// Incremental windowed flow-mix generator for one lane. See the
/// module docs; construction is O(flows), each pull is O(chunk).
pub struct LaneGen {
    cfg: LaneConfig,
    rng: StdRng,
    sampler: SizeSampler,
    /// Window being generated.
    window: u64,
    /// Packets already emitted in the current window.
    pos: u64,
    /// Per-flow remaining quota for the current window (local index).
    quota: Vec<u32>,
    /// Per-flow packets emitted so far (first packet ⇒ SYN).
    emitted: Vec<u32>,
    /// Local indices of flows with quota left, in rotation order.
    live: Vec<u32>,
    /// Rotation cursor into `live`.
    cursor: usize,
    /// Lane-local clock.
    ts: u64,
    generated: u64,
}

impl LaneGen {
    /// A lane generator; folds `(seed, lane)` into the lane's RNG.
    ///
    /// # Panics
    /// Panics on a degenerate config (see [`LaneConfig::validate`]).
    #[must_use]
    pub fn new(cfg: LaneConfig) -> LaneGen {
        cfg.validate();
        let folded = cfg
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(u64::from(cfg.lane) << 1 | 1);
        let mut gen = LaneGen {
            cfg,
            rng: StdRng::seed_from_u64(folded),
            sampler: SizeSampler::build(cfg.size_dist),
            window: 0,
            pos: 0,
            quota: Vec::new(),
            emitted: Vec::new(),
            live: Vec::new(),
            cursor: 0,
            ts: 0,
            generated: 0,
        };
        gen.start_window();
        gen
    }

    /// Packets generated so far.
    #[must_use]
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Draw the new window's flow quotas: every flow starts at one
    /// packet, the remainder is split proportionally to the size draws
    /// (largest-remainder style, index order on ties) — so quotas
    /// follow the configured distribution while summing exactly to
    /// `window_packets` with every flow present.
    fn start_window(&mut self) {
        let flows = self.cfg.flows_per_window as usize;
        let packets = self.cfg.window_packets;
        let sizes: Vec<u64> = (0..flows)
            .map(|_| self.sampler.sample(&mut self.rng, packets))
            .collect();
        let total: u64 = sizes.iter().sum::<u64>().max(1);
        let spare = packets - flows as u64;
        self.quota.clear();
        self.quota.resize(flows, 1);
        let mut assigned = 0u64;
        for (q, &s) in self.quota.iter_mut().zip(&sizes) {
            // Proportional share of the spare packets; u128 keeps the
            // product exact for million-packet windows.
            let extra = (u128::from(spare) * u128::from(s) / u128::from(total)) as u64;
            *q += extra as u32;
            assigned += extra;
        }
        // Rounding leftovers, one packet at a time in index order.
        let mut leftover = spare - assigned;
        let mut i = 0;
        while leftover > 0 {
            self.quota[i % flows] += 1;
            leftover -= 1;
            i += 1;
        }
        self.emitted.clear();
        self.emitted.resize(flows, 0);
        self.live.clear();
        self.live.extend(0..flows as u32);
        self.cursor = 0;
        self.pos = 0;
    }

    /// Append up to `max` packets to `out`, rolling windows internally.
    /// Returns how many were appended (always `max`; the stream is
    /// unbounded). Packets within a window interleave their flows
    /// round-robin; timestamps advance by the jittered mean gap.
    pub fn next_chunk(&mut self, max: usize, out: &mut Vec<PacketRecord>) -> usize {
        for _ in 0..max {
            if self.pos == self.cfg.window_packets {
                self.window += 1;
                self.start_window();
            }
            if self.cursor >= self.live.len() {
                self.cursor = 0;
            }
            let local = self.live[self.cursor];
            let li = local as usize;
            self.quota[li] -= 1;
            let first = self.emitted[li] == 0;
            self.emitted[li] += 1;
            if self.quota[li] == 0 {
                self.live.swap_remove(self.cursor);
            } else {
                self.cursor += 1;
            }
            // Flow ids strictly increase across the lane's lifetime; they
            // only have to be unique *within* the lane because every lane
            // owns its own flow table downstream. Ids are 1-based: 0 means
            // "no id" to the flow table.
            let id = self.window * u64::from(self.cfg.flows_per_window) + u64::from(local) + 1;
            let flow_id = id as u32;
            let gap = self.cfg.mean_gap_us;
            self.ts += gap / 2 + self.rng.random_range(0..=gap);
            let size: u16 = if first {
                40
            } else {
                match self.rng.random_range(0u8..8) {
                    0 => 40,
                    1..=6 => 552,
                    _ => 1500,
                }
            };
            out.push(
                PacketRecord::new(Micros(self.ts), size)
                    .with_protocol(Protocol::Tcp)
                    .with_flow(flow_id, first),
            );
            self.pos += 1;
            self.generated += 1;
        }
        max
    }
}

/// A decoded per-interface replay source: a [`PacedReader`] emitting
/// the calibrated 1993 pcap bytes, pulled through the strict chunked
/// capture decoder. The reader's bytes are a pure function of the
/// folded `(seed, lane)`, so the decoded stream is too.
pub struct ReplayLane {
    stream: CaptureStream<BufReader<PacedReader>>,
}

/// Build a replay lane: `windows × window_packets` packets, paced at
/// `pace_pps` (0 = as fast as the consumer pulls).
///
/// # Errors
/// Propagates the decoder's [`nettrace::TraceError`] — impossible for
/// the generated header, but the signature keeps the decode honest.
pub fn replay_lane(
    seed: u64,
    lane: u32,
    windows: u64,
    window_packets: u64,
    pace_pps: u64,
) -> Result<ReplayLane, nettrace::TraceError> {
    let folded = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(u64::from(lane) << 1 | 1);
    let reader = PacedReader::new(ReplayConfig {
        seed: folded,
        windows,
        window_packets,
        pace_pps,
    });
    Ok(ReplayLane {
        stream: CaptureStream::new(BufReader::new(reader))?,
    })
}

impl ReplayLane {
    /// Append up to `max` decoded packets to `out`; returns how many
    /// were appended (0 at end of replay).
    ///
    /// # Errors
    /// Propagates decode faults (impossible on the generated bytes).
    pub fn next_chunk(
        &mut self,
        max: usize,
        out: &mut Vec<PacketRecord>,
    ) -> Result<usize, nettrace::TraceError> {
        let mut n = 0;
        while n < max {
            match self.stream.next_packet()? {
                Some(p) => {
                    out.push(p);
                    n += 1;
                }
                None => break,
            }
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn cfg() -> LaneConfig {
        LaneConfig {
            seed: 1993,
            lane: 3,
            window_packets: 1_000,
            flows_per_window: 40,
            size_dist: FlowSizeDist::Zipf {
                max_size: 400,
                alpha: 1.1,
            },
            mean_gap_us: 500,
        }
    }

    fn window_stats(pkts: &[PacketRecord]) -> (usize, u64) {
        let mut flows: BTreeMap<u32, u64> = BTreeMap::new();
        let mut syns = 0;
        for p in pkts {
            *flows.entry(p.flow_id).or_insert(0) += 1;
            if p.syn() {
                syns += 1;
            }
        }
        (flows.len(), syns)
    }

    #[test]
    fn every_window_holds_exactly_the_configured_flows() {
        let mut g = LaneGen::new(cfg());
        let mut pkts = Vec::new();
        g.next_chunk(3_000, &mut pkts);
        assert_eq!(pkts.len(), 3_000);
        for w in 0..3 {
            let slice = &pkts[w * 1_000..(w + 1) * 1_000];
            let (flows, syns) = window_stats(slice);
            assert_eq!(flows, 40, "window {w} flow count");
            assert_eq!(syns, 40, "window {w} SYN count (one per fresh flow)");
        }
        // Windows never share flow ids: fresh flows every window.
        let (all_flows, _) = window_stats(&pkts);
        assert_eq!(all_flows, 120);
        // Timestamps are strictly increasing (positive jittered gaps).
        assert!(pkts.windows(2).all(|p| p[0].timestamp < p[1].timestamp));
    }

    #[test]
    fn chunking_never_changes_the_stream() {
        let mut whole = Vec::new();
        LaneGen::new(cfg()).next_chunk(2_500, &mut whole);
        for chunk in [1usize, 7, 100, 999] {
            let mut g = LaneGen::new(cfg());
            let mut got = Vec::new();
            while got.len() < 2_500 {
                let want = chunk.min(2_500 - got.len());
                g.next_chunk(want, &mut got);
            }
            assert_eq!(got, whole, "chunk {chunk}");
        }
    }

    #[test]
    fn lanes_and_seeds_decorrelate() {
        let mut a = Vec::new();
        LaneGen::new(cfg()).next_chunk(500, &mut a);
        let mut b = Vec::new();
        LaneGen::new(LaneConfig { lane: 4, ..cfg() }).next_chunk(500, &mut b);
        assert_ne!(a, b, "different lanes draw different streams");
        let mut c = Vec::new();
        LaneGen::new(LaneConfig { seed: 7, ..cfg() }).next_chunk(500, &mut c);
        assert_ne!(a, c, "different seeds draw different streams");
    }

    #[test]
    fn quota_draws_follow_a_heavy_tail() {
        // Zipf α=1.1 quotas: the largest flow should dwarf the median.
        let mut g = LaneGen::new(LaneConfig {
            window_packets: 10_000,
            flows_per_window: 100,
            ..cfg()
        });
        let mut pkts = Vec::new();
        g.next_chunk(10_000, &mut pkts);
        let mut by_flow: BTreeMap<u32, u64> = BTreeMap::new();
        for p in &pkts {
            *by_flow.entry(p.flow_id).or_insert(0) += 1;
        }
        let mut sizes: Vec<u64> = by_flow.values().copied().collect();
        sizes.sort_unstable();
        assert_eq!(sizes.iter().sum::<u64>(), 10_000);
        assert!(sizes[0] >= 1);
        assert!(
            *sizes.last().unwrap() > 5 * sizes[sizes.len() / 2],
            "max {} vs median {}",
            sizes.last().unwrap(),
            sizes[sizes.len() / 2]
        );
    }

    #[test]
    fn replay_lane_decodes_the_paced_reader_bytes() {
        let mut lane = replay_lane(1993, 0, 2, 300, 0).unwrap();
        let mut pkts = Vec::new();
        let mut n = 0;
        loop {
            let got = lane.next_chunk(128, &mut pkts).unwrap();
            if got == 0 {
                break;
            }
            n += got;
        }
        assert_eq!(n, 600);
        // Replay packets carry no flow ids — 5-tuple keyed downstream.
        assert!(pkts.iter().all(|p| p.flow_id == 0));
        // Different lanes replay different bytes.
        let mut other = replay_lane(1993, 1, 2, 300, 0).unwrap();
        let mut pkts_b = Vec::new();
        other.next_chunk(600, &mut pkts_b).unwrap();
        assert_ne!(pkts, pkts_b);
    }
}
