//! Generation profiles and the paper's published target statistics.

use nettrace::ClockModel;

/// All knobs of the synthetic workload generator.
///
/// The default profile, [`TraceProfile::sdsc_1993`], is calibrated so the
/// generated hour reproduces the paper's Tables 2 and 3 (see
/// [`PaperTargets`] and `EXPERIMENTS.md`). The fields are deliberately
/// public and documented so ablations can perturb single mechanisms.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceProfile {
    /// Trace length in seconds (the study interval is one hour).
    pub duration_secs: u32,
    /// Mean packet intensity, packets/second.
    pub mean_pps: f64,
    /// Coefficient of variation of the log-normal intensity process
    /// (burst/lull episodes and Poisson counting add further variance on
    /// top).
    pub rate_cv: f64,
    /// Lag-1 autocorrelation of the log-intensity AR(1) process.
    pub rate_ar1: f64,
    /// Hard clamp on the per-second intensity, as multipliers of
    /// `mean_pps`. Models the physical floor/ceiling of the link (an FDDI
    /// entrance interface cannot burst without bound).
    pub rate_clamp: (f64, f64),
    /// Per-second probability that a burst episode begins.
    pub burst_prob: f64,
    /// Multiplicative intensity range of a burst episode (sampled
    /// uniformly in `[burst_factor.0, burst_factor.1]`).
    pub burst_factor: (f64, f64),
    /// Mean burst episode length in seconds (geometric).
    pub burst_mean_secs: f64,
    /// Per-second probability that a lull episode begins.
    pub lull_prob: f64,
    /// Multiplicative intensity range of a lull episode.
    pub lull_factor: (f64, f64),
    /// Mean lull episode length in seconds (geometric).
    pub lull_mean_secs: f64,
    /// Baseline (time-averaged) bulk-traffic weight of the size mixture.
    pub bulk_weight: f64,
    /// Standard deviation of the per-second bulk-weight tilt.
    pub bulk_tilt_std: f64,
    /// Lag-1 autocorrelation of the tilt's own AR(1) component.
    pub bulk_tilt_ar1: f64,
    /// Correlation between the tilt and the (log) rate deviation: bursts
    /// are bulk transfers, so busy seconds carry bigger packets.
    pub bulk_rate_corr: f64,
    /// Clamp range for the per-second bulk weight.
    pub bulk_clamp: (f64, f64),
    /// Probability that a within-second gap is a pause (stretched gap).
    pub pause_prob: f64,
    /// Multiplicative stretch of a pause gap.
    pub pause_scale: f64,
    /// Probability that a within-second gap is a back-to-back train gap
    /// (shrunk gap) — consecutive segments of one transfer.
    pub cluster_prob: f64,
    /// Multiplicative shrink of a train gap.
    pub cluster_scale: f64,
    /// Capture clock model applied to final timestamps.
    pub clock: ClockModel,
}

impl TraceProfile {
    /// The calibrated SDSC → E-NSS March 1993 hour.
    #[must_use]
    pub fn sdsc_1993() -> Self {
        TraceProfile {
            duration_secs: 3600,
            mean_pps: 424.2,
            rate_cv: 0.17,
            rate_ar1: 0.85,
            rate_clamp: (0.36, 2.25),
            burst_prob: 0.007,
            burst_factor: (1.25, 1.65),
            burst_mean_secs: 2.0,
            lull_prob: 0.010,
            lull_factor: (0.44, 0.72),
            lull_mean_secs: 2.0,
            bulk_weight: 0.348,
            bulk_tilt_std: 0.110,
            bulk_tilt_ar1: 0.75,
            bulk_rate_corr: 0.55,
            bulk_clamp: (0.055, 0.70),
            pause_prob: 0.004,
            pause_scale: 3.0,
            cluster_prob: 0.12,
            cluster_scale: 0.10,
            clock: ClockModel::SDSC_1993,
        }
    }

    /// The FIX-West interexchange point at Moffett Field, CA — the data
    /// set the paper's preliminary experiments used (footnote 3: "the
    /// results of the two data sets were quite similar").
    ///
    /// An interexchange point aggregates more sources than a campus
    /// entrance: higher mean rate, smoother rate process (relatively),
    /// slightly less bulk-dominated mix. Parameters are plausible for
    /// the era rather than calibrated to published tables (FIX-West's
    /// were never published); the profile exists to reproduce the
    /// paper's robustness observation, which depends only on the shape.
    #[must_use]
    pub fn fixwest_1993() -> Self {
        TraceProfile {
            duration_secs: 3600,
            mean_pps: 610.0,
            rate_cv: 0.13,
            burst_prob: 0.005,
            lull_prob: 0.007,
            bulk_weight: 0.300,
            bulk_tilt_std: 0.085,
            bulk_clamp: (0.055, 0.62),
            cluster_prob: 0.14,
            ..TraceProfile::sdsc_1993()
        }
    }

    /// A short profile (default one minute) with the same per-second
    /// structure, for fast unit tests.
    #[must_use]
    pub fn short(duration_secs: u32) -> Self {
        TraceProfile {
            duration_secs,
            ..TraceProfile::sdsc_1993()
        }
    }

    /// Basic sanity checks on knob ranges.
    ///
    /// # Panics
    /// Panics on out-of-range parameters; a profile is static
    /// configuration, so violations are programming errors.
    pub fn validate(&self) {
        assert!(self.duration_secs > 0, "duration must be positive");
        assert!(self.mean_pps > 0.0, "mean_pps must be positive");
        assert!(self.rate_cv >= 0.0, "rate_cv must be nonnegative");
        assert!(
            self.rate_clamp.0 > 0.0 && self.rate_clamp.0 < 1.0 && self.rate_clamp.1 > 1.0,
            "rate_clamp must straddle 1.0"
        );
        assert!(
            (0.0..1.0).contains(&self.rate_ar1),
            "rate_ar1 must be in [0,1)"
        );
        assert!((0.0..=1.0).contains(&self.burst_prob));
        assert!((0.0..=1.0).contains(&self.lull_prob));
        assert!((0.0..=1.0).contains(&self.pause_prob));
        assert!(self.pause_scale >= 1.0, "pause_scale must be >= 1");
        assert!((0.0..=1.0).contains(&self.cluster_prob));
        assert!(
            self.cluster_scale > 0.0 && self.cluster_scale <= 1.0,
            "cluster_scale must be in (0,1]"
        );
        assert!(
            self.pause_prob + self.cluster_prob <= 1.0,
            "pause and cluster probabilities overlap"
        );
        assert!(
            self.bulk_clamp.0 < self.bulk_clamp.1
                && self.bulk_clamp.0 >= 0.0
                && self.bulk_clamp.1 <= 1.0,
            "bulk_clamp must be an ordered subrange of [0,1]"
        );
        assert!(
            (self.bulk_clamp.0..=self.bulk_clamp.1).contains(&self.bulk_weight),
            "bulk_weight must lie inside bulk_clamp"
        );
        assert!(
            (-1.0..=1.0).contains(&self.bulk_rate_corr),
            "bulk_rate_corr is a correlation"
        );
    }
}

impl Default for TraceProfile {
    fn default() -> Self {
        TraceProfile::sdsc_1993()
    }
}

/// The paper's published population statistics, used as calibration
/// targets by tests and printed next to measured values by the
/// reproduction binaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperTargets {
    /// Table 2: per-second packet arrivals (packets/s):
    /// (min, q1, median, q3, max, mean, std, skew, kurtosis).
    pub pps: (f64, f64, f64, f64, f64, f64, f64, f64, f64),
    /// Table 2: per-second byte arrivals (kB/s).
    pub kbps: (f64, f64, f64, f64, f64, f64, f64, f64, f64),
    /// Table 2: per-second mean packet size (bytes).
    pub mean_size: (f64, f64, f64, f64, f64, f64, f64, f64, f64),
    /// Table 3: packet size (bytes):
    /// (min, p5, q1, median, q3, p95, max, mean, std).
    pub size: (f64, f64, f64, f64, f64, f64, f64, f64, f64),
    /// Table 3: interarrival time (µs, 400 µs clock):
    /// (q1, median, q3, p95, max, mean, std). min and p5 are "< 400"
    /// in the paper, i.e. zero ticks.
    pub interarrival: (f64, f64, f64, f64, f64, f64, f64),
    /// Population size, packets ("1.63 million").
    pub population: f64,
}

impl PaperTargets {
    /// The values printed in the paper's Tables 2 and 3.
    #[must_use]
    pub const fn sdsc_1993() -> Self {
        PaperTargets {
            pps: (156.0, 364.0, 412.0, 473.0, 966.0, 424.2, 85.1, 0.96, 4.95),
            kbps: (26.591, 71.1, 90.9, 117.6, 330.6, 98.6, 38.6, 1.2, 5.2),
            mean_size: (82.0, 190.0, 222.0, 259.0, 398.0, 226.2, 50.5, 0.36, 2.9),
            size: (28.0, 40.0, 40.0, 76.0, 552.0, 552.0, 1500.0, 232.0, 236.0),
            interarrival: (400.0, 1600.0, 3200.0, 7600.0, 49600.0, 2358.0, 2734.0),
            population: 1.63e6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_profile_is_valid() {
        TraceProfile::sdsc_1993().validate();
        TraceProfile::default().validate();
        TraceProfile::short(60).validate();
    }

    #[test]
    fn short_profile_overrides_duration_only() {
        let a = TraceProfile::sdsc_1993();
        let b = TraceProfile::short(10);
        assert_eq!(b.duration_secs, 10);
        assert_eq!(b.mean_pps, a.mean_pps);
        assert_eq!(b.bulk_weight, a.bulk_weight);
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn zero_duration_rejected() {
        TraceProfile::short(0).validate();
    }

    #[test]
    #[should_panic(expected = "inside bulk_clamp")]
    fn inconsistent_bulk_weight_rejected() {
        let mut p = TraceProfile::sdsc_1993();
        p.bulk_weight = 0.9;
        p.validate();
    }

    #[test]
    fn fixwest_profile_is_valid_and_distinct() {
        let f = TraceProfile::fixwest_1993();
        f.validate();
        let s = TraceProfile::sdsc_1993();
        assert!(f.mean_pps > s.mean_pps);
        assert!(f.rate_cv < s.rate_cv);
        assert!(f.bulk_weight < s.bulk_weight);
    }

    #[test]
    fn paper_targets_are_the_published_numbers() {
        let t = PaperTargets::sdsc_1993();
        assert_eq!(t.pps.5, 424.2);
        assert_eq!(t.size.7, 232.0);
        assert_eq!(t.interarrival.5, 2358.0);
        // Internal consistency the paper itself exhibits:
        // bytes/s mean ≈ pps mean × mean packet size.
        let implied_kbps = t.pps.5 * t.size.7 / 1000.0;
        assert!((implied_kbps - t.kbps.5).abs() < 2.0);
        // interarrival mean ≈ 1e6 / pps mean.
        assert!((1e6 / t.pps.5 - t.interarrival.5).abs() < 2.0);
    }
}
