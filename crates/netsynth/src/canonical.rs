//! The structured populations of the paper's §5.
//!
//! Cochran's comparative theory (which the paper summarizes) predicts how
//! systematic, stratified random, and simple random sampling rank on
//! three canonical population structures:
//!
//! * **randomly ordered** — all three methods are equivalent;
//! * **linear trend** — stratified beats systematic beats simple random;
//! * **periodic correlation** — systematic sampling degrades badly when
//!   the sampling interval resonates with the period.
//!
//! These generators build packet populations with exactly those
//! structures in the *packet-size* variate (uniform spacing in time), so
//! the `sampling::theory` experiments can verify the orderings
//! empirically.

use nettrace::{Micros, PacketRecord, Trace};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Mean spacing used by the canonical populations (the study population's
/// mean interarrival, for familiarity).
const SPACING_US: u64 = 2358;

fn at(i: usize) -> Micros {
    Micros(i as u64 * SPACING_US)
}

/// A randomly ordered population: i.i.d. sizes uniform in `[40, 552]`,
/// uniform spacing. Under this structure all three sampling methods
/// should estimate the mean size with the same efficiency.
#[must_use]
pub fn randomly_ordered(n: usize, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let packets = (0..n)
        .map(|i| PacketRecord::new(at(i), rng.random_range(40..=552)))
        .collect();
    Trace::new(packets).expect("ordered by construction")
}

/// A linear-trend population: sizes rise linearly from 40 to 552 over the
/// trace (plus small i.i.d. noise so stratified/random choices differ
/// within strata). Stratified random sampling should be most efficient,
/// then systematic, then simple random (§5, citing Krishnaiah & Rao).
#[must_use]
pub fn linear_trend(n: usize, seed: u64) -> Trace {
    assert!(n >= 2, "trend population needs at least 2 packets");
    let mut rng = StdRng::seed_from_u64(seed);
    let packets = (0..n)
        .map(|i| {
            let base = 40.0 + 512.0 * i as f64 / (n - 1) as f64;
            let noise: f64 = rng.random_range(-8.0..=8.0);
            let size = (base + noise).round().clamp(28.0, 1500.0) as u16;
            PacketRecord::new(at(i), size)
        })
        .collect();
    Trace::new(packets).expect("ordered by construction")
}

/// A periodic population: sizes follow a sinusoid of the given `period`
/// (in packets) between 40 and 552. Systematic sampling with an interval
/// equal to (or resonant with) the period sees only one phase and
/// estimates the mean catastrophically badly; stratified and random
/// sampling are immune.
#[must_use]
pub fn periodic(n: usize, period: usize, seed: u64) -> Trace {
    assert!(period >= 2, "period must be at least 2 packets");
    let mut rng = StdRng::seed_from_u64(seed);
    let packets = (0..n)
        .map(|i| {
            let phase = 2.0 * std::f64::consts::PI * (i % period) as f64 / period as f64;
            let base = 296.0 + 256.0 * phase.sin();
            let noise: f64 = rng.random_range(-4.0..=4.0);
            let size = (base + noise).round().clamp(28.0, 1500.0) as u16;
            PacketRecord::new(at(i), size)
        })
        .collect();
    Trace::new(packets).expect("ordered by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use statkit::Moments;

    #[test]
    fn randomly_ordered_is_flat() {
        let t = randomly_ordered(10_000, 1);
        assert_eq!(t.len(), 10_000);
        let m = Moments::from_values(t.iter().map(|p| f64::from(p.size)));
        assert!((m.mean() - 296.0).abs() < 10.0, "mean {}", m.mean());
        // First and second halves statistically identical.
        let h1 = Moments::from_values(t.packets()[..5000].iter().map(|p| f64::from(p.size)));
        let h2 = Moments::from_values(t.packets()[5000..].iter().map(|p| f64::from(p.size)));
        assert!((h1.mean() - h2.mean()).abs() < 15.0);
    }

    #[test]
    fn linear_trend_rises() {
        let t = linear_trend(10_000, 2);
        let h1 = Moments::from_values(t.packets()[..5000].iter().map(|p| f64::from(p.size)));
        let h2 = Moments::from_values(t.packets()[5000..].iter().map(|p| f64::from(p.size)));
        assert!(
            h2.mean() - h1.mean() > 200.0,
            "halves {} {}",
            h1.mean(),
            h2.mean()
        );
        // Endpoints near 40 and 552.
        assert!(f64::from(t.packets()[0].size) < 60.0);
        assert!(f64::from(t.packets()[9999].size) > 530.0);
    }

    #[test]
    fn periodic_population_cycles() {
        let period = 64;
        let t = periodic(6400, period, 3);
        // Same phase across periods -> nearly equal sizes.
        let a = f64::from(t.packets()[10].size);
        let b = f64::from(t.packets()[10 + period].size);
        assert!((a - b).abs() < 20.0, "{a} vs {b}");
        // Opposite phases differ by ~2 amplitudes.
        let c = f64::from(t.packets()[10 + period / 2].size);
        assert!((a - c).abs() > 200.0, "{a} vs {c}");
    }

    #[test]
    fn uniform_spacing() {
        for t in [
            randomly_ordered(100, 4),
            linear_trend(100, 4),
            periodic(100, 10, 4),
        ] {
            let ia = t.interarrivals();
            assert!(ia.iter().all(|&g| g == SPACING_US));
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn degenerate_trend_panics() {
        let _ = linear_trend(1, 0);
    }
}
