//! The two-component packet-size mixture.
//!
//! Table 3's packet-size population is sharply bimodal: mass at 40 bytes
//! (ACKs/keystrokes), a long interactive/transaction shoulder, and a
//! second mode at the 552-byte MSS. We split the application classes into
//! a **small** component (ACKs, telnet, transactions) and a **bulk**
//! component (mid/MSS/large transfers) and mix them with a per-second
//! weight `w_t` supplied by the rate process. The time-averaged weight
//! reproduces Table 3's marginal; the per-second variation of `w_t`
//! reproduces Table 2's mean-size spread.

use crate::apps::AppClass;
use rand::{Rng, RngExt};
use statkit::rand_ext::Discrete;

/// The calibrated size mixture.
#[derive(Debug, Clone)]
pub struct SizeModel {
    small: Discrete<AppClass>,
    bulk: Discrete<AppClass>,
}

/// Small-component weights (sum to 1): ICMP, ACK, telnet, echo-76,
/// transaction. Chosen so that, mixed at the baseline bulk weight, the
/// marginal hits Table 3's quantile structure exactly:
/// `P(size ≤ 40) ≈ 0.41` (5% and 25% quantiles at 40),
/// `P(size ≤ 76)` crosses 0.5 at the 76-byte atom (median 76),
/// `P(size ≤ 552)` crosses both 0.75 and 0.95 at the 552 atom.
const SMALL_WEIGHTS: [(AppClass, f64); 5] = [
    (AppClass::IcmpControl, 0.031),
    (AppClass::TcpAck, 0.585),
    (AppClass::Telnet, 0.108),
    (AppClass::TelnetEcho, 0.077),
    (AppClass::Transaction, 0.199),
];

/// Bulk-component weights (sum to 1): mid-size, MSS atom, large.
const BULK_WEIGHTS: [(AppClass, f64); 3] = [
    (AppClass::MidTransfer, 0.25),
    (AppClass::BulkMss, 0.70),
    (AppClass::LargeData, 0.05),
];

impl SizeModel {
    /// The calibrated standard model.
    #[must_use]
    pub fn standard() -> Self {
        SizeModel {
            small: Discrete::new(&SMALL_WEIGHTS),
            bulk: Discrete::new(&BULK_WEIGHTS),
        }
    }

    /// Draw an application class given this second's bulk weight.
    pub fn sample_class<R: Rng + ?Sized>(&self, bulk_weight: f64, rng: &mut R) -> AppClass {
        debug_assert!((0.0..=1.0).contains(&bulk_weight));
        if rng.random::<f64>() < bulk_weight {
            *self.bulk.sample(rng)
        } else {
            *self.small.sample(rng)
        }
    }

    /// Analytic mean of the small component.
    #[must_use]
    pub fn small_mean(&self) -> f64 {
        SMALL_WEIGHTS.iter().map(|(c, w)| w * c.mean_size()).sum()
    }

    /// Analytic mean of the bulk component.
    #[must_use]
    pub fn bulk_mean(&self) -> f64 {
        BULK_WEIGHTS.iter().map(|(c, w)| w * c.mean_size()).sum()
    }

    /// Analytic mean packet size at a given bulk weight.
    #[must_use]
    pub fn mean_size_at(&self, bulk_weight: f64) -> f64 {
        (1.0 - bulk_weight) * self.small_mean() + bulk_weight * self.bulk_mean()
    }
}

impl Default for SizeModel {
    fn default() -> Self {
        SizeModel::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn component_weights_sum_to_one() {
        let s: f64 = SMALL_WEIGHTS.iter().map(|(_, w)| w).sum();
        let b: f64 = BULK_WEIGHTS.iter().map(|(_, w)| w).sum();
        assert!((s - 1.0).abs() < 1e-12);
        assert!((b - 1.0).abs() < 1e-12);
    }

    #[test]
    fn analytic_means_are_sane() {
        let m = SizeModel::standard();
        // Small component is dominated by 40-byte ACKs.
        assert!(
            m.small_mean() > 55.0 && m.small_mean() < 85.0,
            "{}",
            m.small_mean()
        );
        // Bulk component is dominated by the 552 atom.
        assert!(
            m.bulk_mean() > 500.0 && m.bulk_mean() < 600.0,
            "{}",
            m.bulk_mean()
        );
        // At the calibrated baseline weight, the marginal mean is near
        // Table 2's per-second average of 226.
        let at_baseline = m.mean_size_at(0.340);
        assert!((at_baseline - 226.2).abs() < 8.0, "{at_baseline}");
    }

    #[test]
    fn quantile_structure_at_baseline() {
        // Empirical CDF checkpoints that pin Table 3's quantiles.
        let m = SizeModel::standard();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 400_000;
        let mut le40 = 0u32;
        let mut lt40 = 0u32;
        let mut le75 = 0u32;
        let mut le76 = 0u32;
        let mut le551 = 0u32;
        let mut le552 = 0u32;
        for _ in 0..n {
            let c = m.sample_class(0.340, &mut rng);
            let s = c.sample_size(&mut rng);
            if s < 40 {
                lt40 += 1;
            }
            if s <= 40 {
                le40 += 1;
            }
            if s <= 75 {
                le75 += 1;
            }
            if s <= 76 {
                le76 += 1;
            }
            if s <= 551 {
                le551 += 1;
            }
            if s <= 552 {
                le552 += 1;
            }
        }
        let f = |c: u32| f64::from(c) / f64::from(n);
        assert!(
            f(lt40) < 0.05,
            "5% quantile must be 40: F(<40) = {}",
            f(lt40)
        );
        assert!(
            f(le40) >= 0.25,
            "25% quantile must be 40: F(40) = {}",
            f(le40)
        );
        assert!(f(le75) < 0.5, "median must exceed 75: F(75) = {}", f(le75));
        assert!(f(le76) >= 0.5, "median must be 76: F(76) = {}", f(le76));
        assert!(f(le551) < 0.75, "75% must be 552: F(551) = {}", f(le551));
        assert!(f(le552) >= 0.95, "95% must be 552: F(552) = {}", f(le552));
    }

    #[test]
    fn bulk_weight_zero_and_one_select_components() {
        let m = SizeModel::standard();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let c = m.sample_class(0.0, &mut rng);
            assert!(c.mean_size() < 170.0, "{c:?} from small component");
            let c = m.sample_class(1.0, &mut rng);
            assert!(c.mean_size() > 250.0, "{c:?} from bulk component");
        }
    }

    #[test]
    fn mean_size_responds_to_tilt() {
        let m = SizeModel::standard();
        // Table 2 mean-size extremes: 82 (quiet) to 398 (bulk-heavy).
        assert!(m.mean_size_at(0.04) < 95.0);
        assert!(m.mean_size_at(0.68) > 370.0);
    }
}
