//! # netsynth — calibrated synthetic wide-area traffic
//!
//! The SIGCOMM 1993 study this workspace reproduces ran its sampling
//! simulations over a proprietary one-hour packet trace (1.6 million
//! packets, SDSC → NSFNET E-NSS, 23 March 1993). That trace no longer
//! being available, this crate synthesizes a population with the same
//! published statistical structure, so that every experiment exercises the
//! same code paths against a population of the same shape:
//!
//! * **per-second packet rate** — an AR(1) log-normal intensity process
//!   with burst/lull episodes, calibrated to Table 2 (mean ≈ 424 pps,
//!   σ ≈ 85, right-skewed, heavy-tailed);
//! * **packet sizes** — the bimodal WAN mix of the era, calibrated to
//!   Table 3 (atoms at 40 and 552 bytes, median 76, min 28, max 1500,
//!   mean ≈ 232, σ ≈ 236), with a per-second *bulk tilt* correlated with
//!   the rate so bulk-transfer bursts raise both rate and mean size (the
//!   mechanism behind Table 2's mean-size spread);
//! * **interarrival times** — within-second exponential gaps with rare
//!   pause episodes, rate-modulated across seconds, then quantized by the
//!   400 µs capture clock, calibrated to Table 3 (mean ≈ 2358 µs,
//!   σ ≈ 2734, quartiles on the 400 µs grid);
//! * **protocol/port/network attributes** — an application mix (telnet,
//!   ftp-data, SMTP/NNTP, DNS, ICMP, NFS) consistent with each size
//!   class, plus Zipf-distributed network numbers, for the traffic-matrix
//!   and proportion-target experiments.
//!
//! Everything is deterministic under an explicit seed.
//!
//! The [`canonical`] module additionally provides the three *structured*
//! populations of the paper's §5 (randomly ordered, linear trend,
//! periodic), used to verify the classical sampling-theory orderings of
//! systematic vs stratified vs simple random sampling.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod apps;
pub mod canonical;
pub mod flows;
pub mod gen;
pub mod lanes;
pub mod pack;
pub mod profile;
pub mod rate;
pub mod replay;
pub mod sizes;

pub use flows::{generate_flows, FlowProfile};
pub use gen::{generate, sdsc_hour};
pub use lanes::{replay_lane, LaneConfig, LaneGen, ReplayLane};
pub use pack::{generate_flow_pack, FlowPackConfig, FlowSizeDist};
pub use profile::{PaperTargets, TraceProfile};
pub use replay::{PacedReader, ReplayConfig};
