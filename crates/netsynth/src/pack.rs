//! Flow-structured packs for the inversion suite.
//!
//! Unlike [`crate::flows`] — which models application temporal
//! signatures — a *flow pack* is built for exactly one question: given
//! packets that carry their parent **flow id** (and a SYN mark on each
//! flow's first packet), how well can the parent flow-size distribution
//! be recovered from a sampled packet stream? The pack therefore makes
//! the flow structure explicit and configurable: every packet is
//! assigned a flow id, flow sizes (packets per flow) are drawn from a
//! chosen distribution — Zipf, log-normal, or geometric — and flows
//! interleave by giving each flow a uniform start time and exponential
//! intra-flow gaps.
//!
//! The geometric pack is the calibration workhorse (closed-form
//! sampled-size expectations under 1-in-k thinning); the Zipf pack is
//! the heavy-tailed stress the related work runs on real traces.

use crate::apps::ZipfNets;
use nettrace::{ClockModel, Micros, PacketRecord, Protocol, Trace};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use statkit::rand_ext::{Exponential, Geometric, LogNormal, Zipf};

/// Parent flow-size distribution (packets per flow, always ≥ 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FlowSizeDist {
    /// Zipf over `{1, …, max_size}` with exponent `alpha` — the heavy
    /// -tailed shape measured flow-size distributions follow.
    Zipf {
        /// Largest representable flow size.
        max_size: usize,
        /// Power-law exponent (> 0).
        alpha: f64,
    },
    /// Log-normal with the given mean and standard deviation of the
    /// (packet-count) sizes, rounded up to ≥ 1.
    LogNormal {
        /// Mean flow size in packets.
        mean: f64,
        /// Standard deviation of the flow size.
        std: f64,
    },
    /// Geometric on `{1, 2, …}` with success probability `p` (mean
    /// `1/p`) — the calibration distribution with closed-form sampled
    /// expectations.
    Geometric {
        /// Success probability in `(0, 1]`.
        p: f64,
    },
}

/// Built samplers, constructed once per generation run.
pub(crate) enum SizeSampler {
    Zipf(Zipf),
    LogNormal(LogNormal),
    Geometric(Geometric),
}

impl SizeSampler {
    pub(crate) fn build(dist: FlowSizeDist) -> SizeSampler {
        match dist {
            FlowSizeDist::Zipf { max_size, alpha } => SizeSampler::Zipf(Zipf::new(max_size, alpha)),
            FlowSizeDist::LogNormal { mean, std } => {
                SizeSampler::LogNormal(LogNormal::from_mean_std(mean, std))
            }
            FlowSizeDist::Geometric { p } => SizeSampler::Geometric(Geometric::new(p)),
        }
    }

    pub(crate) fn sample(&self, rng: &mut StdRng, cap: u64) -> u64 {
        let s = match self {
            SizeSampler::Zipf(z) => z.sample(rng),
            SizeSampler::LogNormal(l) => l.sample(rng).ceil().max(1.0) as u64,
            SizeSampler::Geometric(g) => g.sample(rng),
        };
        s.clamp(1, cap)
    }
}

/// Parameters of a flow pack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowPackConfig {
    /// Number of parent flows; ids are `1..=flows`.
    pub flows: u32,
    /// Parent flow-size distribution.
    pub size_dist: FlowSizeDist,
    /// Flow start times are uniform over `[0, duration_secs)`.
    pub duration_secs: u32,
    /// Mean intra-flow packet gap, microseconds (exponential).
    pub mean_gap_us: f64,
    /// Hard cap on packets per flow (keeps a pathological draw from
    /// exploding memory).
    pub max_flow_packets: u64,
    /// Capture clock applied to the emitted trace.
    pub clock: ClockModel,
}

impl Default for FlowPackConfig {
    fn default() -> Self {
        FlowPackConfig {
            flows: 2_000,
            size_dist: FlowSizeDist::Zipf {
                max_size: 2_000,
                alpha: 1.1,
            },
            duration_secs: 60,
            mean_gap_us: 5_000.0,
            max_flow_packets: 100_000,
            clock: ClockModel::SDSC_1993,
        }
    }
}

impl FlowPackConfig {
    /// Sanity checks.
    ///
    /// # Panics
    /// Panics on degenerate parameters (zero flows/duration, bad gap or
    /// cap); distribution parameters are validated by their samplers.
    pub fn validate(&self) {
        assert!(self.flows > 0, "flow count must be positive");
        assert!(self.duration_secs > 0, "duration must be positive");
        assert!(
            self.mean_gap_us.is_finite() && self.mean_gap_us > 0.0,
            "mean gap must be positive"
        );
        assert!(self.max_flow_packets >= 1, "flow packet cap must be >= 1");
    }
}

/// Generate a flow pack, deterministic under `seed`. Each packet
/// carries its parent flow id; each flow's first packet carries the SYN
/// flag. The trace is the interleaving of all flows in time order.
#[must_use]
pub fn generate_flow_pack(cfg: &FlowPackConfig, seed: u64) -> Trace {
    cfg.validate();
    let mut rng = StdRng::seed_from_u64(seed);
    let sampler = SizeSampler::build(cfg.size_dist);
    let gap = Exponential::new(cfg.mean_gap_us);
    let nets = ZipfNets::standard();
    let horizon = u64::from(cfg.duration_secs) * 1_000_000;

    let mut packets = Vec::new();
    for flow in 1..=cfg.flows {
        let size = sampler.sample(&mut rng, cfg.max_flow_packets);
        let start = rng.random_range(0..horizon);
        let (src_net, dst_net) = nets.sample(&mut rng);
        let sport: u16 = rng.random_range(1024..=4999);
        let dport: u16 = [20u16, 25, 119, 80][rng.random_range(0..4usize)];
        let mut t = start as f64;
        for i in 0..size {
            if i > 0 {
                t += gap.sample(&mut rng);
            }
            packets.push(
                PacketRecord::new(Micros(t as u64), if i == 0 { 40 } else { 552 })
                    .with_protocol(Protocol::Tcp)
                    .with_ports(sport, dport)
                    .with_nets(src_net, dst_net)
                    .with_flow(flow, i == 0),
            );
        }
    }
    if obskit::recording_enabled() {
        // Feed the workspace-wide synthesis counter too, so `synth
        // --metrics` reports packet production for every profile.
        obskit::counter("netsynth_packets_generated_total").add(packets.len() as u64);
        obskit::counter("netsynth_flowpack_packets_total").add(packets.len() as u64);
        obskit::counter("netsynth_flowpack_flows_total").add(u64::from(cfg.flows));
    }
    Trace::from_unordered(packets).quantized(cfg.clock)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn small(dist: FlowSizeDist) -> FlowPackConfig {
        FlowPackConfig {
            flows: 200,
            size_dist: dist,
            duration_secs: 10,
            ..FlowPackConfig::default()
        }
    }

    fn by_flow(t: &Trace) -> BTreeMap<u32, (u64, u64)> {
        let mut m: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
        for p in t.iter() {
            let e = m.entry(p.flow_id).or_insert((0, 0));
            e.0 += 1;
            if p.syn() {
                e.1 += 1;
            }
        }
        m
    }

    #[test]
    fn every_flow_has_exactly_one_syn() {
        for dist in [
            FlowSizeDist::Zipf {
                max_size: 500,
                alpha: 1.2,
            },
            FlowSizeDist::LogNormal {
                mean: 20.0,
                std: 30.0,
            },
            FlowSizeDist::Geometric { p: 0.05 },
        ] {
            let t = generate_flow_pack(&small(dist), 1993);
            let flows = by_flow(&t);
            assert_eq!(flows.len(), 200, "{dist:?}");
            for (id, (pkts, syns)) in flows {
                assert!((1..=200).contains(&id));
                assert!(pkts >= 1);
                assert_eq!(syns, 1, "flow {id} under {dist:?}");
            }
        }
    }

    #[test]
    fn trace_is_time_ordered_and_deterministic() {
        let cfg = small(FlowSizeDist::Geometric { p: 0.02 });
        let a = generate_flow_pack(&cfg, 7);
        let b = generate_flow_pack(&cfg, 7);
        assert_eq!(a.packets(), b.packets());
        assert!(a
            .packets()
            .windows(2)
            .all(|w| w[0].timestamp <= w[1].timestamp));
        let c = generate_flow_pack(&cfg, 8);
        assert_ne!(a.packets(), c.packets(), "seed must matter");
    }

    #[test]
    fn geometric_pack_mean_size_tracks_parameter() {
        let cfg = FlowPackConfig {
            flows: 3_000,
            size_dist: FlowSizeDist::Geometric { p: 0.02 },
            duration_secs: 30,
            ..FlowPackConfig::default()
        };
        let t = generate_flow_pack(&cfg, 42);
        let mean = t.len() as f64 / 3_000.0;
        assert!((mean - 50.0).abs() < 3.0, "mean flow size {mean}");
    }

    #[test]
    fn size_cap_is_enforced() {
        let cfg = FlowPackConfig {
            flows: 50,
            size_dist: FlowSizeDist::Zipf {
                max_size: 100_000,
                alpha: 0.5,
            },
            max_flow_packets: 64,
            duration_secs: 5,
            ..FlowPackConfig::default()
        };
        let t = generate_flow_pack(&cfg, 3);
        for (_, (pkts, _)) in by_flow(&t) {
            assert!(pkts <= 64);
        }
    }

    #[test]
    #[should_panic(expected = "flow count")]
    fn zero_flows_panics() {
        let _ = generate_flow_pack(
            &FlowPackConfig {
                flows: 0,
                ..FlowPackConfig::default()
            },
            1,
        );
    }
}
