//! Comparing two [`BenchReport`]s: the regression gate.
//!
//! The diff walks every metric both reports share and classifies it by
//! direction:
//!
//! * **lower-is-better** — experiment wall times, timing means, bench
//!   medians (regression = `new > old * (1 + threshold)`);
//! * **higher-is-better** — sampler `pps` throughput (regression =
//!   `new < old * (1 - threshold)`).
//!
//! Only *robust* estimators arm the gate: experiment wall times (the
//! recorder reports the minimum over several passes) and criterion
//! medians. Histogram means and derived throughputs average every
//! call — including ones a busy machine preempted — so they flap far
//! past any sane threshold on shared hardware; the diff shows them
//! (verdict `worse`/`better`) but they never fail the gate.
//!
//! The default threshold is 25% ([`DEFAULT_THRESHOLD`]). A **noise
//! floor** keeps micro-measurements from flapping the gate: time
//! metrics whose baseline is under [`NOISE_FLOOR_US`] µs (or
//! [`NOISE_FLOOR_NS`] ns for bench medians) are reported but never
//! gated — at that scale scheduler jitter swamps any real change.
//! Metrics present in only one report are listed as added/removed and
//! never gated.

use crate::report::BenchReport;
use std::fmt::Write as _;

/// Default gate threshold: a metric may move 25% in the bad direction
/// before the diff counts it as a regression.
pub const DEFAULT_THRESHOLD: f64 = 0.25;

/// Time metrics with a baseline under this many µs are never gated.
pub const NOISE_FLOOR_US: f64 = 100.0;

/// Bench medians with a baseline under this many ns are never gated.
pub const NOISE_FLOOR_NS: f64 = 10_000.0;

/// Which way "better" points for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Smaller values are better (durations).
    LowerIsBetter,
    /// Larger values are better (throughput).
    HigherIsBetter,
}

/// One compared metric.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Display name, e.g. `experiment/cell/systematic wall_us`.
    pub name: String,
    /// Baseline value.
    pub old: f64,
    /// New value.
    pub new: f64,
    /// Which way better points.
    pub direction: Direction,
    /// Signed relative change, `(new - old) / old`.
    pub ratio: f64,
    /// True when this metric class arms the regression gate (false for
    /// noisy informational metrics: histogram means, derived pps).
    pub gated: bool,
    /// True when the change crossed the threshold in the bad direction
    /// on a gated metric above the noise floor.
    pub regressed: bool,
    /// True when this metric sat under the noise floor (informational
    /// only; never gated).
    pub below_noise_floor: bool,
}

/// The full comparison of two reports.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Baseline version number.
    pub old_version: u64,
    /// New version number.
    pub new_version: u64,
    /// Threshold the gate used.
    pub threshold: f64,
    /// Every metric present in both reports.
    pub deltas: Vec<MetricDelta>,
    /// Metric names only in the new report.
    pub added: Vec<String>,
    /// Metric names only in the baseline.
    pub removed: Vec<String>,
}

impl DiffReport {
    /// All deltas that crossed the gate.
    #[must_use]
    pub fn regressions(&self) -> Vec<&MetricDelta> {
        self.deltas.iter().filter(|d| d.regressed).collect()
    }

    /// True when at least one metric regressed past the threshold.
    #[must_use]
    pub fn has_regressions(&self) -> bool {
        self.deltas.iter().any(|d| d.regressed)
    }

    /// Render a human-readable diff table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "perf diff: BENCH_{} -> BENCH_{} (gate at {:.0}%)",
            self.old_version,
            self.new_version,
            self.threshold * 100.0
        );
        let _ = writeln!(
            out,
            "  {:<56} {:>14} {:>14} {:>9}  verdict",
            "metric", "old", "new", "change"
        );
        for d in &self.deltas {
            let bad = match d.direction {
                Direction::LowerIsBetter => d.ratio > self.threshold,
                Direction::HigherIsBetter => d.ratio < -self.threshold,
            };
            let improved = match d.direction {
                Direction::LowerIsBetter => d.ratio < -0.05,
                Direction::HigherIsBetter => d.ratio > 0.05,
            };
            let verdict = if d.regressed {
                "REGRESSED"
            } else if d.below_noise_floor {
                "noise"
            } else if bad {
                // Informational metric past the threshold: visible, not
                // gate-failing.
                "worse (not gated)"
            } else if improved {
                "improved"
            } else {
                "ok"
            };
            let _ = writeln!(
                out,
                "  {:<56} {:>14.1} {:>14.1} {:>+8.1}%  {}",
                d.name,
                d.old,
                d.new,
                d.ratio * 100.0,
                verdict
            );
        }
        for name in &self.added {
            let _ = writeln!(out, "  {name:<56} (new metric)");
        }
        for name in &self.removed {
            let _ = writeln!(out, "  {name:<56} (removed)");
        }
        let regs = self.regressions();
        if regs.is_empty() {
            let _ = writeln!(
                out,
                "no regressions past the {:.0}% gate",
                self.threshold * 100.0
            );
        } else {
            let _ = writeln!(
                out,
                "{} regression(s) past the {:.0}% gate:",
                regs.len(),
                self.threshold * 100.0
            );
            for d in regs {
                let _ = writeln!(out, "  - {} ({:+.1}%)", d.name, d.ratio * 100.0);
            }
        }
        out
    }
}

struct Metric {
    name: String,
    value: f64,
    direction: Direction,
    noise_floor: f64,
    gated: bool,
}

/// Flatten a report into the comparable metric list.
fn metrics_of(r: &BenchReport) -> Vec<Metric> {
    let mut out = Vec::new();
    for e in &r.experiments {
        out.push(Metric {
            name: format!("experiment/{} wall_us", e.name),
            value: e.wall_us as f64,
            direction: Direction::LowerIsBetter,
            noise_floor: NOISE_FLOOR_US,
            gated: true,
        });
    }
    for s in &r.samplers {
        out.push(Metric {
            name: format!("sampler/{} pps", s.method),
            value: s.pps,
            direction: Direction::HigherIsBetter,
            noise_floor: 0.0,
            // Derived from the total select time, which averages every
            // call including preempted ones: informational only.
            gated: false,
        });
    }
    for t in &r.timings {
        out.push(Metric {
            name: format!("timing/{} mean_us", t.name),
            value: t.mean_us,
            direction: Direction::LowerIsBetter,
            noise_floor: NOISE_FLOOR_US,
            // Histogram means carry all measurement noise: informational.
            gated: false,
        });
    }
    for b in &r.benches {
        out.push(Metric {
            name: format!("bench/{} median_ns", b.name),
            value: b.median_ns as f64,
            direction: Direction::LowerIsBetter,
            noise_floor: NOISE_FLOOR_NS,
            gated: true,
        });
    }
    out
}

/// Compare `new` against the `old` baseline with the given gate
/// threshold (fraction, e.g. `0.25`).
#[must_use]
pub fn diff(old: &BenchReport, new: &BenchReport, threshold: f64) -> DiffReport {
    let old_metrics = metrics_of(old);
    let new_metrics = metrics_of(new);
    let mut deltas = Vec::new();
    let mut added = Vec::new();
    let mut matched_old = vec![false; old_metrics.len()];
    for n in &new_metrics {
        let Some((i, o)) = old_metrics
            .iter()
            .enumerate()
            .find(|(_, o)| o.name == n.name)
        else {
            added.push(n.name.clone());
            continue;
        };
        matched_old[i] = true;
        let ratio = if o.value.abs() > f64::EPSILON {
            (n.value - o.value) / o.value
        } else {
            0.0
        };
        let below_noise_floor = o.value < n.noise_floor;
        let bad = match n.direction {
            Direction::LowerIsBetter => ratio > threshold,
            Direction::HigherIsBetter => ratio < -threshold,
        };
        deltas.push(MetricDelta {
            name: n.name.clone(),
            old: o.value,
            new: n.value,
            direction: n.direction,
            ratio,
            gated: n.gated,
            regressed: bad && n.gated && !below_noise_floor,
            below_noise_floor,
        });
    }
    let removed = old_metrics
        .iter()
        .zip(&matched_old)
        .filter(|(_, m)| !**m)
        .map(|(o, _)| o.name.clone())
        .collect();
    DiffReport {
        old_version: old.bench_version,
        new_version: new.bench_version,
        threshold,
        deltas,
        added,
        removed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{BenchStat, ExperimentTime, RunMeta, SamplerStat, TimingStat};

    fn report(wall_us: u64, pps: f64, median_ns: u64) -> BenchReport {
        BenchReport {
            bench_version: 1,
            run: RunMeta::default(),
            experiments: vec![ExperimentTime {
                name: "cell/systematic".into(),
                wall_us,
            }],
            samplers: vec![SamplerStat {
                method: "systematic".into(),
                examined: 1_000_000,
                selected: 20_000,
                select_us: 1000,
                pps,
            }],
            timings: vec![TimingStat {
                name: "sampling_select_duration_us".into(),
                count: 10,
                mean_us: wall_us as f64 / 10.0,
                p50_us: 1,
                p90_us: 2,
                p99_us: 3,
                max_us: 4,
            }],
            benches: vec![BenchStat {
                name: "samplers/systematic/50".into(),
                median_ns,
            }],
            gauges: vec![],
            spans: vec![],
        }
    }

    #[test]
    fn identical_reports_have_no_regressions() {
        let r = report(10_000, 1e9, 500_000);
        let d = diff(&r, &r, DEFAULT_THRESHOLD);
        assert!(!d.has_regressions(), "{}", d.render());
        assert!(d.added.is_empty() && d.removed.is_empty());
    }

    #[test]
    fn slower_wall_time_past_threshold_regresses() {
        let old = report(10_000, 1e9, 500_000);
        let new = report(14_000, 1e9, 500_000); // +40% wall
        let d = diff(&old, &new, DEFAULT_THRESHOLD);
        assert!(d.has_regressions());
        let names: Vec<_> = d.regressions().iter().map(|r| r.name.clone()).collect();
        assert!(
            names.iter().any(|n| n.contains("wall_us")),
            "regressions: {names:?}"
        );
        // Within threshold does not gate.
        let ok = report(12_000, 1e9, 500_000); // +20%
        assert!(!diff(&old, &ok, DEFAULT_THRESHOLD).has_regressions());
    }

    #[test]
    fn throughput_drop_is_visible_but_informational() {
        let old = report(10_000, 1e9, 500_000);
        let slow = report(10_000, 0.6e9, 500_000); // -40% pps
        let d = diff(&old, &slow, DEFAULT_THRESHOLD);
        // pps is derived from noisy totals: shown as worse, never gated.
        let pps = d.deltas.iter().find(|x| x.name.contains("pps")).unwrap();
        assert_eq!(pps.direction, Direction::HigherIsBetter);
        assert!(pps.ratio < -DEFAULT_THRESHOLD && !pps.gated && !pps.regressed);
        assert!(d.render().contains("worse (not gated)"), "{}", d.render());
        assert!(!d.has_regressions());
        let fast = report(10_000, 2e9, 500_000);
        assert!(!diff(&old, &fast, DEFAULT_THRESHOLD).has_regressions());
    }

    #[test]
    fn histogram_means_are_informational_too() {
        let old = report(10_000, 1e9, 500_000);
        let mut new = report(10_000, 1e9, 500_000);
        new.timings[0].mean_us *= 10.0;
        let d = diff(&old, &new, DEFAULT_THRESHOLD);
        let t = d
            .deltas
            .iter()
            .find(|x| x.name.starts_with("timing/"))
            .unwrap();
        assert!(!t.gated && !t.regressed);
        assert!(!d.has_regressions());
    }

    #[test]
    fn noise_floor_suppresses_tiny_time_gates() {
        // 50µs -> 500µs is a 10x slowdown, but the 50µs baseline is
        // under the 100µs floor: report it, never gate it.
        let old = report(50, 1e9, 500_000);
        let new = report(500, 1e9, 500_000);
        let d = diff(&old, &new, DEFAULT_THRESHOLD);
        let wall = d
            .deltas
            .iter()
            .find(|x| x.name.contains("wall_us"))
            .unwrap();
        assert!(wall.below_noise_floor && !wall.regressed, "{wall:?}");
        // Bench medians use the ns floor: 5µs baseline is noise...
        let old_b = report(10_000, 1e9, 5_000);
        let new_b = report(10_000, 1e9, 50_000);
        assert!(!diff(&old_b, &new_b, DEFAULT_THRESHOLD).has_regressions());
        // ...but a 500µs baseline is not.
        let old_b = report(10_000, 1e9, 500_000);
        let new_b = report(10_000, 1e9, 5_000_000);
        assert!(diff(&old_b, &new_b, DEFAULT_THRESHOLD).has_regressions());
    }

    #[test]
    fn added_and_removed_metrics_are_listed_not_gated() {
        let old = report(10_000, 1e9, 500_000);
        let mut new = report(10_000, 1e9, 500_000);
        new.benches.push(BenchStat {
            name: "samplers/geometric/50".into(),
            median_ns: 1,
        });
        new.experiments.clear();
        let d = diff(&old, &new, DEFAULT_THRESHOLD);
        assert!(!d.has_regressions());
        assert_eq!(d.added, vec!["bench/samplers/geometric/50 median_ns"]);
        assert_eq!(d.removed, vec!["experiment/cell/systematic wall_us"]);
    }

    #[test]
    fn render_shows_verdicts_and_summary_line() {
        let old = report(10_000, 1e9, 500_000);
        let new = report(14_000, 1e9, 500_000);
        let text = diff(&old, &new, DEFAULT_THRESHOLD).render();
        assert!(text.contains("REGRESSED"), "{text}");
        assert!(text.contains("regression(s) past the 25% gate"), "{text}");
        let clean = diff(&old, &old, DEFAULT_THRESHOLD).render();
        assert!(clean.contains("no regressions"), "{clean}");
    }

    #[test]
    fn zero_baseline_does_not_divide_by_zero() {
        let mut old = report(10_000, 0.0, 500_000);
        old.samplers[0].pps = 0.0;
        let new = report(10_000, 1e9, 500_000);
        let d = diff(&old, &new, DEFAULT_THRESHOLD);
        let pps = d.deltas.iter().find(|x| x.name.contains("pps")).unwrap();
        assert_eq!(pps.ratio, 0.0);
        assert!(!pps.regressed);
    }
}
