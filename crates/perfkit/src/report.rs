//! The `BENCH_<n>.json` report: schema, collection, and the on-disk
//! trajectory.
//!
//! A [`BenchReport`] is a machine-readable record of how fast one
//! instrumented run was. Reports are written as `BENCH_<n>.json` with
//! strictly increasing `<n>`, so a directory of them is a performance
//! *trajectory*: the newest prior file is the baseline the next run is
//! diffed against (see [`crate::diff`]).
//!
//! ## Schema (`schema_version` 1)
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "bench_version": 3,
//!   "run": { "ts_us": 0, "source": "perf-record", "seed": 1993, "packets": 100000,
//!            "jobs": 1 },
//!   "experiments": [ { "name": "cell/systematic", "wall_us": 5200 } ],
//!   "samplers":    [ { "method": "systematic", "examined": 300000,
//!                      "selected": 6000, "select_us": 900, "pps": 333333333.3 } ],
//!   "timings":     [ { "name": "statkit_chi2_sf_duration_us", "count": 15,
//!                      "mean_us": 12.0, "p50_us": 11, "p90_us": 14, "p99_us": 14, "max_us": 31 } ],
//!   "benches":     [ { "name": "samplers/systematic/50", "median_ns": 287000 } ],
//!   "gauges":      [ { "name": "parkit_speedup_x1000", "value": 3210 } ],
//!   "spans":       [ { "path": "perf_record;sampling_select", "count": 15,
//!                      "total_us": 4000, "self_us": 4000 } ]
//! }
//! ```
//!
//! * `experiments` — wall time per named experiment/cell (lower is
//!   better);
//! * `samplers` — per-method `select_indices` cost from the obskit
//!   counters/histograms; `pps` is examined-packets per second of
//!   selection time (higher is better);
//! * `timings` — percentile summaries of every `*_duration_us`
//!   histogram (χ²/φ evaluation time lives here);
//! * `benches` — criterion-shim medians, when the run was a bench run;
//! * `gauges` — informational gauges (the parallel speedup probe and
//!   pool width land here); never gated by the diff, and both `run.jobs`
//!   and `gauges` are absent from pre-parallelism reports (parsed as
//!   `jobs = 1`, no gauges);
//! * `spans` — the aggregated hierarchical span tree (folded-stack
//!   source).

use crate::json::Json;
use obskit::{HistogramSnapshot, SnapshotValue, SpanNode};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Current schema version written into every report.
pub const SCHEMA_VERSION: u64 = 1;

/// Metadata describing one recorded run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunMeta {
    /// Wall-clock microseconds since the Unix epoch at report time.
    pub ts_us: u64,
    /// What produced the report: `perf-record`, `repro_all`, `criterion`.
    pub source: String,
    /// The workload's base random seed.
    pub seed: u64,
    /// Number of packets in the driving population (0 if not packet-based).
    pub packets: u64,
    /// Worker-pool width the run executed with (`--jobs`). Reports
    /// predating the field parse as 1 — they were all serial.
    pub jobs: u64,
}

/// Wall time of one named experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentTime {
    /// Experiment/cell name.
    pub name: String,
    /// Wall-clock duration in microseconds.
    pub wall_us: u64,
}

/// Per-method `select_indices` cost.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplerStat {
    /// The sampler's `method_name()` label.
    pub method: String,
    /// Packets offered across all calls.
    pub examined: u64,
    /// Packets selected across all calls.
    pub selected: u64,
    /// Total time spent inside `select_indices`, µs.
    pub select_us: u64,
    /// Selection throughput: examined packets per second of select time.
    pub pps: f64,
}

/// Percentile summary of one duration histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingStat {
    /// Full registry key (name plus any label block).
    pub name: String,
    /// Observation count.
    pub count: u64,
    /// Mean, µs.
    pub mean_us: f64,
    /// Median estimate, µs.
    pub p50_us: u64,
    /// 90th percentile estimate, µs.
    pub p90_us: u64,
    /// 99th percentile estimate, µs.
    pub p99_us: u64,
    /// Largest recorded value, µs.
    pub max_us: u64,
}

/// One criterion-shim benchmark result.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchStat {
    /// Benchmark label (`group/function`).
    pub name: String,
    /// Median per-iteration time, nanoseconds.
    pub median_ns: u64,
}

/// One recorded gauge (informational, never gated — e.g. the parallel
/// speedup probe's `parkit_speedup_x1000`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeStat {
    /// Full registry key.
    pub name: String,
    /// Gauge value at collection time.
    pub value: i64,
}

/// A complete performance report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchReport {
    /// The `<n>` of `BENCH_<n>.json` (0 until assigned by
    /// [`BenchReport::write_next`]).
    pub bench_version: u64,
    /// Run metadata.
    pub run: RunMeta,
    /// Per-experiment wall times.
    pub experiments: Vec<ExperimentTime>,
    /// Per-method selection throughput.
    pub samplers: Vec<SamplerStat>,
    /// Duration-histogram percentile summaries.
    pub timings: Vec<TimingStat>,
    /// Criterion-shim medians.
    pub benches: Vec<BenchStat>,
    /// Informational gauges (`parkit_*`: pool width, speedup probe).
    pub gauges: Vec<GaugeStat>,
    /// Aggregated span tree.
    pub spans: Vec<SpanNode>,
}

fn timing_from(name: &str, s: &HistogramSnapshot) -> TimingStat {
    TimingStat {
        name: name.to_string(),
        count: s.count,
        mean_us: s.mean(),
        p50_us: s.percentile(50.0).unwrap_or(0),
        p90_us: s.percentile(90.0).unwrap_or(0),
        p99_us: s.percentile(99.0).unwrap_or(0),
        max_us: s.max,
    }
}

/// Pull the label value out of `name{...,key="v",...}`.
fn label_value(key: &str, label: &str) -> Option<String> {
    let (_, block) = key.split_once('{')?;
    let block = block.strip_suffix('}')?;
    for part in block.split(',') {
        let (k, v) = part.split_once('=')?;
        if k == label {
            return Some(v.trim_matches('"').to_string());
        }
    }
    None
}

impl BenchReport {
    /// Build a report from the current obskit global registry and span
    /// tree. `experiments` carries externally timed wall clocks (the
    /// registry cannot know what one "experiment" spans).
    #[must_use]
    pub fn collect(run: RunMeta, experiments: Vec<ExperimentTime>) -> BenchReport {
        let snapshot = obskit::global().snapshot();
        let mut samplers: Vec<SamplerStat> = Vec::new();
        let mut timings = Vec::new();
        let mut benches = Vec::new();
        let mut gauges = Vec::new();
        for (key, value) in &snapshot {
            match value {
                SnapshotValue::Histogram(h) if key.starts_with("sampling_select_duration_us{") => {
                    if let Some(method) = label_value(key, "method") {
                        samplers.push(SamplerStat {
                            method,
                            examined: 0,
                            selected: 0,
                            select_us: h.sum,
                            pps: 0.0,
                        });
                    }
                    timings.push(timing_from(key, h));
                }
                SnapshotValue::Histogram(h) if key.contains("_duration_us") => {
                    timings.push(timing_from(key, h));
                }
                SnapshotValue::Gauge(v) if key.starts_with("criterion_median_ns{") => {
                    if let Some(name) = label_value(key, "bench") {
                        benches.push(BenchStat {
                            name,
                            median_ns: (*v).max(0) as u64,
                        });
                    }
                }
                SnapshotValue::Gauge(v) if key.starts_with("parkit_") => {
                    gauges.push(GaugeStat {
                        name: key.clone(),
                        value: *v,
                    });
                }
                _ => {}
            }
        }
        for s in &mut samplers {
            let counter = |name: &str| {
                let key = format!("{name}{{method=\"{}\"}}", s.method);
                snapshot
                    .iter()
                    .find(|(k, _)| *k == key)
                    .and_then(|(_, v)| match v {
                        SnapshotValue::Counter(c) => Some(*c),
                        _ => None,
                    })
            };
            s.examined = counter("sampling_packets_examined_total").unwrap_or(0);
            s.selected = counter("sampling_packets_selected_total").unwrap_or(0);
            s.pps = if s.select_us > 0 {
                s.examined as f64 / (s.select_us as f64 / 1e6)
            } else {
                0.0
            };
        }
        BenchReport {
            bench_version: 0,
            run,
            experiments,
            samplers,
            timings,
            benches,
            gauges,
            spans: obskit::tree::snapshot(),
        }
    }

    /// Serialize to the documented JSON schema.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema_version".into(), Json::Num(SCHEMA_VERSION as f64)),
            ("bench_version".into(), Json::Num(self.bench_version as f64)),
            (
                "run".into(),
                Json::Obj(vec![
                    ("ts_us".into(), Json::Num(self.run.ts_us as f64)),
                    ("source".into(), Json::Str(self.run.source.clone())),
                    ("seed".into(), Json::Num(self.run.seed as f64)),
                    ("packets".into(), Json::Num(self.run.packets as f64)),
                    ("jobs".into(), Json::Num(self.run.jobs as f64)),
                ]),
            ),
            (
                "experiments".into(),
                Json::Arr(
                    self.experiments
                        .iter()
                        .map(|e| {
                            Json::Obj(vec![
                                ("name".into(), Json::Str(e.name.clone())),
                                ("wall_us".into(), Json::Num(e.wall_us as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "samplers".into(),
                Json::Arr(
                    self.samplers
                        .iter()
                        .map(|s| {
                            Json::Obj(vec![
                                ("method".into(), Json::Str(s.method.clone())),
                                ("examined".into(), Json::Num(s.examined as f64)),
                                ("selected".into(), Json::Num(s.selected as f64)),
                                ("select_us".into(), Json::Num(s.select_us as f64)),
                                ("pps".into(), Json::Num(s.pps)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "timings".into(),
                Json::Arr(
                    self.timings
                        .iter()
                        .map(|t| {
                            Json::Obj(vec![
                                ("name".into(), Json::Str(t.name.clone())),
                                ("count".into(), Json::Num(t.count as f64)),
                                ("mean_us".into(), Json::Num(t.mean_us)),
                                ("p50_us".into(), Json::Num(t.p50_us as f64)),
                                ("p90_us".into(), Json::Num(t.p90_us as f64)),
                                ("p99_us".into(), Json::Num(t.p99_us as f64)),
                                ("max_us".into(), Json::Num(t.max_us as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "benches".into(),
                Json::Arr(
                    self.benches
                        .iter()
                        .map(|b| {
                            Json::Obj(vec![
                                ("name".into(), Json::Str(b.name.clone())),
                                ("median_ns".into(), Json::Num(b.median_ns as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "gauges".into(),
                Json::Arr(
                    self.gauges
                        .iter()
                        .map(|g| {
                            Json::Obj(vec![
                                ("name".into(), Json::Str(g.name.clone())),
                                ("value".into(), Json::Num(g.value as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "spans".into(),
                Json::Arr(
                    self.spans
                        .iter()
                        .map(|n| {
                            Json::Obj(vec![
                                ("path".into(), Json::Str(n.path.clone())),
                                ("count".into(), Json::Num(n.count as f64)),
                                ("total_us".into(), Json::Num(n.total_us as f64)),
                                ("self_us".into(), Json::Num(n.self_us as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Deserialize from the documented JSON schema.
    ///
    /// # Errors
    /// Describes the first missing/ill-typed field; unknown fields are
    /// ignored (schema evolution stays backward-readable).
    pub fn from_json(v: &Json) -> Result<BenchReport, String> {
        let schema = v
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("missing schema_version")?;
        if schema > SCHEMA_VERSION {
            return Err(format!(
                "schema_version {schema} is newer than supported {SCHEMA_VERSION}"
            ));
        }
        let run = v.get("run").ok_or("missing run")?;
        let get_u64 = |obj: &Json, key: &str| obj.get(key).and_then(Json::as_u64).unwrap_or(0);
        let get_f64 = |obj: &Json, key: &str| obj.get(key).and_then(Json::as_f64).unwrap_or(0.0);
        let get_str = |obj: &Json, key: &str| {
            obj.get(key)
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string()
        };
        let arr = |key: &str| -> Vec<&Json> {
            v.get(key)
                .and_then(Json::as_arr)
                .map(|a| a.iter().collect())
                .unwrap_or_default()
        };
        Ok(BenchReport {
            bench_version: get_u64(v, "bench_version"),
            run: RunMeta {
                ts_us: get_u64(run, "ts_us"),
                source: get_str(run, "source"),
                seed: get_u64(run, "seed"),
                packets: get_u64(run, "packets"),
                // Pre-parallelism reports have no jobs field: serial.
                jobs: run.get("jobs").and_then(Json::as_u64).unwrap_or(1),
            },
            experiments: arr("experiments")
                .into_iter()
                .map(|e| ExperimentTime {
                    name: get_str(e, "name"),
                    wall_us: get_u64(e, "wall_us"),
                })
                .collect(),
            samplers: arr("samplers")
                .into_iter()
                .map(|s| SamplerStat {
                    method: get_str(s, "method"),
                    examined: get_u64(s, "examined"),
                    selected: get_u64(s, "selected"),
                    select_us: get_u64(s, "select_us"),
                    pps: get_f64(s, "pps"),
                })
                .collect(),
            timings: arr("timings")
                .into_iter()
                .map(|t| TimingStat {
                    name: get_str(t, "name"),
                    count: get_u64(t, "count"),
                    mean_us: get_f64(t, "mean_us"),
                    p50_us: get_u64(t, "p50_us"),
                    p90_us: get_u64(t, "p90_us"),
                    p99_us: get_u64(t, "p99_us"),
                    max_us: get_u64(t, "max_us"),
                })
                .collect(),
            benches: arr("benches")
                .into_iter()
                .map(|b| BenchStat {
                    name: get_str(b, "name"),
                    median_ns: get_u64(b, "median_ns"),
                })
                .collect(),
            gauges: arr("gauges")
                .into_iter()
                .map(|g| GaugeStat {
                    name: get_str(g, "name"),
                    value: g.get("value").and_then(Json::as_f64).unwrap_or(0.0) as i64,
                })
                .collect(),
            spans: arr("spans")
                .into_iter()
                .map(|n| SpanNode {
                    path: get_str(n, "path"),
                    count: get_u64(n, "count"),
                    total_us: get_u64(n, "total_us"),
                    self_us: get_u64(n, "self_us"),
                })
                .collect(),
        })
    }

    /// Load a report from a file.
    ///
    /// # Errors
    /// I/O or schema errors, annotated with the path.
    pub fn load(path: &Path) -> Result<BenchReport, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let json =
            Json::parse(&text).map_err(|e| format!("{}: invalid JSON: {e}", path.display()))?;
        BenchReport::from_json(&json).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Write this report as the next `BENCH_<n>.json` in `dir`
    /// (`latest + 1`, starting at 1), setting `bench_version`.
    ///
    /// # Errors
    /// Propagates directory-scan and write failures.
    pub fn write_next(&mut self, dir: &Path) -> Result<PathBuf, String> {
        let next = latest_in(dir).map_or(1, |(_, n)| n + 1);
        self.bench_version = next;
        let path = dir.join(format!("BENCH_{next}.json"));
        std::fs::write(&path, self.to_json().render())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        Ok(path)
    }

    /// Render a human-readable summary of the report.
    #[must_use]
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "BENCH_{} — source {} (seed {}, {} packets, {} jobs)",
            self.bench_version,
            self.run.source,
            self.run.seed,
            self.run.packets,
            self.run.jobs.max(1)
        );
        if !self.experiments.is_empty() {
            let _ = writeln!(out, "\nexperiments:");
            let _ = writeln!(out, "  {:<32} {:>12}", "name", "wall_us");
            for e in &self.experiments {
                let _ = writeln!(out, "  {:<32} {:>12}", e.name, e.wall_us);
            }
        }
        if !self.samplers.is_empty() {
            let _ = writeln!(out, "\nsamplers (select_indices):");
            let _ = writeln!(
                out,
                "  {:<14} {:>12} {:>10} {:>12} {:>14}",
                "method", "examined", "selected", "select_us", "pkts/sec"
            );
            for s in &self.samplers {
                let _ = writeln!(
                    out,
                    "  {:<14} {:>12} {:>10} {:>12} {:>14.0}",
                    s.method, s.examined, s.selected, s.select_us, s.pps
                );
            }
        }
        if !self.benches.is_empty() {
            let _ = writeln!(out, "\nbenches:");
            let _ = writeln!(out, "  {:<44} {:>12}", "name", "median_ns");
            for b in &self.benches {
                let _ = writeln!(out, "  {:<44} {:>12}", b.name, b.median_ns);
            }
        }
        if !self.timings.is_empty() {
            let _ = writeln!(out, "\ntimings (µs):");
            let _ = writeln!(
                out,
                "  {:<52} {:>8} {:>9} {:>7} {:>7} {:>7} {:>8}",
                "histogram", "count", "mean", "p50", "p90", "p99", "max"
            );
            for t in &self.timings {
                let _ = writeln!(
                    out,
                    "  {:<52} {:>8} {:>9.1} {:>7} {:>7} {:>7} {:>8}",
                    t.name, t.count, t.mean_us, t.p50_us, t.p90_us, t.p99_us, t.max_us
                );
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "\ngauges:");
            let _ = writeln!(out, "  {:<44} {:>12}", "name", "value");
            for g in &self.gauges {
                let _ = writeln!(out, "  {:<44} {:>12}", g.name, g.value);
            }
        }
        if !self.spans.is_empty() {
            let _ = writeln!(out, "\nspan tree:");
            out.push_str(&obskit::tree::render_tree_from(&self.spans));
        }
        out
    }

    /// Render the report's span tree in folded-stack format.
    #[must_use]
    pub fn render_folded(&self) -> String {
        obskit::tree::render_folded_from(&self.spans)
    }
}

/// The newest `BENCH_<n>.json` in `dir` (largest `<n>`), if any.
#[must_use]
pub fn latest_in(dir: &Path) -> Option<(PathBuf, u64)> {
    let mut best: Option<(PathBuf, u64)> = None;
    for entry in std::fs::read_dir(dir).ok()?.flatten() {
        let name = entry.file_name();
        let Some(n) = name
            .to_str()
            .and_then(|s| s.strip_prefix("BENCH_"))
            .and_then(|s| s.strip_suffix(".json"))
            .and_then(|s| s.parse::<u64>().ok())
        else {
            continue;
        };
        if best.as_ref().is_none_or(|(_, b)| n > *b) {
            best = Some((entry.path(), n));
        }
    }
    best
}

/// The newest report in `dir` *older than* version `than`, if any — the
/// diff baseline for a freshly written report.
#[must_use]
pub fn baseline_before(dir: &Path, than: u64) -> Option<(PathBuf, u64)> {
    let mut best: Option<(PathBuf, u64)> = None;
    for entry in std::fs::read_dir(dir).ok()?.flatten() {
        let name = entry.file_name();
        let Some(n) = name
            .to_str()
            .and_then(|s| s.strip_prefix("BENCH_"))
            .and_then(|s| s.strip_suffix(".json"))
            .and_then(|s| s.parse::<u64>().ok())
        else {
            continue;
        };
        if n < than && best.as_ref().is_none_or(|(_, b)| n > *b) {
            best = Some((entry.path(), n));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        BenchReport {
            bench_version: 0,
            run: RunMeta {
                ts_us: 1_700_000_000_000_000,
                source: "test".into(),
                seed: 1993,
                packets: 100_000,
                jobs: 4,
            },
            experiments: vec![ExperimentTime {
                name: "cell/systematic".into(),
                wall_us: 5200,
            }],
            samplers: vec![SamplerStat {
                method: "systematic".into(),
                examined: 300_000,
                selected: 6_000,
                select_us: 900,
                pps: 333_333_333.3,
            }],
            timings: vec![TimingStat {
                name: "statkit_chi2_sf_duration_us".into(),
                count: 15,
                mean_us: 12.0,
                p50_us: 11,
                p90_us: 14,
                p99_us: 14,
                max_us: 31,
            }],
            benches: vec![BenchStat {
                name: "samplers/systematic/50".into(),
                median_ns: 287_000,
            }],
            gauges: vec![GaugeStat {
                name: "parkit_speedup_x1000".into(),
                value: 3_210,
            }],
            spans: vec![SpanNode {
                path: "perf_record;sampling_select".into(),
                count: 15,
                total_us: 4000,
                self_us: 4000,
            }],
        }
    }

    #[test]
    fn json_round_trip_is_lossless_modulo_float_text() {
        let r = sample_report();
        let parsed = BenchReport::from_json(&Json::parse(&r.to_json().render()).unwrap()).unwrap();
        assert_eq!(parsed.run, r.run);
        assert_eq!(parsed.experiments, r.experiments);
        assert_eq!(parsed.samplers[0].method, "systematic");
        assert_eq!(parsed.samplers[0].examined, 300_000);
        assert!((parsed.samplers[0].pps - r.samplers[0].pps).abs() < 1.0);
        assert_eq!(parsed.timings, r.timings);
        assert_eq!(parsed.benches, r.benches);
        assert_eq!(parsed.gauges, r.gauges);
        assert_eq!(parsed.spans, r.spans);
        assert_eq!(parsed.run.jobs, 4);
    }

    #[test]
    fn pre_parallelism_reports_parse_as_serial() {
        // A report written before the jobs/gauges fields existed must
        // read back as a 1-job run with no gauges.
        let v = Json::parse(
            r#"{"schema_version": 1, "bench_version": 1,
                "run": {"ts_us": 0, "source": "old", "seed": 1, "packets": 10}}"#,
        )
        .unwrap();
        let r = BenchReport::from_json(&v).unwrap();
        assert_eq!(r.run.jobs, 1);
        assert!(r.gauges.is_empty());
    }

    #[test]
    fn trajectory_versions_increment() {
        let dir = std::env::temp_dir().join(format!("perfkit_traj_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(latest_in(&dir).is_none());
        let mut r = sample_report();
        let p1 = r.write_next(&dir).unwrap();
        assert!(p1.ends_with("BENCH_1.json"));
        assert_eq!(r.bench_version, 1);
        let p2 = sample_report().write_next(&dir).unwrap();
        assert!(p2.ends_with("BENCH_2.json"));
        let (latest, n) = latest_in(&dir).unwrap();
        assert_eq!(n, 2);
        assert!(latest.ends_with("BENCH_2.json"));
        let (base, bn) = baseline_before(&dir, 2).unwrap();
        assert_eq!(bn, 1);
        assert!(base.ends_with("BENCH_1.json"));
        assert!(baseline_before(&dir, 1).is_none());
        // Unrelated files are ignored.
        std::fs::write(dir.join("BENCH_x.json"), "{}").unwrap();
        std::fs::write(dir.join("notes.txt"), "hi").unwrap();
        assert_eq!(latest_in(&dir).unwrap().1, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_reports_errors_with_path_context() {
        let missing = Path::new("/nonexistent/BENCH_1.json");
        let e = BenchReport::load(missing).unwrap_err();
        assert!(e.contains("BENCH_1.json"), "{e}");
        let dir = std::env::temp_dir().join(format!("perfkit_load_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("BENCH_9.json");
        std::fs::write(&bad, "not json").unwrap();
        assert!(BenchReport::load(&bad)
            .unwrap_err()
            .contains("invalid JSON"));
        std::fs::write(&bad, "{}").unwrap();
        assert!(BenchReport::load(&bad)
            .unwrap_err()
            .contains("schema_version"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn newer_schema_is_rejected_politely() {
        let v = Json::parse(r#"{"schema_version": 99, "run": {}}"#).unwrap();
        let e = BenchReport::from_json(&v).unwrap_err();
        assert!(e.contains("newer than supported"), "{e}");
    }

    #[test]
    fn summary_mentions_every_section() {
        let s = sample_report().render_summary();
        for needle in [
            "experiments",
            "samplers",
            "benches",
            "timings",
            "gauges",
            "parkit_speedup_x1000",
            "span tree",
            "cell/systematic",
            "pkts/sec",
        ] {
            assert!(s.contains(needle), "missing {needle}:\n{s}");
        }
        let folded = sample_report().render_folded();
        assert!(folded.contains("perf_record;sampling_select 4000"));
    }

    #[test]
    fn collect_picks_up_sampler_and_timing_metrics() {
        // Drive the real obskit globals with uniquely named series via a
        // real span; then make sure collect() surfaces them.
        {
            let _s = obskit::span("perfkit_collect_probe");
        }
        let r = BenchReport::collect(
            RunMeta {
                source: "unit".into(),
                ..RunMeta::default()
            },
            vec![],
        );
        assert!(r
            .timings
            .iter()
            .any(|t| t.name.contains("perfkit_collect_probe_duration_us")));
        assert!(r
            .spans
            .iter()
            .any(|n| n.path.contains("perfkit_collect_probe")));
    }
}
