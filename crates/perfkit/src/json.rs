//! A minimal JSON value model, writer, and recursive-descent parser.
//!
//! `BENCH_*.json` reports are nested (run metadata, arrays of metric
//! objects), which is beyond the flat-object codec `obskit::trace`
//! carries; and the workspace is offline by design, so no serde. This
//! is the full JSON grammar minus two corners we never produce: numbers
//! are parsed as `f64` (exact for every integer up to 2⁵³ — comfortably
//! beyond any microsecond count a run produces), and `\uXXXX` escapes
//! outside the BMP surrogate-pair dance are passed through unvalidated.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers are exact to 2⁵³).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on render.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match); `None` on non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value rounded to u64, if this is a non-negative
    /// number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 => Some(n.round() as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render with 2-space indentation and a trailing newline.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document (surrounding whitespace allowed).
    ///
    /// # Errors
    /// Returns a position-annotated message on malformed input or
    /// trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; null is the least-bad representation.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_literal(b, pos, "null", Json::Null),
        Some(b't') => parse_literal(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false", Json::Bool(false)),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                members.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad utf8".to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    let mut chunk_start = *pos;
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                out.push_str(
                    std::str::from_utf8(&b[chunk_start..*pos])
                        .map_err(|_| "bad utf8 in string".to_string())?,
                );
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                out.push_str(
                    std::str::from_utf8(&b[chunk_start..*pos])
                        .map_err(|_| "bad utf8 in string".to_string())?,
                );
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("truncated \\u escape at byte {pos}"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
                chunk_start = *pos;
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::Obj(vec![
            ("schema_version".into(), Json::Num(1.0)),
            (
                "run".into(),
                Json::Obj(vec![
                    ("seed".into(), Json::Num(1993.0)),
                    ("source".into(), Json::Str("perf record".into())),
                ]),
            ),
            (
                "experiments".into(),
                Json::Arr(vec![
                    Json::Obj(vec![
                        ("name".into(), Json::Str("table1".into())),
                        ("wall_us".into(), Json::Num(123_456.0)),
                    ]),
                    Json::Null,
                    Json::Bool(true),
                ]),
            ),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
            ("frac".into(), Json::Num(0.25)),
            ("neg".into(), Json::Num(-17.0)),
        ]);
        let text = doc.render();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn renders_integers_without_decimal_point() {
        assert_eq!(Json::Num(42.0).render(), "42\n");
        assert_eq!(Json::Num(0.5).render(), "0.5\n");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = Json::Str("a\"b\\c\nd\te\u{1}".into());
        let text = s.render();
        assert_eq!(Json::parse(&text).unwrap(), s);
    }

    #[test]
    fn parses_standard_json_syntax() {
        let v = Json::parse(r#"  {"a": [1, 2.5, -3e2, "x", null, false]}  "#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_f64(), Some(-300.0));
        assert_eq!(arr[3].as_str(), Some("x"));
        assert_eq!(arr[4], Json::Null);
        assert_eq!(arr[5], Json::Bool(false));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "{} trailing",
            "[1 2]",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn accessors_are_type_safe() {
        let v = Json::parse(r#"{"n": 7, "s": "x"}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("n").unwrap().as_str(), None);
        assert_eq!(v.get("s").unwrap().as_f64(), None);
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = Json::parse(r#""A\u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("A\u{e9}"));
        // Raw multi-byte UTF-8 passes through unescaped too.
        assert_eq!(Json::parse("\"naïve\"").unwrap().as_str(), Some("naïve"));
    }
}
