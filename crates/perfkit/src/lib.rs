//! # perfkit — performance reporting on top of obskit
//!
//! obskit *records* (counters, log₂ histograms, hierarchical span
//! trees); perfkit *reports*. After an instrumented run — `repro_all`,
//! a criterion-shim bench, or `netsample perf record` — this crate:
//!
//! 1. aggregates the obskit registry and span tree into a
//!    [`BenchReport`] (per-experiment wall time, per-sampler
//!    `select_indices` throughput in packets/sec, χ²/φ evaluation-time
//!    percentiles from the log₂ buckets);
//! 2. writes it as the next `BENCH_<n>.json` in a trajectory directory
//!    ([`BenchReport::write_next`]);
//! 3. diffs it against the newest prior baseline ([`diff::diff`]),
//!    rendering a human table and gating on >25% regressions;
//! 4. renders flamegraph-style collapsed-stack text
//!    ([`BenchReport::render_folded`]) consumable by `inferno` or
//!    speedscope.
//!
//! Like the rest of the workspace it is std-only: the JSON layer
//! ([`json::Json`]) is a small hand-rolled value model and
//! recursive-descent parser, not an external dependency.

pub mod diff;
pub mod json;
pub mod report;

pub use diff::{diff, DiffReport, MetricDelta, DEFAULT_THRESHOLD};
pub use json::Json;
pub use report::{baseline_before, latest_in, BenchReport, ExperimentTime, GaugeStat, RunMeta};
