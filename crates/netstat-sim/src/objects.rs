//! The Table 1 statistical objects.
//!
//! Both backbones categorized packets into aggregate objects; the table
//! distinguishes which ran where. The T3 backbone (ARTS) supports only
//! the first three — the same subset this module marks as
//! [`ObjectSet::T3`]:
//!
//! | object | T1 | T3 |
//! |---|---|---|
//! | src/dst traffic matrix by network number (pkts/bytes) | ✓ | ✓ |
//! | TCP/UDP well-known port distribution (pkts/bytes)     | ✓ | ✓ |
//! | protocol-over-IP distribution (pkts/bytes)            | ✓ | ✓ |
//! | packet-length histogram, 50-byte bins                 | ✓ | — |
//! | per-second arrival-rate histogram, 20 pps bins        | ✓ | — |
//! | transit traffic volume                                | ✓ | — |
//!
//! Every object supports the 15-minute collect-and-reset cycle and can
//! scale its counts by the sampling interval to produce population
//! estimates (the T3 pipeline characterizes from every 50th packet).

use nettrace::{BinSpec, Histogram, PacketRecord, Protocol};
use std::collections::HashMap;

/// Packet and byte counters (every Table 1 object counts both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counts {
    /// Packets observed.
    pub packets: u64,
    /// Bytes observed.
    pub bytes: u64,
}

impl Counts {
    /// Add one packet.
    pub fn add(&mut self, size: u16) {
        self.packets += 1;
        self.bytes += u64::from(size);
    }

    /// Scale counts by the sampling interval to estimate the population
    /// (the provider's view of a 1-in-k sample).
    #[must_use]
    pub fn scaled(&self, k: u64) -> Counts {
        Counts {
            packets: self.packets * k,
            bytes: self.bytes * k,
        }
    }
}

/// Which backbone's object set to maintain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectSet {
    /// The full T1/NNStat set (all six objects).
    T1,
    /// The T3/ARTS subset (matrix, ports, protocols).
    T3,
}

/// Source/destination traffic-volume matrix by network number.
#[derive(Debug, Clone, Default)]
pub struct TrafficMatrix {
    cells: HashMap<(u16, u16), Counts>,
}

impl TrafficMatrix {
    /// Record one packet.
    pub fn observe(&mut self, pkt: &PacketRecord) {
        self.cells
            .entry((pkt.src_net, pkt.dst_net))
            .or_default()
            .add(pkt.size);
    }

    /// Number of distinct (src, dst) pairs seen.
    #[must_use]
    pub fn pairs(&self) -> usize {
        self.cells.len()
    }

    /// The counts for one pair.
    #[must_use]
    pub fn cell(&self, src: u16, dst: u16) -> Counts {
        self.cells.get(&(src, dst)).copied().unwrap_or_default()
    }

    /// The `n` heaviest pairs by packet count, descending.
    #[must_use]
    pub fn top_pairs(&self, n: usize) -> Vec<((u16, u16), Counts)> {
        let mut v: Vec<_> = self.cells.iter().map(|(&k, &c)| (k, c)).collect();
        v.sort_by(|a, b| b.1.packets.cmp(&a.1.packets).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    /// Total packets across all cells.
    #[must_use]
    pub fn total_packets(&self) -> u64 {
        self.cells.values().map(|c| c.packets).sum()
    }

    /// Clear all cells (collection cycle reset).
    pub fn reset(&mut self) {
        self.cells.clear();
    }
}

/// The well-known TCP/UDP ports the NSFNET reports tracked ("well-known
/// subset", Table 1).
pub const WELL_KNOWN_PORTS: [u16; 10] = [20, 21, 23, 25, 53, 70, 79, 113, 119, 123];

/// TCP/UDP port distribution over the well-known subset.
#[derive(Debug, Clone, Default)]
pub struct PortDistribution {
    ports: HashMap<u16, Counts>,
    other: Counts,
}

impl PortDistribution {
    /// Record one packet (TCP/UDP only; others are ignored).
    pub fn observe(&mut self, pkt: &PacketRecord) {
        if !matches!(pkt.protocol, Protocol::Tcp | Protocol::Udp) {
            return;
        }
        // The collection attributes a packet to a well-known port on
        // either side; unmatched packets fall into "other".
        let port = [pkt.dst_port, pkt.src_port]
            .into_iter()
            .find(|p| WELL_KNOWN_PORTS.contains(p));
        match port {
            Some(p) => self.ports.entry(p).or_default().add(pkt.size),
            None => self.other.add(pkt.size),
        }
    }

    /// Counts for one well-known port.
    #[must_use]
    pub fn port(&self, port: u16) -> Counts {
        self.ports.get(&port).copied().unwrap_or_default()
    }

    /// Counts for traffic matching no well-known port.
    #[must_use]
    pub fn other(&self) -> Counts {
        self.other
    }

    /// (port, counts) pairs sorted by descending packets.
    #[must_use]
    pub fn ranked(&self) -> Vec<(u16, Counts)> {
        let mut v: Vec<_> = self.ports.iter().map(|(&p, &c)| (p, c)).collect();
        v.sort_by(|a, b| b.1.packets.cmp(&a.1.packets).then(a.0.cmp(&b.0)));
        v
    }

    /// Clear (collection cycle reset).
    pub fn reset(&mut self) {
        self.ports.clear();
        self.other = Counts::default();
    }
}

/// Distribution of protocol over IP.
#[derive(Debug, Clone, Default)]
pub struct ProtocolDistribution {
    /// TCP counts.
    pub tcp: Counts,
    /// UDP counts.
    pub udp: Counts,
    /// ICMP counts.
    pub icmp: Counts,
    /// Everything else.
    pub other: Counts,
}

impl ProtocolDistribution {
    /// Record one packet.
    pub fn observe(&mut self, pkt: &PacketRecord) {
        match pkt.protocol {
            Protocol::Tcp => self.tcp.add(pkt.size),
            Protocol::Udp => self.udp.add(pkt.size),
            Protocol::Icmp => self.icmp.add(pkt.size),
            Protocol::Other(_) => self.other.add(pkt.size),
        }
    }

    /// Total packets.
    #[must_use]
    pub fn total_packets(&self) -> u64 {
        self.tcp.packets + self.udp.packets + self.icmp.packets + self.other.packets
    }

    /// Clear (collection cycle reset).
    pub fn reset(&mut self) {
        *self = ProtocolDistribution::default();
    }
}

/// Per-second arrival-rate histogram at 20 pps granularity (T1 only).
///
/// Feeds on per-packet timestamps; each completed second contributes one
/// observation of that second's packet count.
#[derive(Debug, Clone)]
pub struct ArrivalRateHistogram {
    hist: Histogram,
    current_second: Option<u64>,
    count_this_second: u64,
}

impl ArrivalRateHistogram {
    /// Empty histogram (20 pps bins, capped at 2000 pps).
    #[must_use]
    pub fn new() -> Self {
        ArrivalRateHistogram {
            hist: Histogram::new(BinSpec::t1_arrival_rate()),
            current_second: None,
            count_this_second: 0,
        }
    }

    /// Record one packet arrival.
    pub fn observe(&mut self, pkt: &PacketRecord) {
        let sec = pkt.timestamp.whole_secs();
        match self.current_second {
            Some(s) if s == sec => self.count_this_second += 1,
            Some(s) => {
                self.hist.observe(self.count_this_second);
                // Interior silent seconds are rate-zero observations.
                for _ in s + 1..sec {
                    self.hist.observe(0);
                }
                self.current_second = Some(sec);
                self.count_this_second = 1;
            }
            None => {
                self.current_second = Some(sec);
                self.count_this_second = 1;
            }
        }
    }

    /// Flush the in-progress second and return the histogram counts.
    pub fn finish(&mut self) -> &Histogram {
        if self.current_second.take().is_some() {
            self.hist.observe(self.count_this_second);
            self.count_this_second = 0;
        }
        &self.hist
    }

    /// Clear (collection cycle reset).
    pub fn reset(&mut self) {
        self.hist.reset();
        self.current_second = None;
        self.count_this_second = 0;
    }
}

impl Default for ArrivalRateHistogram {
    fn default() -> Self {
        ArrivalRateHistogram::new()
    }
}

/// The complete per-node object set.
#[derive(Debug, Clone)]
pub struct ArtsObjects {
    /// Which backbone's subset is live.
    pub set: ObjectSet,
    /// Source/destination matrix.
    pub matrix: TrafficMatrix,
    /// Well-known port distribution.
    pub ports: PortDistribution,
    /// Protocol distribution.
    pub protocols: ProtocolDistribution,
    /// 50-byte packet-length histogram (T1 only; empty under T3).
    pub lengths: Histogram,
    /// Arrival-rate histogram (T1 only; empty under T3).
    pub rates: ArrivalRateHistogram,
    /// Transit volume (T1 only).
    pub transit: Counts,
}

impl ArtsObjects {
    /// Empty object set for the given backbone flavor.
    #[must_use]
    pub fn new(set: ObjectSet) -> Self {
        ArtsObjects {
            set,
            matrix: TrafficMatrix::default(),
            ports: PortDistribution::default(),
            protocols: ProtocolDistribution::default(),
            lengths: Histogram::new(BinSpec::t1_packet_length()),
            rates: ArrivalRateHistogram::new(),
            transit: Counts::default(),
        }
    }

    /// Categorize one packet into every live object.
    pub fn observe(&mut self, pkt: &PacketRecord) {
        self.matrix.observe(pkt);
        self.ports.observe(pkt);
        self.protocols.observe(pkt);
        if self.set == ObjectSet::T1 {
            self.lengths.observe(u64::from(pkt.size));
            self.rates.observe(pkt);
            self.transit.add(pkt.size);
        }
    }

    /// Approximate serialized size of one collection report, in bytes.
    ///
    /// Models the NOC's archive volume (§2: "during mid-February 1993
    /// [the collection host] was collecting around 25 MB of ARTS traffic
    /// characterization data on a typical workday"). Each matrix cell
    /// costs 20 bytes (two network numbers + packet and byte counters);
    /// collection systems cap their tables — NNStat's objects were
    /// fixed-size — so `max_matrix_entries` bounds the matrix's
    /// contribution the way the deployed object tables did.
    #[must_use]
    pub fn report_size_bytes(&self, max_matrix_entries: usize) -> u64 {
        let matrix = self.matrix.pairs().min(max_matrix_entries) as u64 * 20;
        let ports = (self.ports.ranked().len() as u64 + 1) * 18;
        let protocols = 4 * 16;
        let (lengths, rates, transit) = if self.set == ObjectSet::T1 {
            (
                self.lengths.counts().len() as u64 * 8,
                101 * 8, // 20 pps bins to 2000 + overflow
                16,
            )
        } else {
            (0, 0, 0)
        };
        matrix + ports + protocols + lengths + rates + transit
    }

    /// Collect-and-reset: clear every object (the 15-minute cycle).
    pub fn reset(&mut self) {
        self.matrix.reset();
        self.ports.reset();
        self.protocols.reset();
        self.lengths.reset();
        self.rates.reset();
        self.transit = Counts::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettrace::Micros;

    fn pkt(t: u64, size: u16) -> PacketRecord {
        PacketRecord::new(Micros(t), size)
    }

    #[test]
    fn counts_add_and_scale() {
        let mut c = Counts::default();
        c.add(100);
        c.add(200);
        assert_eq!(
            c,
            Counts {
                packets: 2,
                bytes: 300
            }
        );
        assert_eq!(
            c.scaled(50),
            Counts {
                packets: 100,
                bytes: 15_000
            }
        );
    }

    #[test]
    fn matrix_accumulates_pairs() {
        let mut m = TrafficMatrix::default();
        m.observe(&pkt(0, 100).with_nets(1, 2));
        m.observe(&pkt(1, 200).with_nets(1, 2));
        m.observe(&pkt(2, 300).with_nets(3, 4));
        assert_eq!(m.pairs(), 2);
        assert_eq!(
            m.cell(1, 2),
            Counts {
                packets: 2,
                bytes: 300
            }
        );
        assert_eq!(m.cell(3, 4).packets, 1);
        assert_eq!(m.cell(9, 9).packets, 0);
        assert_eq!(m.total_packets(), 3);
        let top = m.top_pairs(1);
        assert_eq!(top[0].0, (1, 2));
        m.reset();
        assert_eq!(m.pairs(), 0);
    }

    #[test]
    fn port_distribution_well_known_matching() {
        let mut p = PortDistribution::default();
        p.observe(&pkt(0, 100).with_ports(1024, 23)); // dst telnet
        p.observe(&pkt(1, 100).with_ports(20, 1024)); // src ftp-data
        p.observe(&pkt(2, 100).with_ports(5000, 6000)); // other
        p.observe(&pkt(3, 100).with_protocol(Protocol::Icmp)); // ignored
        assert_eq!(p.port(23).packets, 1);
        assert_eq!(p.port(20).packets, 1);
        assert_eq!(p.other().packets, 1);
        let ranked = p.ranked();
        assert_eq!(ranked.len(), 2);
        p.reset();
        assert_eq!(p.port(23).packets, 0);
    }

    #[test]
    fn protocol_distribution() {
        let mut d = ProtocolDistribution::default();
        d.observe(&pkt(0, 40));
        d.observe(&pkt(1, 40).with_protocol(Protocol::Udp));
        d.observe(&pkt(2, 40).with_protocol(Protocol::Icmp));
        d.observe(&pkt(3, 40).with_protocol(Protocol::Other(89)));
        assert_eq!(d.tcp.packets, 1);
        assert_eq!(d.udp.packets, 1);
        assert_eq!(d.icmp.packets, 1);
        assert_eq!(d.other.packets, 1);
        assert_eq!(d.total_packets(), 4);
    }

    #[test]
    fn arrival_rate_histogram_bins_seconds() {
        let mut h = ArrivalRateHistogram::new();
        // 30 packets in second 0, 1 packet in second 2 (second 1 silent).
        for i in 0..30 {
            h.observe(&pkt(i * 1000, 40));
        }
        h.observe(&pkt(2_500_000, 40));
        let hist = h.finish().clone();
        assert_eq!(hist.total(), 3); // seconds 0, 1, 2
                                     // Second 0: 30 pps -> bin [20,40); second 1: 0 -> [0,20);
                                     // second 2: 1 -> [0,20).
        assert_eq!(hist.counts()[0], 2);
        assert_eq!(hist.counts()[1], 1);
    }

    #[test]
    fn t3_objects_skip_t1_only() {
        let mut o = ArtsObjects::new(ObjectSet::T3);
        o.observe(&pkt(0, 500).with_nets(1, 2));
        assert_eq!(o.matrix.total_packets(), 1);
        assert_eq!(o.lengths.total(), 0);
        assert_eq!(o.transit.packets, 0);
        let mut t1 = ArtsObjects::new(ObjectSet::T1);
        t1.observe(&pkt(0, 500).with_nets(1, 2));
        assert_eq!(t1.lengths.total(), 1);
        assert_eq!(t1.transit.packets, 1);
    }

    #[test]
    fn report_size_accounts_for_objects_and_caps() {
        let mut o = ArtsObjects::new(ObjectSet::T1);
        for i in 0..50u16 {
            o.observe(
                &pkt(u64::from(i) * 1000, 100)
                    .with_nets(1, i)
                    .with_ports(1024, 25),
            );
        }
        let uncapped = o.report_size_bytes(usize::MAX);
        let capped = o.report_size_bytes(10);
        assert!(uncapped > capped);
        assert_eq!(uncapped - capped, (50 - 10) * 20);
        // T3 subset is strictly smaller (no histograms/transit).
        let mut t3 = ArtsObjects::new(ObjectSet::T3);
        for i in 0..50u16 {
            t3.observe(
                &pkt(u64::from(i) * 1000, 100)
                    .with_nets(1, i)
                    .with_ports(1024, 25),
            );
        }
        assert!(t3.report_size_bytes(usize::MAX) < uncapped);
    }

    #[test]
    fn objects_reset_clears_everything() {
        let mut o = ArtsObjects::new(ObjectSet::T1);
        for i in 0..10 {
            o.observe(&pkt(i * 100_000, 100).with_nets(1, 2).with_ports(1024, 25));
        }
        o.reset();
        assert_eq!(o.matrix.pairs(), 0);
        assert_eq!(o.protocols.total_packets(), 0);
        assert_eq!(o.lengths.total(), 0);
        assert_eq!(o.transit.packets, 0);
    }
}
