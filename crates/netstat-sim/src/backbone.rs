//! A multi-node backbone polled by a central agent.
//!
//! "Every fifteen minutes, the central agent at the NOC running the
//! collection software queries each of the backbone nodes, which report
//! and then reset their object counters" (paper §2). [`Backbone`] drives
//! a trace through its nodes (packets are assigned to nodes by a caller-
//! provided function, standing in for backbone routing) and performs the
//! periodic collect-and-reset.

use crate::node::{CollectorNode, NodeReport};
use nettrace::{Micros, Trace};

/// One completed poll cycle: every node's report at one collection time.
#[derive(Debug, Clone, PartialEq)]
pub struct PollCycle {
    /// Collection timestamp (end of the cycle).
    pub at: Micros,
    /// One report per node, node order preserved.
    pub reports: Vec<NodeReport>,
}

impl PollCycle {
    /// Backbone-wide SNMP packet total for this cycle.
    #[must_use]
    pub fn snmp_packets(&self) -> u64 {
        self.reports.iter().map(|r| r.snmp_packets).sum()
    }

    /// Backbone-wide categorization estimate for this cycle.
    #[must_use]
    pub fn estimated_packets(&self) -> u64 {
        self.reports.iter().map(NodeReport::estimated_packets).sum()
    }
}

/// The default NSFNET poll interval: fifteen minutes.
pub const POLL_INTERVAL: Micros = Micros(15 * 60 * 1_000_000);

/// A set of collector nodes plus the central agent's schedule.
#[derive(Debug)]
pub struct Backbone {
    nodes: Vec<CollectorNode>,
    poll_interval: Micros,
}

impl Backbone {
    /// Assemble a backbone from nodes, polled at `poll_interval`.
    ///
    /// # Panics
    /// Panics if there are no nodes or the interval is zero.
    #[must_use]
    pub fn new(nodes: Vec<CollectorNode>, poll_interval: Micros) -> Self {
        assert!(!nodes.is_empty(), "backbone needs at least one node");
        assert!(poll_interval.as_u64() > 0, "poll interval must be positive");
        Backbone {
            nodes,
            poll_interval,
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Access a node (e.g. to inspect its objects mid-run).
    #[must_use]
    pub fn node(&self, idx: usize) -> &CollectorNode {
        &self.nodes[idx]
    }

    /// Drive a trace through the backbone. Each packet goes to the node
    /// chosen by `route` (index into the node list); the central agent
    /// collects all nodes every poll interval (trace-relative). A final
    /// partial cycle is collected at the end.
    ///
    /// # Panics
    /// Panics if `route` returns an out-of-range node index.
    pub fn run_trace<F>(&mut self, trace: &Trace, mut route: F) -> Vec<PollCycle>
    where
        F: FnMut(&nettrace::PacketRecord) -> usize,
    {
        let mut cycles = Vec::new();
        let mut next_poll = self.poll_interval;
        for pkt in trace.iter() {
            while pkt.timestamp >= next_poll {
                cycles.push(self.collect_all(next_poll));
                next_poll += self.poll_interval;
            }
            let idx = route(pkt);
            assert!(idx < self.nodes.len(), "route returned bad node {idx}");
            self.nodes[idx].offer(pkt);
        }
        cycles.push(self.collect_all(next_poll));
        cycles
    }

    /// Collect every node now.
    fn collect_all(&mut self, at: Micros) -> PollCycle {
        PollCycle {
            at,
            reports: self.nodes.iter_mut().map(CollectorNode::collect).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objects::ObjectSet;
    use nettrace::PacketRecord;

    fn trace_spanning(seconds: u64, pps: u64) -> Trace {
        let mut pkts = Vec::new();
        for s in 0..seconds {
            for i in 0..pps {
                pkts.push(PacketRecord::new(
                    Micros(s * 1_000_000 + i * (1_000_000 / pps)),
                    100,
                ));
            }
        }
        Trace::new(pkts).unwrap()
    }

    fn node() -> CollectorNode {
        CollectorNode::new(ObjectSet::T3, 1_000_000)
    }

    #[test]
    fn polls_every_interval() {
        // 40 seconds of traffic, 10-second polls -> 3 boundary cycles +
        // the final collection covering the last 10 seconds.
        let trace = trace_spanning(40, 10);
        let mut bb = Backbone::new(vec![node()], Micros::from_secs(10));
        let cycles = bb.run_trace(&trace, |_| 0);
        assert_eq!(cycles.len(), 4);
        // Each cycle saw 10s x 10pps = 100 packets.
        for c in &cycles {
            assert_eq!(c.snmp_packets(), 100);
        }
        // Poll timestamps advance by the interval.
        assert_eq!(cycles[0].at, Micros::from_secs(10));
        assert_eq!(cycles[1].at, Micros::from_secs(20));
    }

    #[test]
    fn totals_are_conserved_across_cycles() {
        let trace = trace_spanning(35, 7);
        let mut bb = Backbone::new(vec![node()], Micros::from_secs(10));
        let cycles = bb.run_trace(&trace, |_| 0);
        let total: u64 = cycles.iter().map(PollCycle::snmp_packets).sum();
        assert_eq!(total, trace.len() as u64);
    }

    #[test]
    fn routing_splits_across_nodes() {
        let trace = trace_spanning(5, 10);
        let mut bb = Backbone::new(vec![node(), node()], Micros::from_secs(60));
        let mut flip = false;
        let cycles = bb.run_trace(&trace, |_| {
            flip = !flip;
            usize::from(flip)
        });
        let last = cycles.last().unwrap();
        assert_eq!(last.reports.len(), 2);
        assert_eq!(last.reports[0].snmp_packets, 25);
        assert_eq!(last.reports[1].snmp_packets, 25);
        assert_eq!(last.snmp_packets(), 50);
    }

    #[test]
    fn estimates_aggregate() {
        let trace = trace_spanning(3, 100);
        let mut n = node();
        n.deploy_sampling(50);
        let mut bb = Backbone::new(vec![n], Micros::from_secs(60));
        let cycles = bb.run_trace(&trace, |_| 0);
        let c = cycles.last().unwrap();
        assert_eq!(c.snmp_packets(), 300);
        // 1-in-50 of 300 = 6 categorized, scaled back to 300.
        assert_eq!(c.estimated_packets(), 300);
    }

    #[test]
    fn idle_intervals_emit_empty_cycles() {
        // Packets at t=0s and t=35s with 10s polls: cycles at 10,20,30
        // (the middle ones empty), then the final cycle.
        let pkts = vec![
            PacketRecord::new(Micros(0), 40),
            PacketRecord::new(Micros::from_secs(35), 40),
        ];
        let trace = Trace::new(pkts).unwrap();
        let mut bb = Backbone::new(vec![node()], Micros::from_secs(10));
        let cycles = bb.run_trace(&trace, |_| 0);
        assert_eq!(cycles.len(), 4);
        assert_eq!(cycles[0].snmp_packets(), 1);
        assert_eq!(cycles[1].snmp_packets(), 0);
        assert_eq!(cycles[2].snmp_packets(), 0);
        assert_eq!(cycles[3].snmp_packets(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_backbone_panics() {
        let _ = Backbone::new(vec![], POLL_INTERVAL);
    }

    #[test]
    #[should_panic(expected = "bad node")]
    fn bad_route_panics() {
        let trace = trace_spanning(1, 1);
        let mut bb = Backbone::new(vec![node()], POLL_INTERVAL);
        let _ = bb.run_trace(&trace, |_| 5);
    }
}
