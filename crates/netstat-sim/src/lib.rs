//! # netstat-sim — the NSFNET statistics-collection substrate
//!
//! The paper's motivation (§2) is operational: the NSFNET backbones
//! categorized traffic with dedicated software (NNStat on T1, ARTS on
//! T3), and under load the categorization processor fell behind while the
//! forwarding-path SNMP counters kept counting — the growing discrepancy
//! of the paper's Figure 1 — until 1-in-50 packet sampling was deployed
//! in September 1991 and closed the gap. This crate models that
//! pipeline:
//!
//! * [`objects`] — the Table 1 statistical objects: source/destination
//!   traffic matrix by network number, TCP/UDP well-known-port
//!   distribution, protocol-over-IP distribution, the T1-only 50-byte
//!   packet-length histogram, per-second arrival-rate histogram (20 pps
//!   bins), and transit volume;
//! * [`snmp`] — forwarding-path interface counters (always correct, the
//!   paper's footnote 2);
//! * [`node`] — a collector node whose header-examination processor has
//!   finite capacity and optional 1-in-k systematic sampling;
//! * [`backbone`] — multiple nodes polled by a central agent every
//!   fifteen minutes, collect-and-reset (§2);
//! * [`figure1`] — the monthly growth scenario that reproduces Figure 1;
//! * [`fleet`] — the multi-tenant interface fleet the `collectd` daemon
//!   shards: M tenants × N virtual interfaces enumerated as lanes.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod backbone;
pub mod figure1;
pub mod fleet;
pub mod node;
pub mod objects;
pub mod snmp;

pub use backbone::{Backbone, PollCycle};
pub use figure1::{figure1_series, Figure1Config, MonthPoint};
pub use fleet::{Fleet, FleetError, Lane, MAX_LANES};
pub use node::{CollectorNode, NodeReport};
pub use objects::{ArtsObjects, Counts, ObjectSet};
pub use snmp::SnmpCounters;
