//! The Figure 1 scenario: monthly SNMP vs NNStat packet totals.
//!
//! The paper's Figure 1 plots, per month, the T1 backbone's total packet
//! count as reported independently by SNMP (forwarding path, reliable)
//! and by NNStat (categorization path, capacity-limited). Through 1990–91
//! traffic growth pushed peak rates past the dedicated statistics
//! processors, the NNStat totals fell increasingly short, and in
//! **September 1991** the operator deployed 1-in-50 sampling, after which
//! "the result was a significant reduction in the discrepancies" (§2).
//!
//! This module regenerates that series from the capacity model in
//! [`crate::node`]: exponential monthly growth, a diurnal rate profile
//! with lognormal noise, a fixed categorization capacity, and the
//! sampling intervention at the configured month.

use crate::node::CollectorNode;
use crate::objects::ObjectSet;

/// Scenario parameters; defaults reproduce the published shape.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure1Config {
    /// Number of months simulated (month 0 = January 1990).
    pub months: usize,
    /// Monthly packet total in month 0.
    pub initial_monthly_packets: f64,
    /// Exponential growth per month (e.g. 0.068 ≈ doubling yearly).
    pub monthly_growth: f64,
    /// Aggregate categorization capacity, headers/second.
    pub capacity_pps: u64,
    /// Month index at which 1-in-k sampling is deployed.
    pub sampling_deployed_month: usize,
    /// The sampling interval deployed (the NSFNET used 50).
    pub sampling_interval: u64,
    /// Representative seconds simulated per month (scaled up to the
    /// month's true duration).
    pub seconds_sampled: usize,
    /// Random seed for the diurnal noise.
    pub seed: u64,
}

impl Default for Figure1Config {
    fn default() -> Self {
        Figure1Config {
            months: 36,
            initial_monthly_packets: 0.9e9,
            monthly_growth: 0.068,
            capacity_pps: 1500,
            sampling_deployed_month: 20, // September 1991
            sampling_interval: 50,
            seconds_sampled: 2000,
            seed: 1991,
        }
    }
}

/// One month of the Figure 1 series.
#[derive(Debug, Clone, PartialEq)]
pub struct MonthPoint {
    /// Label, e.g. `"Sep91"`.
    pub label: String,
    /// SNMP (forwarding-path) total, billions of packets.
    pub snmp_billions: f64,
    /// NNStat/ARTS categorization estimate, billions of packets.
    pub nnstat_billions: f64,
    /// Whether sampling was in force this month.
    pub sampled: bool,
}

impl MonthPoint {
    /// Relative shortfall of the categorization estimate.
    #[must_use]
    pub fn discrepancy(&self) -> f64 {
        if self.snmp_billions == 0.0 {
            return 0.0;
        }
        (self.snmp_billions - self.nnstat_billions) / self.snmp_billions
    }
}

/// SplitMix64: a tiny deterministic generator so this crate does not need
/// a `rand` dependency for one noise source.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform in [0, 1).
fn uniform(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

const MONTH_NAMES: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];
const SECONDS_PER_MONTH: f64 = 30.44 * 86_400.0;

/// Generate the Figure 1 monthly series.
///
/// # Panics
/// Panics on a degenerate configuration (zero months or zero sampled
/// seconds).
#[must_use]
pub fn figure1_series(config: &Figure1Config) -> Vec<MonthPoint> {
    assert!(config.months > 0, "need at least one month");
    assert!(config.seconds_sampled > 0, "need sampled seconds");
    let mut rng_state = config.seed;
    let mut out = Vec::with_capacity(config.months);

    for m in 0..config.months {
        let monthly_total =
            config.initial_monthly_packets * (config.monthly_growth * m as f64).exp();
        let mean_rate = monthly_total / SECONDS_PER_MONTH;

        let mut node = CollectorNode::new(ObjectSet::T1, config.capacity_pps);
        let sampled = m >= config.sampling_deployed_month;
        if sampled {
            node.deploy_sampling(config.sampling_interval);
        }

        // Representative seconds spread across the diurnal cycle.
        for s in 0..config.seconds_sampled {
            let tod = s as f64 / config.seconds_sampled as f64; // time of day, [0,1)
            let diurnal = 1.0 + 0.6 * (2.0 * std::f64::consts::PI * (tod - 0.25)).sin();
            // Lognormal noise, cv ~ 0.3.
            let sigma = 0.294; // sqrt(ln(1 + 0.3^2))
            let u1 = uniform(&mut rng_state).max(1e-12);
            let u2 = uniform(&mut rng_state);
            let normal = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            let noise = (sigma * normal - sigma * sigma / 2.0).exp();
            let rate = (mean_rate * diurnal * noise).max(0.0);
            let pkts = rate.round() as u64;
            node.offer_second_bulk(pkts, pkts * 232);
        }
        let report = node.collect();

        // Scale the sampled seconds up to the month.
        let scale = SECONDS_PER_MONTH / config.seconds_sampled as f64;
        let snmp = report.snmp_packets as f64 * scale;
        let nnstat = report.estimated_packets() as f64 * scale;

        out.push(MonthPoint {
            label: format!("{}{}", MONTH_NAMES[m % 12], 90 + m / 12),
            snmp_billions: snmp / 1e9,
            nnstat_billions: nnstat / 1e9,
            sampled,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> Vec<MonthPoint> {
        figure1_series(&Figure1Config::default())
    }

    #[test]
    fn series_has_one_point_per_month() {
        let s = series();
        assert_eq!(s.len(), 36);
        assert_eq!(s[0].label, "Jan90");
        assert_eq!(s[20].label, "Sep91");
        assert_eq!(s[35].label, "Dec92");
    }

    #[test]
    fn traffic_grows_roughly_exponentially() {
        let s = series();
        assert!(s[35].snmp_billions > 5.0 * s[0].snmp_billions);
        assert!(s[0].snmp_billions > 0.5 && s[0].snmp_billions < 1.5);
    }

    #[test]
    fn discrepancy_grows_before_sampling() {
        let s = series();
        // Early months: processor keeps up.
        assert!(
            s[3].discrepancy() < 0.02,
            "early discrepancy {}",
            s[3].discrepancy()
        );
        // Just before deployment: significant fraction lost.
        let before = s[19].discrepancy();
        assert!(before > 0.10, "pre-sampling discrepancy {before}");
        // And it was growing.
        assert!(s[19].discrepancy() > s[10].discrepancy());
    }

    #[test]
    fn sampling_closes_the_gap() {
        let s = series();
        for p in &s[20..] {
            assert!(p.sampled);
            assert!(
                p.discrepancy().abs() < 0.02,
                "{}: post-sampling discrepancy {}",
                p.label,
                p.discrepancy()
            );
        }
        // The drop at the deployment boundary is sharp.
        assert!(s[19].discrepancy() > s[20].discrepancy() + 0.10);
    }

    #[test]
    fn nnstat_never_exceeds_snmp_before_sampling() {
        let s = series();
        for p in &s[..20] {
            assert!(p.nnstat_billions <= p.snmp_billions + 1e-9, "{}", p.label);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        assert_eq!(series(), series());
        let other = Figure1Config {
            seed: 7,
            ..Figure1Config::default()
        };
        assert_ne!(figure1_series(&other), series());
    }

    #[test]
    #[should_panic(expected = "at least one month")]
    fn zero_months_panics() {
        let c = Figure1Config {
            months: 0,
            ..Figure1Config::default()
        };
        let _ = figure1_series(&c);
    }
}
