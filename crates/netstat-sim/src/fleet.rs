//! The multi-tenant interface fleet served by the collector daemon.
//!
//! The paper's backbone has one operator and a fixed set of physical
//! interfaces. The collector service generalizes that to a *fleet*: M
//! tenants (customers of the measurement service) × N virtual interfaces
//! each. The cross product is enumerated as **lanes** — one lane per
//! (tenant, interface) pair, numbered in tenant-major order — and the
//! lane index is the unit the collector shards, samples, and reports on.
//! Lane numbering is purely a function of the fleet definition, never of
//! shard count, which is what lets the daemon keep the bit-identical
//! determinism guarantee at any sharding.

use std::fmt;

/// Hard cap on `tenants × interfaces`: the collector materializes
/// per-lane sampler + window state, so an unbounded fleet is a memory
/// DoS, not a configuration.
pub const MAX_LANES: usize = 4096;

/// Why a fleet definition was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// No tenants were configured.
    NoTenants,
    /// A fleet must expose at least one virtual interface per tenant.
    NoInterfaces,
    /// A tenant id was empty.
    EmptyTenant,
    /// A tenant id contained a byte outside the printable-ASCII set or
    /// one of `"{}\,` (they would need escaping in Prometheus labels and
    /// the JSONL reports).
    BadTenant {
        /// The offending tenant id, lossily printable.
        tenant: String,
    },
    /// The same tenant id appeared twice.
    DuplicateTenant {
        /// The repeated id.
        tenant: String,
    },
    /// A tenant id exceeded [`Fleet::MAX_TENANT_LEN`] bytes.
    TenantTooLong {
        /// Observed length in bytes.
        len: usize,
    },
    /// `tenants × interfaces` exceeded [`MAX_LANES`].
    TooManyLanes {
        /// The requested lane count.
        lanes: usize,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::NoTenants => write!(f, "fleet has no tenants"),
            FleetError::NoInterfaces => write!(f, "fleet has no interfaces"),
            FleetError::EmptyTenant => write!(f, "empty tenant id"),
            FleetError::BadTenant { tenant } => {
                write!(f, "tenant id {tenant:?} has non-label-safe bytes")
            }
            FleetError::DuplicateTenant { tenant } => {
                write!(f, "duplicate tenant id {tenant:?}")
            }
            FleetError::TenantTooLong { len } => {
                write!(
                    f,
                    "tenant id is {len} bytes (max {})",
                    Fleet::MAX_TENANT_LEN
                )
            }
            FleetError::TooManyLanes { lanes } => {
                write!(f, "{lanes} lanes exceed the {MAX_LANES}-lane cap")
            }
        }
    }
}

impl std::error::Error for FleetError {}

/// One (tenant, interface) pair, with its fleet-wide lane index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Lane {
    /// Index into [`Fleet::tenants`].
    pub tenant: u32,
    /// Virtual interface index within the tenant, `0..interfaces`.
    pub interface: u32,
    /// Tenant-major fleet-wide index: `tenant * interfaces + interface`.
    pub lane: u32,
}

/// A validated fleet: M tenants × N virtual interfaces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fleet {
    tenants: Vec<String>,
    interfaces: u32,
}

impl Fleet {
    /// Longest accepted tenant id, in bytes.
    pub const MAX_TENANT_LEN: usize = 64;

    /// Validate and build a fleet. Tenant ids must be non-empty,
    /// unique, at most [`Self::MAX_TENANT_LEN`] bytes, and restricted to
    /// printable ASCII minus `"{}\,` so they can be embedded verbatim in
    /// Prometheus label values and JSONL.
    pub fn new<S: Into<String>>(
        tenants: impl IntoIterator<Item = S>,
        interfaces: u32,
    ) -> Result<Self, FleetError> {
        let tenants: Vec<String> = tenants.into_iter().map(Into::into).collect();
        if tenants.is_empty() {
            return Err(FleetError::NoTenants);
        }
        if interfaces == 0 {
            return Err(FleetError::NoInterfaces);
        }
        for (i, t) in tenants.iter().enumerate() {
            if t.is_empty() {
                return Err(FleetError::EmptyTenant);
            }
            if t.len() > Self::MAX_TENANT_LEN {
                return Err(FleetError::TenantTooLong { len: t.len() });
            }
            if t.bytes().any(|b| {
                !(0x21..=0x7e).contains(&b) || matches!(b, b'"' | b'{' | b'}' | b'\\' | b',')
            }) {
                return Err(FleetError::BadTenant { tenant: t.clone() });
            }
            if tenants[..i].contains(t) {
                return Err(FleetError::DuplicateTenant { tenant: t.clone() });
            }
        }
        let lanes = tenants
            .len()
            .checked_mul(interfaces as usize)
            .ok_or(FleetError::TooManyLanes { lanes: usize::MAX })?;
        if lanes > MAX_LANES {
            return Err(FleetError::TooManyLanes { lanes });
        }
        Ok(Fleet {
            tenants,
            interfaces,
        })
    }

    /// Convenience constructor: `tenants` anonymous ids `t0..t{n-1}`.
    pub fn anonymous(tenants: u32, interfaces: u32) -> Result<Self, FleetError> {
        Fleet::new((0..tenants).map(|t| format!("t{t}")), interfaces)
    }

    /// The tenant ids, in declaration order.
    #[must_use]
    pub fn tenants(&self) -> &[String] {
        &self.tenants
    }

    /// Virtual interfaces per tenant.
    #[must_use]
    pub fn interfaces(&self) -> u32 {
        self.interfaces
    }

    /// Total lane count (`tenants × interfaces`).
    #[must_use]
    pub fn lane_count(&self) -> u32 {
        self.tenants.len() as u32 * self.interfaces
    }

    /// Enumerate every lane in tenant-major order. The order is the
    /// collector's canonical merge order and must never depend on shard
    /// count.
    pub fn lanes(&self) -> impl Iterator<Item = Lane> + '_ {
        let ifs = self.interfaces;
        (0..self.tenants.len() as u32).flat_map(move |tenant| {
            (0..ifs).map(move |interface| Lane {
                tenant,
                interface,
                lane: tenant * ifs + interface,
            })
        })
    }

    /// The tenant id for a lane's tenant index.
    #[must_use]
    pub fn tenant_name(&self, tenant: u32) -> &str {
        &self.tenants[tenant as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_enumerate_in_tenant_major_order() {
        let f = Fleet::anonymous(2, 3).unwrap();
        let lanes: Vec<Lane> = f.lanes().collect();
        assert_eq!(lanes.len(), 6);
        assert_eq!(f.lane_count(), 6);
        for (i, l) in lanes.iter().enumerate() {
            assert_eq!(l.lane, i as u32);
            assert_eq!(l.tenant, i as u32 / 3);
            assert_eq!(l.interface, i as u32 % 3);
        }
        assert_eq!(f.tenant_name(1), "t1");
    }

    #[test]
    fn hostile_fleets_get_typed_errors() {
        assert_eq!(
            Fleet::new(Vec::<String>::new(), 1).unwrap_err(),
            FleetError::NoTenants
        );
        assert_eq!(Fleet::new(["a"], 0).unwrap_err(), FleetError::NoInterfaces);
        assert_eq!(Fleet::new([""], 1).unwrap_err(), FleetError::EmptyTenant);
        assert!(matches!(
            Fleet::new(["ok", "with space"], 1).unwrap_err(),
            FleetError::BadTenant { .. }
        ));
        assert!(matches!(
            Fleet::new(["quote\""], 1).unwrap_err(),
            FleetError::BadTenant { .. }
        ));
        assert!(matches!(
            Fleet::new(["dup", "dup"], 1).unwrap_err(),
            FleetError::DuplicateTenant { .. }
        ));
        assert!(matches!(
            Fleet::new([String::from_utf8(vec![b'x'; 65]).unwrap()], 1).unwrap_err(),
            FleetError::TenantTooLong { len: 65 }
        ));
        assert!(matches!(
            Fleet::anonymous(100, 100).unwrap_err(),
            FleetError::TooManyLanes { lanes: 10_000 }
        ));
    }

    #[test]
    fn non_ascii_tenant_is_rejected_not_panicked() {
        assert!(matches!(
            Fleet::new(["héllo"], 1).unwrap_err(),
            FleetError::BadTenant { .. }
        ));
    }
}
