//! Forwarding-path (SNMP) interface counters.
//!
//! "Because the SNMP statistics are incremented in the mainstream of
//! packet forwarding, they are more reliable" (paper, footnote 2): these
//! counters never miss a packet, whatever the categorization processor's
//! load. They are the ground truth that exposes the NNStat/ARTS
//! discrepancy in Figure 1.

use nettrace::PacketRecord;

/// Cumulative interface counters, MIB-II style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SnmpCounters {
    /// `ifInUcastPkts`-like packet counter.
    pub packets: u64,
    /// `ifInOctets`-like byte counter.
    pub octets: u64,
}

impl SnmpCounters {
    /// Count one forwarded packet.
    pub fn count(&mut self, pkt: &PacketRecord) {
        self.packets += 1;
        self.octets += u64::from(pkt.size);
    }

    /// Bulk update (per-second aggregate driving, used by the Figure 1
    /// scenario where packet-level simulation of billions of packets is
    /// infeasible).
    pub fn count_bulk(&mut self, packets: u64, octets: u64) {
        self.packets += packets;
        self.octets += octets;
    }

    /// Read and reset, as the 15-minute poll effectively does for the
    /// deltas the NOC archives.
    pub fn collect(&mut self) -> SnmpCounters {
        std::mem::take(self)
    }
}

/// A wrap-aware view of the era's 32-bit SNMP counters.
///
/// MIB-II counters were 32 bits; at T3 byte rates `ifInOctets` wrapped
/// in well under the 15-minute poll interval's worst case, and the NOC's
/// delta computation had to assume at most one wrap per poll — the
/// operational reason poll intervals could not simply be lengthened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counter32 {
    value: u32,
}

impl Counter32 {
    /// Current raw (wrapped) value.
    #[must_use]
    pub fn value(&self) -> u32 {
        self.value
    }

    /// Add to the counter, wrapping as 32-bit hardware does.
    pub fn add(&mut self, delta: u64) {
        self.value = self.value.wrapping_add(delta as u32);
    }

    /// Delta since a previous reading, assuming at most one wrap —
    /// correct iff the true delta is below 2³² (the polling-frequency
    /// requirement the NOC operated under).
    #[must_use]
    pub fn delta_since(&self, previous: Counter32) -> u64 {
        u64::from(self.value.wrapping_sub(previous.value))
    }

    /// Minimum poll frequency (polls/second) at which single-wrap deltas
    /// stay unambiguous for a given rate (units/second).
    #[must_use]
    pub fn min_poll_hz(rate_per_sec: f64) -> f64 {
        rate_per_sec / f64::from(u32::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettrace::Micros;

    #[test]
    fn counts_every_packet() {
        let mut c = SnmpCounters::default();
        for i in 0..100u64 {
            c.count(&PacketRecord::new(Micros(i), 250));
        }
        assert_eq!(c.packets, 100);
        assert_eq!(c.octets, 25_000);
    }

    #[test]
    fn bulk_and_packet_paths_agree() {
        let mut a = SnmpCounters::default();
        let mut b = SnmpCounters::default();
        for i in 0..50u64 {
            a.count(&PacketRecord::new(Micros(i), 100));
        }
        b.count_bulk(50, 5_000);
        assert_eq!(a, b);
    }

    #[test]
    fn counter32_wraps_and_recovers_delta() {
        let mut c = Counter32::default();
        c.add(u64::from(u32::MAX) - 10);
        let before = c;
        c.add(30); // wraps past 2^32
        assert!(c.value() < before.value());
        assert_eq!(c.delta_since(before), 30);
    }

    #[test]
    fn counter32_double_wrap_is_ambiguous() {
        // The documented limitation: a delta of 2^32 + 5 reads as 5.
        let mut c = Counter32::default();
        let before = c;
        c.add((1u64 << 32) + 5);
        assert_eq!(c.delta_since(before), 5);
    }

    #[test]
    fn counter32_poll_frequency_for_t3() {
        // T3 octet rate ~ 45 Mbit/s / 8 = 5.625e6 B/s: a 32-bit octet
        // counter wraps every ~763 s, so polls must come at least every
        // ~12.7 minutes — the 15-minute cycle was marginal, which is
        // historically accurate.
        let hz = Counter32::min_poll_hz(5.625e6);
        let wrap_secs = 1.0 / hz;
        assert!(wrap_secs > 700.0 && wrap_secs < 800.0, "{wrap_secs}");
    }

    #[test]
    fn collect_resets() {
        let mut c = SnmpCounters::default();
        c.count_bulk(10, 1000);
        let snap = c.collect();
        assert_eq!(snap.packets, 10);
        assert_eq!(c.packets, 0);
    }
}
