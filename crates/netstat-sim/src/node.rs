//! The collector node: finite categorization capacity + optional
//! sampling.
//!
//! A node carries two measurement paths (paper §2):
//!
//! * the **forwarding path** increments SNMP counters for every packet —
//!   it never loses;
//! * the **categorization path** (one dedicated RT/PC on T1; the main
//!   RS/6000 CPU fed by subsystem firmware on T3) examines packet headers
//!   to build the Table 1 objects. It can examine at most
//!   `capacity_pps` headers per second; arrivals beyond that are lost
//!   *to categorization only*. Deploying 1-in-k systematic sampling
//!   divides the offered header load by `k`, which is precisely why the
//!   operator deployed it in September 1991.

use crate::objects::{ArtsObjects, ObjectSet};
use crate::snmp::SnmpCounters;
use nettrace::PacketRecord;
use sampling::{Sampler, SystematicSampler};

/// One collection cycle's report from a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeReport {
    /// Forwarding-path truth.
    pub snmp_packets: u64,
    /// Forwarding-path byte truth.
    pub snmp_octets: u64,
    /// Headers actually categorized this cycle.
    pub categorized: u64,
    /// Headers selected for categorization but dropped by the overloaded
    /// processor.
    pub missed: u64,
    /// The sampling interval in force (1 = unsampled).
    pub sampling_interval: u64,
}

impl NodeReport {
    /// The categorization pipeline's population estimate: categorized
    /// headers scaled by the sampling interval. This is the "NNStat"
    /// series of Figure 1.
    #[must_use]
    pub fn estimated_packets(&self) -> u64 {
        self.categorized * self.sampling_interval
    }

    /// Relative discrepancy between SNMP truth and the categorization
    /// estimate, in `[0, 1]` (0 = perfect agreement).
    #[must_use]
    pub fn discrepancy(&self) -> f64 {
        if self.snmp_packets == 0 {
            return 0.0;
        }
        (self.snmp_packets as f64 - self.estimated_packets() as f64).abs()
            / self.snmp_packets as f64
    }
}

/// A backbone node with finite categorization capacity.
#[derive(Debug)]
pub struct CollectorNode {
    snmp: SnmpCounters,
    objects: ArtsObjects,
    sampler: Option<SystematicSampler>,
    sampling_interval: u64,
    capacity_pps: u64,
    current_second: Option<u64>,
    examined_this_second: u64,
    categorized: u64,
    missed: u64,
}

impl CollectorNode {
    /// A node whose categorization processor can examine
    /// `capacity_pps` headers per second, with the given object set.
    ///
    /// # Panics
    /// Panics if `capacity_pps` is zero.
    #[must_use]
    pub fn new(set: ObjectSet, capacity_pps: u64) -> Self {
        assert!(capacity_pps > 0, "capacity must be positive");
        CollectorNode {
            snmp: SnmpCounters::default(),
            objects: ArtsObjects::new(set),
            sampler: None,
            sampling_interval: 1,
            capacity_pps,
            current_second: None,
            examined_this_second: 0,
            categorized: 0,
            missed: 0,
        }
    }

    /// Deploy 1-in-k systematic sampling in front of the categorization
    /// processor (`k = 1` disables sampling). This is the September 1991
    /// intervention.
    ///
    /// # Panics
    /// Panics if `k` is zero.
    pub fn deploy_sampling(&mut self, k: u64) {
        assert!(k > 0, "sampling interval must be positive");
        self.sampling_interval = k;
        self.sampler = if k > 1 {
            Some(SystematicSampler::new(k as usize))
        } else {
            None
        };
    }

    /// The live object set.
    #[must_use]
    pub fn objects(&self) -> &ArtsObjects {
        &self.objects
    }

    /// Forwarding-path counters.
    #[must_use]
    pub fn snmp(&self) -> &SnmpCounters {
        &self.snmp
    }

    /// Flush the arrival-rate histogram's in-progress second and return
    /// the finished histogram (read this before inspecting rate objects
    /// mid-cycle; [`CollectorNode::collect`] resets it).
    pub fn finish_rates(&mut self) -> &nettrace::Histogram {
        self.objects.rates.finish()
    }

    /// Offer one forwarded packet (trace-driven operation).
    ///
    /// Packets must arrive in timestamp order. Returns `true` if the
    /// packet's header was categorized.
    pub fn offer(&mut self, pkt: &PacketRecord) -> bool {
        self.snmp.count(pkt);

        // Sampling gate ahead of the categorization processor.
        let selected = match &mut self.sampler {
            Some(s) => s.offer(pkt),
            None => true,
        };
        if !selected {
            return false;
        }

        // Per-second capacity accounting.
        let sec = pkt.timestamp.whole_secs();
        if self.current_second != Some(sec) {
            self.current_second = Some(sec);
            self.examined_this_second = 0;
        }
        if self.examined_this_second >= self.capacity_pps {
            self.missed += 1;
            return false;
        }
        self.examined_this_second += 1;
        self.categorized += 1;
        self.objects.observe(pkt);
        true
    }

    /// Bulk per-second driving for scenarios whose volumes make
    /// packet-level simulation infeasible (Figure 1's billions of
    /// packets/month): `packets` arrive uniformly within one second with
    /// `octets` total bytes. Object contents are not maintained on this
    /// path — only the coverage counters.
    pub fn offer_second_bulk(&mut self, packets: u64, octets: u64) {
        self.snmp.count_bulk(packets, octets);
        let offered_to_categorization = packets / self.sampling_interval;
        let examined = offered_to_categorization.min(self.capacity_pps);
        self.categorized += examined;
        self.missed += offered_to_categorization - examined;
    }

    /// Collect-and-reset: report this cycle and clear all counters and
    /// objects (the 15-minute NOC poll).
    pub fn collect(&mut self) -> NodeReport {
        let snmp = self.snmp.collect();
        let report = NodeReport {
            snmp_packets: snmp.packets,
            snmp_octets: snmp.octets,
            categorized: self.categorized,
            missed: self.missed,
            sampling_interval: self.sampling_interval,
        };
        // One flush per poll cycle, not per packet: the offer() path stays
        // atomic-free.
        if obskit::recording_enabled() {
            obskit::counter("netstat_polls_total").inc();
            obskit::counter("netstat_snmp_packets_total").add(report.snmp_packets);
            obskit::counter("netstat_categorized_total").add(report.categorized);
            obskit::counter("netstat_missed_total").add(report.missed);
        }
        self.categorized = 0;
        self.missed = 0;
        self.objects.reset();
        self.current_second = None;
        self.examined_this_second = 0;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettrace::Micros;

    fn burst(second: u64, count: u64, size: u16) -> Vec<PacketRecord> {
        (0..count)
            .map(|i| {
                PacketRecord::new(
                    Micros(second * 1_000_000 + i * (1_000_000 / count.max(1))),
                    size,
                )
            })
            .collect()
    }

    #[test]
    fn under_capacity_categorizes_everything() {
        let mut node = CollectorNode::new(ObjectSet::T1, 1000);
        for p in burst(0, 500, 100) {
            assert!(node.offer(&p));
        }
        let r = node.collect();
        assert_eq!(r.snmp_packets, 500);
        assert_eq!(r.categorized, 500);
        assert_eq!(r.missed, 0);
        assert_eq!(r.estimated_packets(), 500);
        assert_eq!(r.discrepancy(), 0.0);
    }

    #[test]
    fn over_capacity_loses_categorization_not_snmp() {
        let mut node = CollectorNode::new(ObjectSet::T1, 300);
        for p in burst(0, 1000, 100) {
            node.offer(&p);
        }
        let r = node.collect();
        assert_eq!(r.snmp_packets, 1000, "SNMP never loses");
        assert_eq!(r.categorized, 300);
        assert_eq!(r.missed, 700);
        assert!(r.discrepancy() > 0.69 && r.discrepancy() < 0.71);
    }

    #[test]
    fn capacity_resets_each_second() {
        let mut node = CollectorNode::new(ObjectSet::T1, 300);
        for sec in 0..3 {
            for p in burst(sec, 400, 100) {
                node.offer(&p);
            }
        }
        let r = node.collect();
        assert_eq!(r.categorized, 900); // 300 per second
        assert_eq!(r.missed, 300);
    }

    #[test]
    fn sampling_relieves_the_processor() {
        // 1000 pps against a 300 pps processor: unsampled loses 70%;
        // 1-in-50 examines only 20/sec and loses nothing.
        let mut node = CollectorNode::new(ObjectSet::T1, 300);
        node.deploy_sampling(50);
        for p in burst(0, 1000, 100) {
            node.offer(&p);
        }
        let r = node.collect();
        assert_eq!(r.snmp_packets, 1000);
        assert_eq!(r.categorized, 20);
        assert_eq!(r.missed, 0);
        assert_eq!(r.estimated_packets(), 1000);
        assert_eq!(r.discrepancy(), 0.0);
    }

    #[test]
    fn bulk_path_matches_packet_path_coverage() {
        let mut a = CollectorNode::new(ObjectSet::T3, 300);
        for p in burst(0, 1000, 100) {
            a.offer(&p);
        }
        let mut b = CollectorNode::new(ObjectSet::T3, 300);
        b.offer_second_bulk(1000, 100_000);
        let (ra, rb) = (a.collect(), b.collect());
        assert_eq!(ra.snmp_packets, rb.snmp_packets);
        assert_eq!(ra.categorized, rb.categorized);
        assert_eq!(ra.missed, rb.missed);
    }

    #[test]
    fn collect_resets_cycle() {
        let mut node = CollectorNode::new(ObjectSet::T1, 1000);
        for p in burst(0, 100, 100) {
            node.offer(&p);
        }
        let _ = node.collect();
        let r2 = node.collect();
        assert_eq!(r2.snmp_packets, 0);
        assert_eq!(r2.categorized, 0);
        assert_eq!(node.objects().matrix.pairs(), 0);
    }

    #[test]
    fn objects_fill_from_packet_path() {
        let mut node = CollectorNode::new(ObjectSet::T1, 10_000);
        for (i, p) in burst(0, 100, 552).iter().enumerate() {
            let p = p.with_nets(1, (i % 5) as u16 + 1).with_ports(1024, 25);
            node.offer(&p);
        }
        assert_eq!(node.objects().matrix.pairs(), 5);
        assert_eq!(node.objects().ports.port(25).packets, 100);
        assert_eq!(node.objects().protocols.tcp.packets, 100);
    }

    #[test]
    fn report_discrepancy_zero_population() {
        let r = NodeReport {
            snmp_packets: 0,
            snmp_octets: 0,
            categorized: 0,
            missed: 0,
            sampling_interval: 50,
        };
        assert_eq!(r.discrepancy(), 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = CollectorNode::new(ObjectSet::T1, 0);
    }
}
