//! Ablation: *why* the paper's packet-driven methods tie.
//!
//! Cochran's theory (paper §5) says systematic sampling only differs
//! from random sampling when the population has serial correlation at
//! the sampling lag. This experiment measures the packet-size sequence's
//! autocorrelation on the study trace (inside the white-noise band at
//! the sampled lags → ties expected) and contrasts it with a
//! deliberately periodic population, where the ACF — and the method
//! variances — blow apart.

use netsynth::canonical;
use nettrace::Trace;
use sampling::experiment::MethodFamily;
use sampling::theory::estimator_variance;
use statkit::acf::{acf, white_noise_band};
use std::fmt::Write;

/// Render the ACF table and the matched variance comparison.
#[must_use]
pub fn run(trace: &Trace, seed: u64) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "## Ablation — serial correlation explains the method ties (§5)"
    )
    .unwrap();

    let sizes: Vec<f64> = trace.sizes().iter().map(|&s| f64::from(s)).collect();
    let lags = [1usize, 2, 10, 50, 200, 1000];
    let band = white_noise_band(sizes.len());

    let periodic = canonical::periodic(100_000, 50, seed);
    let periodic_sizes: Vec<f64> = periodic.sizes().iter().map(|&s| f64::from(s)).collect();

    writeln!(out, "\npacket-size ACF (white-noise 95% band: ±{band:.5})").unwrap();
    writeln!(
        out,
        "{:>8} {:>14} {:>16}",
        "lag", "study trace", "periodic (p=50)"
    )
    .unwrap();
    let study_acf = acf(&sizes, &lags);
    let periodic_acf = acf(&periodic_sizes, &lags);
    for ((lag, s), p) in lags.iter().zip(&study_acf).zip(&periodic_acf) {
        writeln!(out, "{lag:>8} {s:>14.5} {p:>16.5}").unwrap();
    }

    // Matched consequence: method variances at k = 50.
    writeln!(
        out,
        "\nmean-size estimator variance at k = 50 (consequence of the ACF):"
    )
    .unwrap();
    writeln!(
        out,
        "{:>18} {:>13} {:>13} {:>13}",
        "population", "systematic", "stratified", "random"
    )
    .unwrap();
    for (name, packets) in [
        ("study trace", trace.packets()),
        ("periodic (p=50)", periodic.packets()),
    ] {
        let sys = estimator_variance(packets, MethodFamily::Systematic, 50, 50, seed).variance;
        let strat =
            estimator_variance(packets, MethodFamily::StratifiedRandom, 50, 50, seed).variance;
        let rand = estimator_variance(packets, MethodFamily::SimpleRandom, 50, 50, seed).variance;
        writeln!(out, "{name:>18} {sys:>13.2} {strat:>13.2} {rand:>13.2}").unwrap();
    }
    writeln!(
        out,
        "\nshape check: the study trace's size ACF at the sampling lags is tiny (|r| ~ band),\n\
         so the three packet methods tie; the periodic population's ACF is ±1 at\n\
         resonant lags and systematic sampling's variance explodes accordingly."
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use netsynth::TraceProfile;

    #[test]
    fn renders_acf_and_variances() {
        let t = netsynth::generate(&TraceProfile::short(60), 13);
        let s = super::run(&t, 13);
        assert!(s.contains("ACF"));
        assert!(s.contains("periodic"));
        assert!(s.contains("systematic"));
    }
}
