//! Footnote 3: the conclusions are not specific to the SDSC trace.
//!
//! The paper's preliminary experiments used FIX-West data and found "the
//! results of the two data sets were quite similar". This experiment
//! reruns the headline comparison (mean φ of each method class, both
//! targets) on the SDSC and FIX-West workload profiles and on multiple
//! seeds, and checks the orderings agree.

use netsynth::TraceProfile;
use nettrace::Micros;
use sampling::experiment::{Experiment, MethodFamily};
use sampling::Target;
use std::fmt::Write;

/// Mean φ of the packet-driven trio and the timer pair at k.
fn class_phis(trace: &nettrace::Trace, target: Target, k: usize) -> (f64, f64) {
    let exp = Experiment::over_window(trace, Micros::ZERO, Micros::from_secs(900), target);
    let phi = |f: MethodFamily| exp.run_family(f, k, 5, 17).mean_phi().unwrap_or(f64::NAN);
    let packet = (phi(MethodFamily::Systematic)
        + phi(MethodFamily::StratifiedRandom)
        + phi(MethodFamily::SimpleRandom))
        / 3.0;
    let timer = (phi(MethodFamily::SystematicTimer) + phi(MethodFamily::StratifiedTimer)) / 2.0;
    (packet, timer)
}

/// Render the two-dataset comparison.
#[must_use]
pub fn run(seed: u64) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "## Footnote 3 — robustness across data sets (SDSC vs FIX-West profile)"
    )
    .unwrap();
    writeln!(
        out,
        "{:<22} {:>14} {:>13} {:>13} {:>8}",
        "dataset/target", "k", "packet phi", "timer phi", "ratio"
    )
    .unwrap();

    let datasets = [
        ("SDSC entrance", TraceProfile::short(900)),
        ("FIX-West exchange", {
            let mut p = TraceProfile::fixwest_1993();
            p.duration_secs = 900;
            p
        }),
    ];
    let mut ratios = Vec::new();
    for (name, profile) in &datasets {
        let trace = netsynth::generate(profile, seed);
        for target in [Target::PacketSize, Target::Interarrival] {
            for k in [64usize, 1024] {
                let (packet, timer) = class_phis(&trace, target, k);
                let ratio = timer / packet.max(1e-12);
                if target == Target::Interarrival {
                    ratios.push(ratio);
                }
                writeln!(
                    out,
                    "{:<22} {:>14} {:>13.5} {:>13.5} {:>8.2}",
                    format!("{name}/{target}"),
                    k,
                    packet,
                    timer,
                    ratio
                )
                .unwrap();
            }
        }
    }
    let all_agree = ratios.iter().all(|&r| r > 2.0);
    writeln!(
        out,
        "\nshape check: on both data sets the interarrival timer/packet phi ratio stays\n\
         well above 1 ({}) — \"the results of the two data sets were quite similar\".",
        if all_agree { "it does" } else { "VIOLATED" }
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    #[test]
    #[ignore = "900-second double-dataset sweep; run with --ignored or via the binary"]
    fn orderings_agree_across_datasets() {
        let s = super::run(5);
        assert!(!s.contains("VIOLATED"), "{s}");
    }

    #[test]
    fn renders() {
        // Smoke test against tiny traces is done by integration tests;
        // here just check the module compiles its format strings.
        assert!(super::run as fn(u64) -> String as usize != 0);
    }
}
