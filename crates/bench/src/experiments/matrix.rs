//! §8's hard case: the sampled source-destination traffic matrix.
//!
//! "More difficult would be to characterize the goodness of fit of the
//! sampled source-destination traffic matrix, mainly because of its
//! large size and because many traffic pairs generate small amounts of
//! traffic during typical sampling intervals." This experiment
//! quantifies exactly that: pairs are ranked by true volume, grouped
//! into deciles, and the sampled (scaled-up) estimate's relative error
//! is reported per decile — accurate at the head, useless in the tail.

use netstat_sim::objects::TrafficMatrix;
use nettrace::{Micros, Trace};
use sampling::{select_indices, MethodSpec};
use std::fmt::Write;

/// Render the per-decile matrix-estimation error table.
#[must_use]
pub fn run(trace: &Trace, k: usize) -> String {
    let mut out = String::new();
    let packets = trace.packets();

    // Truth.
    let mut truth = TrafficMatrix::default();
    for p in packets {
        truth.observe(p);
    }

    // Sample at 1-in-k and scale up.
    let mut sampler = MethodSpec::Systematic { interval: k }.build(
        packets.len(),
        Micros::ZERO,
        0,
        crate::STUDY_SEED,
    );
    let mut sampled = TrafficMatrix::default();
    for &i in &select_indices(sampler.as_mut(), packets) {
        sampled.observe(&packets[i]);
    }

    writeln!(
        out,
        "## §8 hard case — sampled traffic matrix at 1-in-{k} ({} pairs, {} packets)",
        truth.pairs(),
        packets.len()
    )
    .unwrap();

    // Rank all pairs by true volume and group by rank band: the matrix
    // is Zipf-like, so rank bands (not equal-count deciles) expose the
    // head/tail gradient the paper describes.
    let ranked = truth.top_pairs(truth.pairs());
    let bands: [(usize, usize, &str); 5] = [
        (0, 10, "top 10"),
        (10, 100, "11-100"),
        (100, 1000, "101-1k"),
        (1000, 10_000, "1k-10k"),
        (10_000, usize::MAX, "rest"),
    ];
    writeln!(
        out,
        "{:>10} {:>10} {:>16} {:>16} {:>14}",
        "rank band", "pairs", "true pkts/pair", "median rel.err", "zero-sampled"
    )
    .unwrap();
    for (lo, hi, label) in bands {
        let hi = hi.min(ranked.len());
        if lo >= hi {
            continue;
        }
        let slice = &ranked[lo..hi];
        let mut errs: Vec<f64> = Vec::with_capacity(slice.len());
        let mut zero = 0usize;
        let mut true_sum = 0u64;
        for ((s, dst), c) in slice {
            true_sum += c.packets;
            let est = sampled.cell(*s, *dst).packets * k as u64;
            if est == 0 {
                zero += 1;
            }
            errs.push((est as f64 - c.packets as f64).abs() / c.packets as f64);
        }
        errs.sort_by(f64::total_cmp);
        let median = errs[errs.len() / 2];
        writeln!(
            out,
            "{:>10} {:>10} {:>16.1} {:>15.1}% {:>13.1}%",
            label,
            slice.len(),
            true_sum as f64 / slice.len() as f64,
            median * 100.0,
            zero as f64 / slice.len() as f64 * 100.0
        )
        .unwrap();
    }
    writeln!(
        out,
        "\nshape check: the heaviest pairs estimate to within a few percent while the\n\
         long tail is mostly zero-sampled (median error 100%) — the §8 difficulty, measured."
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsynth::TraceProfile;

    #[test]
    fn head_beats_tail() {
        let t = netsynth::generate(&TraceProfile::short(120), 12);
        let s = run(&t, 20);
        assert!(s.contains("rank band"));
        assert!(s.contains("zero-sampled"));
        let err_of = |label: &str| -> f64 {
            let row = s
                .lines()
                .find(|l| l.trim_start().starts_with(label))
                .unwrap_or_else(|| panic!("missing row {label}"));
            row.split_whitespace()
                .rev()
                .nth(1)
                .unwrap()
                .trim_end_matches('%')
                .parse()
                .unwrap()
        };
        let head = err_of("top 10");
        let tail = err_of("rest");
        assert!(head < 60.0, "top-10 median error {head}%");
        assert!(tail >= 99.0, "tail should be mostly zero-sampled: {tail}%");
        assert!(head < tail);
    }
}
