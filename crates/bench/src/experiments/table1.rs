//! Table 1: the statistical objects collected per backbone node.
//!
//! The paper's Table 1 is an inventory; this experiment *builds* every
//! object over the study hour on a T1-flavor collector node and prints
//! each object's headline contents, demonstrating that the full
//! NNStat/ARTS object set is implemented (the T3 subset being the first
//! three).

use netstat_sim::objects::WELL_KNOWN_PORTS;
use netstat_sim::{CollectorNode, ObjectSet};
use nettrace::Trace;
use std::fmt::Write;

/// Render the Table 1 object inventory with live contents.
#[must_use]
pub fn run(trace: &Trace) -> String {
    let mut out = String::new();
    let mut node = CollectorNode::new(ObjectSet::T1, u64::MAX / 2);
    for p in trace.iter() {
        node.offer(p);
    }

    writeln!(
        out,
        "## Table 1 — packet categorization objects (T1 node, unsampled)"
    )
    .unwrap();
    let o = node.objects();

    writeln!(out, "\nsource-destination traffic matrix (T1: Y, T3: Y)").unwrap();
    writeln!(
        out,
        "  distinct (src,dst) network pairs: {}",
        o.matrix.pairs()
    )
    .unwrap();
    for ((s, d), c) in o.matrix.top_pairs(5) {
        writeln!(
            out,
            "  net {s:>4} -> net {d:>4}: {:>8} packets {:>11} bytes",
            c.packets, c.bytes
        )
        .unwrap();
    }

    writeln!(
        out,
        "\nTCP/UDP port distribution, well-known subset (T1: Y, T3: Y)"
    )
    .unwrap();
    for (p, c) in o.ports.ranked() {
        writeln!(
            out,
            "  port {p:>4}: {:>8} packets {:>11} bytes",
            c.packets, c.bytes
        )
        .unwrap();
    }
    writeln!(
        out,
        "  other    : {:>8} packets {:>11} bytes (tracked well-known set: {:?})",
        o.ports.other().packets,
        o.ports.other().bytes,
        WELL_KNOWN_PORTS
    )
    .unwrap();

    writeln!(out, "\nprotocol over IP distribution (T1: Y, T3: Y)").unwrap();
    for (name, c) in [
        ("TCP", o.protocols.tcp),
        ("UDP", o.protocols.udp),
        ("ICMP", o.protocols.icmp),
        ("other", o.protocols.other),
    ] {
        writeln!(
            out,
            "  {name:<5}: {:>8} packets {:>11} bytes",
            c.packets, c.bytes
        )
        .unwrap();
    }

    writeln!(
        out,
        "\npacket-length histogram, 50-byte bins (T1: Y, T3: N/A)"
    )
    .unwrap();
    let lens = &o.lengths;
    let total = lens.total().max(1);
    for (i, &c) in lens.counts().iter().enumerate() {
        if c * 100 / total >= 1 {
            writeln!(
                out,
                "  {:<10} {:>8} packets ({:>4.1}%)",
                lens.spec().bin_label(i),
                c,
                c as f64 / total as f64 * 100.0
            )
            .unwrap();
        }
    }

    writeln!(
        out,
        "\nper-second arrival-rate histogram, 20 pps bins (T1: Y, T3: N/A)"
    )
    .unwrap();
    let mut node2 = node;
    let rates = node2.finish_rates();
    let total = rates.total().max(1);
    let mut shown = 0;
    for (i, &c) in rates.counts().iter().enumerate() {
        if c > 0 && shown < 12 {
            writeln!(
                out,
                "  {:<12} {:>6} seconds ({:>4.1}%)",
                rates.spec().bin_label(i),
                c,
                c as f64 / total as f64 * 100.0
            )
            .unwrap();
            shown += 1;
        }
    }

    writeln!(out, "\ntransit traffic volume (T1: Y, T3: N/A)").unwrap();
    writeln!(
        out,
        "  {} packets, {} bytes",
        node2.objects().transit.packets,
        node2.objects().transit.bytes
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsynth::TraceProfile;

    #[test]
    fn renders_all_six_objects() {
        let t = netsynth::generate(&TraceProfile::short(20), 2);
        let s = run(&t);
        for needle in [
            "traffic matrix",
            "port distribution",
            "protocol over IP",
            "packet-length histogram",
            "arrival-rate histogram",
            "transit traffic volume",
        ] {
            assert!(s.contains(needle), "missing {needle}");
        }
    }
}
