//! Figures 4 and 5: sampled histograms at five granularities.
//!
//! Figure 4 shows the packet-size distribution, Figure 5 the
//! interarrival-time distribution (with φ scores in the legend), both
//! over a 1024-second interval under systematic sampling at five
//! exponentially spaced granularities.

use nettrace::{Micros, Trace};
use sampling::experiment::{Experiment, MethodFamily};
use sampling::{disparity, select_indices, Target};
use std::fmt::Write;

/// The five granularities plotted (exponentially spaced, as the paper's
/// legends show).
pub const FIVE_GRANULARITIES: [usize; 5] = [4, 64, 1024, 8192, 32_768];

/// Render one of the two figures.
#[must_use]
pub fn run(trace: &Trace, target: Target) -> String {
    let mut out = String::new();
    let fig = match target {
        Target::PacketSize => "Figure 4 — packet-size distribution",
        Target::Interarrival => "Figure 5 — interarrival-time distribution",
        _ => "sampled distribution",
    };
    writeln!(
        out,
        "## {fig} at five systematic sampling granularities (1024 s interval)"
    )
    .unwrap();

    let window = trace.window(Micros::ZERO, Micros::from_secs(1024));
    let exp = Experiment::new(window, target);
    let pop = exp.population_histogram();
    let labels = target.labels();

    // Header: bin labels.
    write!(out, "{:>10}", "1/k").unwrap();
    for l in &labels {
        write!(out, " {l:>12}").unwrap();
    }
    writeln!(out, " {:>9}", "phi").unwrap();

    // Population row.
    write!(out, "{:>10}", "population").unwrap();
    for p in pop.proportions() {
        write!(out, " {p:>12.4}").unwrap();
    }
    writeln!(out, " {:>9}", "-").unwrap();

    for k in FIVE_GRANULARITIES {
        let spec = MethodFamily::Systematic.at_granularity(k, exp.mean_pps());
        let mut sampler = spec.build(window.len(), window[0].timestamp, 0, crate::STUDY_SEED);
        let selected = select_indices(sampler.as_mut(), window);
        let hist = target.sample_histogram(window, &selected);
        write!(out, "{k:>10}").unwrap();
        for p in hist.proportions() {
            write!(out, " {p:>12.4}").unwrap();
        }
        match disparity(pop, &hist) {
            Some(r) => writeln!(out, " {:>9.5}", r.phi).unwrap(),
            None => writeln!(out, " {:>9}", "empty").unwrap(),
        }
    }
    writeln!(
        out,
        "\nshape check: bin proportions track the population at fine granularities and\ndrift (with rising phi) as the fraction falls — the paper's legend ordering."
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsynth::TraceProfile;

    #[test]
    fn renders_population_and_five_rows() {
        let t = netsynth::generate(&TraceProfile::short(40), 4);
        for target in [Target::PacketSize, Target::Interarrival] {
            let s = run(&t, target);
            assert!(s.contains("population"));
            assert!(s.contains("32768"));
        }
    }
}
