//! One module per reproduced table/figure. Every `run` function returns
//! the rendered text so `repro_all` can compose the full report.

pub mod acf_ablation;
pub mod adaptive_ablation;
pub mod bins;
pub mod chi2test;
pub mod correlation;
pub mod figure1;
pub mod figure10_11;
pub mod figure3;
pub mod figure4_5;
pub mod figure6_7;
pub mod figure8_9;
pub mod gof_difficulty;
pub mod matrix;
pub mod nullband;
pub mod proportions;
pub mod robustness;
pub mod samplesize;
pub mod table1;
pub mod table2_3;
pub mod theory;
pub mod volume;
