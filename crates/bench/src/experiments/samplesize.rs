//! §5.1: Cochran's theoretical sample sizes for the study population.

use nettrace::Trace;
use sampling::samplesize::{
    finite_population_correction, implied_fraction, required_sample_size, SampleSizeSpec,
};
use statkit::Moments;
use std::fmt::Write;

/// Render the §5.1 worked examples using both the paper's population
/// parameters and the synthetic population's measured ones.
#[must_use]
pub fn run(trace: &Trace) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "## §5.1 — theoretical sample sizes for estimating the mean (95% confidence)"
    )
    .unwrap();

    let size_m = Moments::from_values(trace.iter().map(|p| f64::from(p.size)));
    let ia_m = Moments::from_values(trace.interarrivals().iter().map(|&x| x as f64));
    let n = trace.len() as u64;

    writeln!(
        out,
        "{:<24} {:>8} {:>8} {:>11} {:>11} {:>13}",
        "population / accuracy", "mean", "sd", "n (paper)", "n (ours)", "fraction"
    )
    .unwrap();

    let rows: [(&str, f64, f64, f64, f64, f64, u64); 4] = [
        (
            "packet size   ±5%",
            232.0,
            236.0,
            size_m.mean(),
            size_m.std_dev(),
            5.0,
            1590,
        ),
        (
            "packet size   ±1%",
            232.0,
            236.0,
            size_m.mean(),
            size_m.std_dev(),
            1.0,
            39_752,
        ),
        (
            "interarrival  ±5%",
            2358.0,
            2734.0,
            ia_m.mean(),
            ia_m.std_dev(),
            5.0,
            2066,
        ),
        (
            "interarrival  ±1%",
            2358.0,
            2734.0,
            ia_m.mean(),
            ia_m.std_dev(),
            1.0,
            51_644,
        ),
    ];
    for (label, _pm, _ps, mean, sd, acc, paper_n) in rows {
        let ours = required_sample_size(&SampleSizeSpec {
            mean,
            std_dev: sd,
            accuracy_pct: acc,
            confidence: 0.95,
        });
        writeln!(
            out,
            "{:<24} {:>8.1} {:>8.1} {:>11} {:>11} {:>12.3}%",
            label,
            mean,
            sd,
            paper_n,
            ours,
            implied_fraction(ours, n) * 100.0
        )
        .unwrap();
    }

    let n5 = required_sample_size(&SampleSizeSpec {
        mean: 232.0,
        std_dev: 236.0,
        accuracy_pct: 5.0,
        confidence: 0.95,
    });
    writeln!(
        out,
        "\nfinite-population check: n = {} from the infinite formula; corrected for N = {}: {} \
         (the paper notes the correction is negligible at this fraction).",
        n5,
        n,
        finite_population_correction(n5, n)
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsynth::TraceProfile;

    #[test]
    fn renders_four_rows() {
        let t = netsynth::generate(&TraceProfile::short(30), 9);
        let s = run(&t);
        assert!(s.contains("packet size"));
        assert!(s.contains("interarrival"));
        assert!(s.contains("1590"));
        assert!(
            s.contains("51644")
                || s.contains("51_644")
                || s.contains("51,644")
                || s.contains("2066")
        );
    }
}
