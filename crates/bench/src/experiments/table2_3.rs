//! Tables 2 and 3: population summary statistics of the study hour.
//!
//! Table 2 summarizes the per-second packet/byte/mean-size
//! distributions; Table 3 summarizes the packet-size and
//! interarrival-time populations (under the 400 µs capture clock). Both
//! are printed next to the paper's published values.

use netsynth::PaperTargets;
use nettrace::{PerSecondSeries, Trace};
use statkit::SummaryRow;
use std::fmt::Write;

/// Render Table 2.
#[must_use]
pub fn run_table2(trace: &Trace) -> String {
    let mut out = String::new();
    let t = PaperTargets::sdsc_1993();
    let s = PerSecondSeries::from_trace(trace);
    writeln!(
        out,
        "## Table 2 — per-second distributions (synthetic hour, {} packets)",
        trace.len()
    )
    .unwrap();
    writeln!(out, "{}", SummaryRow::header()).unwrap();
    writeln!(out, "packets/s (measured)").unwrap();
    writeln!(out, "{}", SummaryRow::from_data(&s.packet_rates())).unwrap();
    writeln!(
        out,
        "packets/s (paper)      min {} | 25% {} | med {} | 75% {} | max {} | mean {} | sd {} | skew {} | kurt {}",
        t.pps.0, t.pps.1, t.pps.2, t.pps.3, t.pps.4, t.pps.5, t.pps.6, t.pps.7, t.pps.8
    )
    .unwrap();
    writeln!(out, "kB/s (measured)").unwrap();
    writeln!(out, "{}", SummaryRow::from_data(&s.kilobyte_rates())).unwrap();
    writeln!(
        out,
        "kB/s (paper)           min {} | 25% {} | med {} | 75% {} | max {} | mean {} | sd {} | skew {} | kurt {}",
        t.kbps.0, t.kbps.1, t.kbps.2, t.kbps.3, t.kbps.4, t.kbps.5, t.kbps.6, t.kbps.7, t.kbps.8
    )
    .unwrap();
    writeln!(out, "mean size/s (measured)").unwrap();
    writeln!(out, "{}", SummaryRow::from_data(&s.mean_sizes())).unwrap();
    writeln!(
        out,
        "mean size/s (paper)    min {} | 25% {} | med {} | 75% {} | max {} | mean {} | sd {} | skew {} | kurt {}",
        t.mean_size.0,
        t.mean_size.1,
        t.mean_size.2,
        t.mean_size.3,
        t.mean_size.4,
        t.mean_size.5,
        t.mean_size.6,
        t.mean_size.7,
        t.mean_size.8
    )
    .unwrap();
    out
}

/// Render Table 3.
#[must_use]
pub fn run_table3(trace: &Trace) -> String {
    let mut out = String::new();
    let t = PaperTargets::sdsc_1993();
    writeln!(
        out,
        "## Table 3 — population packet size and interarrival time"
    )
    .unwrap();
    writeln!(out, "{}", SummaryRow::header()).unwrap();
    let sizes: Vec<f64> = trace.sizes().iter().map(|&x| f64::from(x)).collect();
    writeln!(out, "packet size (measured)").unwrap();
    writeln!(out, "{}", SummaryRow::from_data(&sizes)).unwrap();
    writeln!(
        out,
        "packet size (paper)    min {} | 5% {} | 25% {} | med {} | 75% {} | 95% {} | max {} | mean {} | sd {}",
        t.size.0, t.size.1, t.size.2, t.size.3, t.size.4, t.size.5, t.size.6, t.size.7, t.size.8
    )
    .unwrap();
    let ia: Vec<f64> = trace.interarrivals().iter().map(|&x| x as f64).collect();
    writeln!(out, "interarrival us (measured, 400us clock)").unwrap();
    writeln!(out, "{}", SummaryRow::from_data(&ia)).unwrap();
    writeln!(
        out,
        "interarrival (paper)   min <400 | 5% <400 | 25% {} | med {} | 75% {} | 95% {} | max {} | mean {} | sd {}",
        t.interarrival.0,
        t.interarrival.1,
        t.interarrival.2,
        t.interarrival.3,
        t.interarrival.4,
        t.interarrival.5,
        t.interarrival.6
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsynth::TraceProfile;

    #[test]
    fn renders_on_short_trace() {
        let t = netsynth::generate(&TraceProfile::short(30), 1);
        let t2 = run_table2(&t);
        assert!(t2.contains("Table 2"));
        assert!(t2.contains("packets/s"));
        let t3 = run_table3(&t);
        assert!(t3.contains("Table 3"));
        assert!(t3.contains("interarrival"));
    }
}
