//! §5 ablation: the classical efficiency orderings on structured
//! populations.
//!
//! Cochran's theory (summarized by the paper) predicts method orderings
//! by population structure; this experiment measures the variance of the
//! mean-packet-size estimator on the three canonical populations of
//! `netsynth::canonical` and reports whether each prediction holds.

use netsynth::canonical;
use sampling::experiment::MethodFamily;
use sampling::theory::estimator_variance;
use std::fmt::Write;

const N: usize = 100_000;
const K: usize = 200;

/// Render the three-population variance comparison.
#[must_use]
pub fn run(seed: u64) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "## §5 theory — estimator variance by population structure (k = {K}, N = {N})"
    )
    .unwrap();
    writeln!(
        out,
        "{:<18} {:>13} {:>13} {:>13}  verdict",
        "population", "systematic", "stratified", "random"
    )
    .unwrap();

    let populations = [
        ("randomly ordered", canonical::randomly_ordered(N, seed)),
        ("linear trend", canonical::linear_trend(N, seed)),
        ("periodic (=k)", canonical::periodic(N, K, seed)),
    ];
    for (name, trace) in &populations {
        let packets = trace.packets();
        let sys = estimator_variance(packets, MethodFamily::Systematic, K, 200, seed).variance;
        let strat =
            estimator_variance(packets, MethodFamily::StratifiedRandom, K, 200, seed).variance;
        let rand = estimator_variance(packets, MethodFamily::SimpleRandom, K, 200, seed).variance;
        let verdict = match *name {
            "randomly ordered" => {
                let (max, min) = (
                    sys.max(strat).max(rand),
                    sys.min(strat).min(rand).max(1e-12),
                );
                if max / min < 3.0 {
                    "equivalent, as predicted"
                } else {
                    "UNEXPECTED spread"
                }
            }
            "linear trend" => {
                if strat <= sys * 1.2 && sys < rand {
                    "stratified <= systematic < random, as predicted"
                } else {
                    "UNEXPECTED ordering"
                }
            }
            _ => {
                if sys > 10.0 * strat && sys > 10.0 * rand {
                    "systematic collapses on resonance, as predicted"
                } else {
                    "UNEXPECTED: no resonance collapse"
                }
            }
        };
        writeln!(
            out,
            "{name:<18} {sys:>13.4} {strat:>13.4} {rand:>13.4}  {verdict}"
        )
        .unwrap();
    }
    writeln!(
        out,
        "\nnote: the study trace behaves like the randomly-ordered case — the paper's\nexplanation for why its five methods tie within their trigger class."
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_three_populations_with_verdicts() {
        let s = super::run(11);
        assert!(s.contains("randomly ordered"));
        assert!(s.contains("linear trend"));
        assert!(s.contains("periodic"));
        assert!(!s.contains("UNEXPECTED"), "theory predictions failed:\n{s}");
    }
}
