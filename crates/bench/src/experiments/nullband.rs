//! Extension: the φ null band — the paper's missing threshold, applied.
//!
//! §6: "we do not offer a precise threshold below which all φ-values are
//! acceptable". With the Monte-Carlo null band (`sampling::nullband`)
//! there is one: a method whose mean φ sits inside the band is
//! indistinguishable from unbiased random sampling *of its sample size*;
//! a method above the band is structurally biased. Applied to the
//! paper's five methods this turns Figure 8/9's visual impression into a
//! per-method verdict: all three packet-driven methods sit inside the
//! band at every fraction, both timer methods blow through it on the
//! interarrival target.

use nettrace::{Micros, Trace};
use sampling::experiment::{Experiment, MethodFamily};
use sampling::nullband::phi_null_band;
use sampling::Target;
use std::fmt::Write;

/// Render the per-method band classification for both paper targets.
#[must_use]
pub fn run(trace: &Trace, seed: u64) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "## Extension — phi null band: the paper's missing acceptance threshold"
    )
    .unwrap();
    for target in [Target::PacketSize, Target::Interarrival] {
        let exp = Experiment::over_window(trace, Micros::ZERO, Micros::from_secs(1024), target);
        writeln!(
            out,
            "\ntarget: {target} (1024 s interval; band = 95th pct of phi under unbiased sampling)"
        )
        .unwrap();
        writeln!(
            out,
            "{:>7} {:>10} {:>11}  method phi (flag if above band)",
            "1/k", "band p95", ""
        )
        .unwrap();
        for k in [64usize, 1024, 8192] {
            let result0 = exp.run_family(MethodFamily::Systematic, k, 5, seed);
            let Some(n) = result0.mean_sample_size() else {
                continue;
            };
            let band = phi_null_band(exp.population_histogram(), n as u64, 3000, seed);
            write!(out, "{:>7} {:>10.5} {:>11}", k, band.p95, "").unwrap();
            for family in MethodFamily::paper_five() {
                let phi = exp
                    .run_family(family, k, 5, seed)
                    .mean_phi()
                    .unwrap_or(f64::NAN);
                let flag = if band.consistent_at_95(phi) { "" } else { "*" };
                write!(out, " {}={:.4}{}", family.name(), phi, flag).unwrap();
            }
            writeln!(out).unwrap();
        }
    }
    writeln!(
        out,
        "\nshape check: packet-driven methods stay at or inside the band (their phi is\n\
         sampling noise); timer-driven methods exceed it by an order of magnitude on\n\
         the interarrival target (structural bias), turning Figure 9 into a test."
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use netsynth::TraceProfile;

    #[test]
    fn timer_methods_flagged_on_interarrival() {
        let t = netsynth::generate(&TraceProfile::short(120), 23);
        let s = super::run(&t, 23);
        // Timer methods should carry the above-band flag somewhere in the
        // interarrival section.
        let ia_section = s.split("target: interarrival").nth(1).expect("ia section");
        assert!(
            ia_section.contains("sys-timer=0.6") || ia_section.contains("sys-timer=0.7"),
            "timer phi should be ~0.6-0.8:\n{ia_section}"
        );
        assert!(ia_section.contains('*'), "no method flagged:\n{ia_section}");
    }
}
