//! Ablation: fixed-interval vs adaptive sampling under load growth.
//!
//! The NSFNET fixed its overload with a hand-picked constant interval
//! (1-in-50). A fixed interval is wrong twice: under light load it
//! throws away resolution it could afford, and under heavier-than-
//! planned load it overruns the processor again. The AIMD controller of
//! `sampling::adaptive` fixes both. This experiment drives three load
//! regimes through each design and reports the categorization load and
//! the resulting sample sizes.

use nettrace::Trace;
use sampling::adaptive::{AdaptiveConfig, AdaptiveSampler};
use sampling::{Sampler, SystematicSampler};
use std::fmt::Write;

/// Selections per second, summarized: total selections and the peak
/// per-second selection rate after a 20-second warm-up (the adaptive
/// controller needs a few control periods to converge; steady-state
/// behavior is what a capacity plan cares about).
const WARMUP_SECS: u64 = 20;

fn drive(sampler: &mut dyn Sampler, trace: &Trace) -> (usize, u32) {
    let mut total = 0usize;
    let mut peak_per_sec = 0u32;
    let mut current_sec = u64::MAX;
    let mut this_sec = 0u32;
    for p in trace.iter() {
        let sec = p.timestamp.whole_secs();
        if sec != current_sec {
            if current_sec != u64::MAX && current_sec >= WARMUP_SECS {
                peak_per_sec = peak_per_sec.max(this_sec);
            }
            this_sec = 0;
            current_sec = sec;
        }
        if sampler.offer(p) {
            total += 1;
            this_sec += 1;
        }
    }
    if current_sec != u64::MAX && current_sec >= WARMUP_SECS {
        peak_per_sec = peak_per_sec.max(this_sec);
    }
    (total, peak_per_sec)
}

/// Render the fixed-vs-adaptive comparison over three load regimes.
#[must_use]
pub fn run(seed: u64) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "## Ablation — fixed 1-in-50 vs adaptive sampling (processor budget 20/s)"
    )
    .unwrap();
    writeln!(
        out,
        "{:<12} {:>10} {:>22} {:>22}",
        "load", "packets", "fixed: total/peak*", "adaptive: total/peak*"
    )
    .unwrap();

    let regimes = [("light", 120.0), ("design", 1000.0), ("heavy", 6000.0)];
    let budget = 20u32;
    for (name, pps) in regimes {
        let mut profile = netsynth::TraceProfile::short(120);
        profile.mean_pps = pps;
        profile.rate_clamp = (0.3, 2.5);
        let trace = netsynth::generate(&profile, seed);

        let mut fixed = SystematicSampler::new(50);
        let (f_total, f_peak) = drive(&mut fixed, &trace);

        let mut adaptive = AdaptiveSampler::new(
            50,
            AdaptiveConfig {
                budget_per_period: budget,
                ..AdaptiveConfig::default()
            },
        );
        let (a_total, a_peak) = drive(&mut adaptive, &trace);

        writeln!(
            out,
            "{:<12} {:>10} {:>15}/{:<6} {:>15}/{:<6}",
            name,
            trace.len(),
            f_total,
            f_peak,
            a_total,
            a_peak
        )
        .unwrap();
    }
    writeln!(
        out,
        "\nshape check (*peak after 20 s warm-up): the fixed interval's peak selection rate scales with offered load\n\
         (overrunning the {budget}/s budget under heavy load and starving under light load),\n\
         while the adaptive controller holds its peak near the budget in every regime\n\
         and *increases* its total sample when load is light."
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn adaptive_respects_budget_fixed_does_not() {
        let s = super::run(3);
        // Parse the heavy-load row: fixed peak should exceed the budget,
        // adaptive peak should be near it.
        let heavy = s.lines().find(|l| l.starts_with("heavy")).unwrap();
        let fields: Vec<&str> = heavy.split_whitespace().collect();
        let fixed_peak: u32 = fields[2].split('/').nth(1).unwrap().parse().unwrap();
        let adaptive_peak: u32 = fields[3].split('/').nth(1).unwrap().parse().unwrap();
        assert!(fixed_peak > 60, "fixed peak {fixed_peak}");
        assert!(adaptive_peak < 60, "adaptive peak {adaptive_peak}");
    }
}
