//! The §6 χ² experiment: is the operational 1-in-50 systematic method
//! statistically compatible with the population?
//!
//! "In our experiments for systematically sampling every fiftieth
//! packet, only two or three out of the fifty possible replications
//! produced χ² values that would convince a statistician to reject the
//! hypothesis that they were produced by the original distribution at
//! the 0.05 confidence level." Under a correct test, the expected
//! rejection rate at α = 0.05 is ~2.5 of 50.

use nettrace::Trace;
use sampling::experiment::Experiment;
use sampling::{MethodSpec, Target};
use std::fmt::Write;

/// Render the rejection counts for both targets over all 50 offsets.
#[must_use]
pub fn run(trace: &Trace) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "## §6 chi-square test — 1-in-50 systematic sampling, all 50 start offsets"
    )
    .unwrap();
    writeln!(
        out,
        "{:<14} {:>11} {:>14} {:>16}",
        "target", "rejections", "of offsets", "expected ~ 2.5"
    )
    .unwrap();
    for target in [Target::PacketSize, Target::Interarrival] {
        let exp = Experiment::new(trace.packets(), target);
        let result = exp.run(
            MethodSpec::Systematic { interval: 50 },
            50,
            crate::STUDY_SEED,
        );
        let rejections = result.rejections_at(0.05);
        writeln!(
            out,
            "{:<14} {:>11} {:>14} {:>16}",
            target.to_string(),
            rejections,
            result.replications.len(),
            if rejections <= 7 {
                "compatible"
            } else {
                "INCOMPATIBLE"
            }
        )
        .unwrap();
    }
    // Calibration curve: "the results were remarkably compatible with
    // statistical theory" (§5.2) — the empirical rejection rate should
    // track alpha across levels. Stratified sampling gives fresh
    // randomness per replication, so use many seeds for resolution.
    writeln!(
        out,
        "\ncalibration: empirical rejection rate vs alpha (stratified 1-in-50, 400 replications)"
    )
    .unwrap();
    writeln!(
        out,
        "{:<14} {:>8} {:>8} {:>8} {:>8}",
        "target", "a=0.01", "a=0.05", "a=0.10", "a=0.20"
    )
    .unwrap();
    for target in [Target::PacketSize, Target::Interarrival] {
        let exp = Experiment::new(trace.packets(), target);
        let result = exp.run(
            sampling::MethodSpec::StratifiedRandom { bucket: 50 },
            400,
            crate::STUDY_SEED,
        );
        write!(out, "{:<14}", target.to_string()).unwrap();
        for alpha in [0.01, 0.05, 0.10, 0.20] {
            let rate = result.rejections_at(alpha) as f64 / result.replications.len() as f64;
            write!(out, " {rate:>8.3}").unwrap();
        }
        writeln!(out).unwrap();
    }
    writeln!(
        out,
        "\nshape check: the paper reports 2-3 rejections of 50 at the 0.05 level;\nany small count (binomial(50, 0.05): 95% of runs give 0..=6) reproduces the conclusion\nthat the operational method is compatible with the original distribution."
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsynth::TraceProfile;

    #[test]
    fn renders_both_targets() {
        let t = netsynth::generate(&TraceProfile::short(60), 8);
        let s = run(&t);
        assert!(s.contains("packet-size"));
        assert!(s.contains("interarrival"));
        assert!(s.contains("rejections"));
    }
}
