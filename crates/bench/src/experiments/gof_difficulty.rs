//! The §5.2 claim, demonstrated: K-S and Anderson–Darling "have proven
//! difficult to apply to wide-area network traffic data".
//!
//! Two mechanisms make the classical continuous goodness-of-fit tests
//! misbehave on this data, and both are shown directly:
//!
//! 1. **Discreteness.** Packet sizes concentrate on a few atoms (40,
//!    552, …) and interarrivals live on the 400 µs capture grid. A
//!    continuous *model* fitted to the data (an exponential with the
//!    matched mean, the textbook choice for interarrivals) is rejected
//!    overwhelmingly by K-S and A-D at any realistic sample size — not
//!    because the mean is wrong but because the support is discrete.
//! 2. **Power at scale.** Comparing two *different hours* of the same
//!    workload (different seeds — distributions that an operator would
//!    call identical), the two-sample K-S p-value collapses to ~0 as the
//!    sample grows: any real trace pair differs by more than K-S's
//!    resolution at n in the millions. χ²-family metrics over coarse
//!    bins (and the size-free φ) are what remain usable — the paper's
//!    conclusion.

use netsynth::TraceProfile;
use nettrace::Micros;
use sampling::{select_indices, MethodSpec};
use statkit::ad::AndersonDarling;
use statkit::ks::{ks_one_sample, ks_two_sample};
use statkit::Moments;
use std::fmt::Write;

/// Render both demonstrations.
#[must_use]
pub fn run(seed: u64) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "## §5.2 — why K-S and A-D are hard to apply to WAN traffic"
    )
    .unwrap();

    let trace = netsynth::generate(&TraceProfile::short(600), seed);
    let ia: Vec<f64> = trace.interarrivals().iter().map(|&x| x as f64).collect();
    let mean = Moments::from_values(ia.iter().copied()).mean();

    // 1: a fitted continuous exponential vs the discrete data.
    writeln!(
        out,
        "\n(1) one-sample tests of interarrivals against Exp(mean = {mean:.0} us):"
    )
    .unwrap();
    writeln!(
        out,
        "{:>10} {:>12} {:>12} {:>14} {:>18}",
        "n", "KS D", "KS p-value", "A2", "A2 rejects @.01"
    )
    .unwrap();
    for n in [500usize, 5_000, 50_000] {
        let sample = &ia[..n.min(ia.len())];
        let cdf = |x: f64| 1.0 - (-x / mean).exp();
        let ks = ks_one_sample(sample, cdf);
        let ad = AndersonDarling::test(sample, cdf);
        writeln!(
            out,
            "{:>10} {:>12.4} {:>12.2e} {:>14.1} {:>18}",
            sample.len(),
            ks.statistic,
            ks.p_value,
            ad.statistic,
            ad.rejects_at(0.01)
        )
        .unwrap();
    }

    // 2: two-sample KS between statistically identical workloads.
    writeln!(
        out,
        "\n(2) two-sample K-S between two independent hours of the same workload\n    (same generator, different seeds — 'identical' to an operator):"
    )
    .unwrap();
    writeln!(out, "{:>10} {:>12} {:>12}", "n/side", "KS D", "p-value").unwrap();
    let other = netsynth::generate(&TraceProfile::short(600), seed + 1);
    let ia2: Vec<f64> = other.interarrivals().iter().map(|&x| x as f64).collect();
    for n in [1_000usize, 10_000, 100_000] {
        let a = &ia[..n.min(ia.len())];
        let b = &ia2[..n.min(ia2.len())];
        let ks = ks_two_sample(a, b);
        writeln!(
            out,
            "{:>10} {:>12.4} {:>12.2e}",
            a.len(),
            ks.statistic,
            ks.p_value
        )
        .unwrap();
    }

    // Contrast: phi between the same two populations stays small and
    // stable — the usable alternative.
    let packets_a = trace.packets();
    let packets_b = other.packets();
    let target = sampling::Target::Interarrival;
    let pop_a = target.population_histogram(packets_a);
    let pop_b = target.population_histogram(packets_b);
    // Score B's distribution against A's by treating B as a "sample".
    let mut sampler =
        MethodSpec::Systematic { interval: 1 }.build(packets_b.len(), Micros::ZERO, 0, 0);
    let all_b = select_indices(sampler.as_mut(), packets_b);
    let hist_b = target.sample_histogram(packets_b, &all_b);
    debug_assert_eq!(hist_b.counts(), pop_b.counts());
    let phi = sampling::disparity(&pop_a, &hist_b).map(|r| r.phi);
    writeln!(
        out,
        "\ncontrast: phi between the two hours' binned interarrival distributions = {}",
        phi.map_or("n/a".into(), |p| format!("{p:.5}"))
    )
    .unwrap();
    writeln!(
        out,
        "\nshape check: K-S/A-D reject the fitted continuous model and even 'identical'\n\
         workload pairs at scale, while phi stays small and comparable across sizes —\n\
         the paper's reason for building its evaluation on chi-square-family metrics."
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn demonstrates_both_failure_modes() {
        let s = super::run(31);
        assert!(s.contains("one-sample"));
        assert!(s.contains("two-sample"));
        assert!(s.contains("contrast: phi"));
        // The largest one-sample test must reject the continuous model.
        let last_one_sample = s
            .lines()
            .find(|l| l.trim_start().starts_with("50000") || l.trim_start().starts_with("49"))
            .expect("large-n row");
        assert!(last_one_sample.contains("true"), "{last_one_sample}");
    }
}
