//! The §8 extension: proportion-style characterization targets.
//!
//! "Our methodology can be extended and applied to characterizations of
//! network traffic that are based on proportions, e.g., TCP/UDP port
//! distribution." This experiment does exactly that: φ sweeps for the
//! protocol-over-IP and well-known-port targets — and for the
//! byte-weighted views every Table 1 object also reports — plus
//! per-class proportion estimates with confidence intervals at the
//! operational 1-in-50 fraction.

use nettrace::{Micros, Trace};
use sampling::estimate::proportion;
use sampling::experiment::{Experiment, MethodFamily};
use sampling::{select_indices, Target};
use std::fmt::Write;

/// Render the proportion-target sweeps and estimates.
#[must_use]
pub fn run(trace: &Trace) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "## §8 extension — proportion targets (protocol and port distributions)"
    )
    .unwrap();

    for target in [
        Target::Protocol,
        Target::Port,
        Target::ByteVolume,
        Target::ProtocolBytes,
    ] {
        writeln!(
            out,
            "\nmean phi vs fraction, target: {target} (1024 s interval)"
        )
        .unwrap();
        writeln!(
            out,
            "{:>9} {:>12} {:>12} {:>12}",
            "1/k", "systematic", "stratified", "random"
        )
        .unwrap();
        let exp = Experiment::over_window(trace, Micros::ZERO, Micros::from_secs(1024), target);
        for k in [16usize, 128, 1024, 8192] {
            write!(out, "{k:>9}").unwrap();
            for f in [
                MethodFamily::Systematic,
                MethodFamily::StratifiedRandom,
                MethodFamily::SimpleRandom,
            ] {
                let r = exp.run_family(f, k, 5, crate::STUDY_SEED);
                match r.mean_phi() {
                    Some(phi) => write!(out, " {phi:>12.5}").unwrap(),
                    None => write!(out, " {:>12}", "empty").unwrap(),
                }
            }
            writeln!(out).unwrap();
        }
    }

    // Per-class estimates at the operational fraction.
    writeln!(
        out,
        "\nprotocol proportions at 1-in-50 systematic sampling (95% CIs vs truth):"
    )
    .unwrap();
    let packets = trace.packets();
    let pop_hist = Target::Protocol.population_histogram(packets);
    let mut sampler = MethodFamily::Systematic.at_granularity(50, 424.0).build(
        packets.len(),
        Micros::ZERO,
        0,
        crate::STUDY_SEED,
    );
    let selected = select_indices(sampler.as_mut(), packets);
    let sam_hist = Target::Protocol.sample_histogram(packets, &selected);
    let labels = Target::Protocol.labels();
    for (i, label) in labels.iter().enumerate() {
        let truth = pop_hist.counts()[i] as f64 / pop_hist.total() as f64;
        let est = proportion(
            sam_hist.counts()[i] as usize,
            sam_hist.total() as usize,
            packets.len(),
        );
        let (lo, hi) = est.confidence_interval(0.95);
        let covered = (lo..=hi).contains(&truth);
        writeln!(
            out,
            "  {:<6} truth {:>7.4}  estimate {:>7.4}  CI [{:>7.4}, {:>7.4}]  {}",
            label,
            truth,
            est.p,
            lo,
            hi,
            if covered { "covered" } else { "MISSED" }
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsynth::TraceProfile;

    #[test]
    fn renders_sweeps_and_cis() {
        let t = netsynth::generate(&TraceProfile::short(40), 10);
        let s = run(&t);
        assert!(s.contains("protocol"));
        assert!(s.contains("port"));
        assert!(s.contains("CI ["));
    }
}
