//! Figures 8 and 9: mean φ versus sampling fraction for all five
//! methods — the paper's headline comparison.
//!
//! Figure 8 targets the packet-size distribution, Figure 9 the
//! interarrival-time distribution. The published result: the three
//! packet-driven methods are nearly indistinguishable; the two
//! timer-driven methods are uniformly worse, dramatically so for
//! interarrival times (timer selection is biased toward packets that
//! follow long gaps).

use crate::paper_granularities;
use nettrace::{Micros, Trace};
use sampling::experiment::{Experiment, MethodFamily};
use sampling::Target;
use std::fmt::Write;

/// Render one of the two figures: rows = granularity, columns = method.
#[must_use]
pub fn run(trace: &Trace, target: Target) -> String {
    let mut out = String::new();
    let fig = match target {
        Target::PacketSize => "Figure 8 — mean phi vs fraction, packet-size target",
        Target::Interarrival => "Figure 9 — mean phi vs fraction, interarrival target",
        _ => "mean phi vs fraction",
    };
    writeln!(out, "## {fig} (1024 s interval, 5 replications)").unwrap();

    let families = MethodFamily::paper_five();
    write!(out, "{:>9}", "1/k").unwrap();
    for f in families {
        write!(out, " {:>12}", f.name()).unwrap();
    }
    writeln!(out).unwrap();

    let exp = Experiment::over_window(trace, Micros::ZERO, Micros::from_secs(1024), target);
    let mut packet_sum = 0.0;
    let mut timer_sum = 0.0;
    let mut rows = 0.0;
    // The full fraction × method matrix runs as one flattened grid on
    // the session pool (row-major, so results rebuild the table in
    // print order).
    let ks = paper_granularities();
    let cells: Vec<(MethodFamily, usize)> = ks
        .iter()
        .flat_map(|&k| families.iter().map(move |&f| (f, k)))
        .collect();
    let mut results = exp
        .run_grid_with(
            &parkit::Pool::with_default_jobs(),
            &cells,
            5,
            crate::STUDY_SEED,
        )
        .into_iter();
    for k in ks {
        write!(out, "{k:>9}").unwrap();
        let mut row = Vec::new();
        for f in families {
            let result = results.next().expect("grid covers the full matrix");
            match result.mean_phi() {
                Some(phi) => {
                    write!(out, " {phi:>12.5}").unwrap();
                    row.push((f, phi));
                }
                None => write!(out, " {:>12}", "empty").unwrap(),
            }
        }
        writeln!(out).unwrap();
        if row.len() == 5 {
            packet_sum += (row[0].1 + row[1].1 + row[2].1) / 3.0;
            timer_sum += (row[3].1 + row[4].1) / 2.0;
            rows += 1.0;
        }
    }
    if rows > 0.0 {
        writeln!(
            out,
            "\nshape check: timer-driven mean phi ({:.5}) vs packet-driven ({:.5}) across fractions — ratio {:.2}x ({}).",
            timer_sum / rows,
            packet_sum / rows,
            (timer_sum / rows) / (packet_sum / rows).max(1e-12),
            if timer_sum > packet_sum {
                "timer methods uniformly worse, as published"
            } else {
                "UNEXPECTED: timer methods not worse"
            }
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsynth::TraceProfile;

    #[test]
    fn renders_five_method_columns() {
        let t = netsynth::generate(&TraceProfile::short(30), 6);
        let s = run(&t, Target::PacketSize);
        for name in [
            "systematic",
            "stratified",
            "random",
            "sys-timer",
            "strat-timer",
        ] {
            assert!(s.contains(name), "missing {name}");
        }
    }
}
