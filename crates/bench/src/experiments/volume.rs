//! Collection data volume: the "25 MB per workday" figure (§2).
//!
//! The NOC host "during mid-February 1993 was collecting around 25 MB of
//! ARTS traffic characterization data on a typical workday". This
//! experiment measures the serialized report size of a T3 node's object
//! set per 15-minute cycle on the study workload and scales it to a
//! 13-node backbone day, with and without the fixed-size table caps the
//! deployed collectors used.

use netstat_sim::{CollectorNode, ObjectSet};
use nettrace::{Micros, Trace};
use std::fmt::Write;

const NODES: u64 = 13; // T3 backbone core nodes of the era
const CYCLES_PER_DAY: u64 = 96; // 15-minute cycles

/// Render the volume accounting table.
#[must_use]
pub fn run(trace: &Trace) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "## §2 — collection data volume vs the 25 MB/workday figure"
    )
    .unwrap();

    // Drive one 15-minute window through a T3-flavor node with the
    // operational 1-in-50 sampling.
    let window = trace.window(Micros::ZERO, Micros::from_secs(900));
    let mut node = CollectorNode::new(ObjectSet::T3, u64::MAX / 2);
    node.deploy_sampling(50);
    for p in window {
        node.offer(p);
    }

    writeln!(
        out,
        "one 15-minute cycle, one node, 1-in-50 sampling ({} packets offered, {} categorized):",
        window.len(),
        node.objects().matrix.total_packets()
    )
    .unwrap();
    writeln!(
        out,
        "{:>22} {:>14} {:>20}",
        "matrix table cap", "bytes/cycle", "13-node day (MB)"
    )
    .unwrap();
    for cap in [usize::MAX, 4096, 1024, 256] {
        let bytes = node.objects().report_size_bytes(cap);
        let daily = bytes * NODES * CYCLES_PER_DAY;
        writeln!(
            out,
            "{:>22} {:>14} {:>20.1}",
            if cap == usize::MAX {
                "unbounded".to_string()
            } else {
                cap.to_string()
            },
            bytes,
            daily as f64 / 1e6
        )
        .unwrap();
    }
    writeln!(
        out,
        "\nshape check: with the fixed-size object tables the deployed collectors used\n\
         (NNStat objects were bounded), a 13-node backbone lands in the tens of MB per\n\
         day — the order of magnitude the paper reports (25 MB)."
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use netsynth::TraceProfile;

    #[test]
    fn capped_volume_is_paper_order_of_magnitude() {
        let t = netsynth::generate(&TraceProfile::short(900), 41);
        let s = super::run(&t);
        // Parse the 1024-cap row's daily MB.
        let row = s
            .lines()
            .find(|l| l.trim_start().starts_with("1024"))
            .expect("1024-cap row");
        let mb: f64 = row.split_whitespace().last().unwrap().parse().unwrap();
        assert!(
            (1.0..200.0).contains(&mb),
            "daily volume {mb} MB should be the paper's order of magnitude"
        );
    }
}
