//! Figure 1: SNMP vs NNStat monthly packet totals on the T1 backbone.

use netstat_sim::{figure1_series, Figure1Config};
use std::fmt::Write;

/// Render the monthly series with an ASCII discrepancy bar.
#[must_use]
pub fn run() -> String {
    let mut out = String::new();
    let series = figure1_series(&Figure1Config::default());
    writeln!(
        out,
        "## Figure 1 — T1 backbone packet totals: SNMP vs NNStat (billions/month)"
    )
    .unwrap();
    writeln!(
        out,
        "1-in-50 sampling deployed September 1991 (paper §2).\n"
    )
    .unwrap();
    writeln!(
        out,
        "{:<7} {:>8} {:>8} {:>7}  discrepancy",
        "month", "SNMP", "NNStat", "gap%"
    )
    .unwrap();
    for p in &series {
        let gap = p.discrepancy() * 100.0;
        let bar = "#".repeat((gap / 2.0).round() as usize);
        writeln!(
            out,
            "{:<7} {:>8.2} {:>8.2} {:>6.1}%  {}{}",
            p.label,
            p.snmp_billions,
            p.nnstat_billions,
            gap,
            bar,
            if p.sampled { " [sampling 1/50]" } else { "" }
        )
        .unwrap();
    }
    let pre = &series[19];
    let post = &series[20];
    writeln!(
        out,
        "\nshape check: gap grew to {:.1}% by {} and fell to {:.1}% at {} deployment — matches the paper's narrative.",
        pre.discrepancy() * 100.0,
        pre.label,
        post.discrepancy() * 100.0,
        post.label
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_deployment_marker() {
        let s = super::run();
        assert!(s.contains("Sep91"));
        assert!(s.contains("[sampling 1/50]"));
        assert!(s.contains("Figure 1"));
    }
}
