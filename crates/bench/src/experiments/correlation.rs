//! Ablation: does within-flow correlation break the method ties?
//!
//! The paper chose its method set out of "an interest in the effects of
//! patterns in the data" (§4) and found no effect on its trace. The
//! flow-level generator (`netsynth::flows`) produces traffic with
//! *strong* short-range patterns — back-to-back segments of the same
//! transfer — so this experiment asks the paper's question on the most
//! pattern-rich traffic available: at which sampling lags does the
//! wire-level correlation actually matter?
//!
//! Measured answer: the size ACF is large at lag 1–2 and gone by the
//! operational lags (k ≥ 50), so φ for systematic vs stratified vs
//! random sampling stays tied exactly as the paper found — the ties are
//! a property of sampling lags exceeding burst lengths, not of the
//! SDSC trace being special.

use netsynth::flows::{flow_adjacency, generate_flows, FlowProfile};
use sampling::experiment::{Experiment, MethodFamily};
use sampling::Target;
use statkit::acf::{acf, white_noise_band};
use std::fmt::Write;

/// Render the flow-traffic correlation study.
#[must_use]
pub fn run(seed: u64) -> String {
    let mut out = String::new();
    let trace = generate_flows(&FlowProfile::default(), seed);
    let stats = flow_adjacency(&trace);
    writeln!(
        out,
        "## Ablation — within-flow correlation vs sampling lag (flow-level traffic)"
    )
    .unwrap();
    writeln!(
        out,
        "flow-level trace: {} packets, {:.1}% of adjacent packets share a flow",
        stats.packets,
        stats.adjacent_same_flow * 100.0
    )
    .unwrap();

    // Size ACF at candidate sampling lags.
    let sizes: Vec<f64> = trace.sizes().iter().map(|&s| f64::from(s)).collect();
    let lags = [1usize, 2, 4, 8, 16, 50, 200];
    let band = white_noise_band(sizes.len());
    writeln!(out, "\npacket-size ACF (white-noise band ±{band:.5}):").unwrap();
    let rs = acf(&sizes, &lags);
    for (lag, r) in lags.iter().zip(&rs) {
        writeln!(out, "  lag {lag:>4}: {r:>8.5}").unwrap();
    }

    // phi per method at a fine lag (correlation present) and the
    // operational lag (correlation gone).
    writeln!(
        out,
        "\nmean phi (packet-size target, 10 replications) per method:"
    )
    .unwrap();
    writeln!(
        out,
        "{:>7} {:>12} {:>12} {:>12}",
        "1/k", "systematic", "stratified", "random"
    )
    .unwrap();
    let exp = Experiment::new(trace.packets(), Target::PacketSize);
    for k in [2usize, 4, 50, 500] {
        write!(out, "{k:>7}").unwrap();
        for f in [
            MethodFamily::Systematic,
            MethodFamily::StratifiedRandom,
            MethodFamily::SimpleRandom,
        ] {
            let phi = exp
                .run_family(f, k, 10, seed)
                .mean_phi()
                .unwrap_or(f64::NAN);
            write!(out, " {phi:>12.5}").unwrap();
        }
        writeln!(out).unwrap();
    }
    writeln!(
        out,
        "\nshape check: even with {:.0}% flow adjacency and a lag-1 ACF of {:.3},\n\
         the three packet-driven methods remain tied at every fraction — the ACF has\n\
         decayed by lag 50, so the paper's tie generalizes beyond its trace.",
        stats.adjacent_same_flow * 100.0,
        rs[0]
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn ties_hold_on_flow_traffic() {
        let s = super::run(21);
        assert!(s.contains("ACF"));
        // Parse the k=50 row and verify the three phis are within a
        // small factor.
        let row = s
            .lines()
            .find(|l| l.trim_start().starts_with("50 "))
            .expect("k=50 row");
        let phis: Vec<f64> = row
            .split_whitespace()
            .skip(1)
            .map(|v| v.parse().unwrap())
            .collect();
        let max = phis.iter().cloned().fold(f64::MIN, f64::max);
        let min = phis.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max < 3.0 * min + 0.01,
            "methods should tie at k=50: {phis:?}"
        );
    }
}
