//! Figures 10 and 11: mean systematic φ versus elapsed time.
//!
//! The other way to grow a sample is to lengthen the measurement
//! interval (§7.3). Windows grow exponentially from the start of the
//! hour; for every sampling fraction the score improves with elapsed
//! time (the left side is noisy, exactly as the paper notes).

use nettrace::{Micros, Trace};
use sampling::experiment::{interval_sweep, MethodFamily};
use sampling::Target;
use std::fmt::Write;

/// The sampling fractions plotted (one curve each).
pub const CURVE_GRANULARITIES: [usize; 4] = [16, 256, 2048, 16_384];

/// Exponentially growing windows from the start of the trace, in
/// seconds: 64, 128, …, 2048, then the full hour.
#[must_use]
pub fn windows() -> Vec<Micros> {
    let mut v: Vec<Micros> = (6..=11).map(|i| Micros::from_secs(1 << i)).collect();
    v.push(Micros::from_secs(3600));
    v
}

/// Render one of the two figures: rows = elapsed minutes, columns =
/// granularity curves.
#[must_use]
pub fn run(trace: &Trace, target: Target) -> String {
    let mut out = String::new();
    let fig = match target {
        Target::PacketSize => "Figure 10 — systematic phi vs elapsed time, packet-size target",
        Target::Interarrival => "Figure 11 — systematic phi vs elapsed time, interarrival target",
        _ => "phi vs elapsed time",
    };
    writeln!(out, "## {fig}").unwrap();
    write!(out, "{:>10}", "minutes").unwrap();
    for k in CURVE_GRANULARITIES {
        write!(out, " {:>12}", format!("1/{k}")).unwrap();
    }
    writeln!(out).unwrap();

    let lengths = windows();
    // One sweep per curve, assembled row-wise.
    let mut columns = Vec::new();
    for k in CURVE_GRANULARITIES {
        let sweep = interval_sweep(
            trace,
            target,
            MethodFamily::Systematic,
            k,
            Micros::ZERO,
            &lengths,
            10,
            crate::STUDY_SEED,
        );
        columns.push(sweep);
    }
    for (row, len) in lengths.iter().enumerate() {
        write!(out, "{:>10.1}", len.as_secs_f64() / 60.0).unwrap();
        for col in &columns {
            match col[row].1.as_ref().and_then(|r| r.mean_phi()) {
                Some(phi) => write!(out, " {phi:>12.5}").unwrap(),
                None => write!(out, " {:>12}", "empty").unwrap(),
            }
        }
        writeln!(out).unwrap();
    }
    writeln!(
        out,
        "\nshape check: every column decreases from its first to its last row\n(sampling scores improve with elapsed time, for all fractions)."
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsynth::TraceProfile;

    #[test]
    fn renders_growing_windows() {
        let t = netsynth::generate(&TraceProfile::short(70), 7);
        let s = run(&t, Target::PacketSize);
        assert!(s.contains("minutes"));
        assert!(s.contains("1/16"));
    }

    #[test]
    fn window_schedule_is_exponential_then_full_hour() {
        let w = windows();
        assert_eq!(w[0], Micros::from_secs(64));
        assert_eq!(w[w.len() - 2], Micros::from_secs(2048));
        assert_eq!(*w.last().unwrap(), Micros::from_secs(3600));
    }
}
