//! Ablation: sensitivity of the conclusions to the bin choice (§7.1).
//!
//! "We experimented with bin sizes which accounted for a fairly large
//! number of packets, and also which characterize certain protocols."
//! The paper settled on three protocol-motivated size bins; a referee
//! might worry the conclusions depend on that choice. This experiment
//! rescored the packet-size target under three alternative binnings —
//! the paper's three bins, the T1 backbone's thirty 50-byte bins, and a
//! coarse two-bin small/large split — and checks that the *orderings*
//! (method ties, monotone degradation) survive every choice, even though
//! absolute φ values shift with bin count.

use nettrace::{BinSpec, Micros, PacketRecord, Trace};
use sampling::experiment::MethodFamily;
use sampling::{disparity, select_indices};
use std::fmt::Write;

/// Score one method/binning/granularity combination (mean φ over
/// replications).
fn phi_for(
    packets: &[PacketRecord],
    spec: &BinSpec,
    family: MethodFamily,
    k: usize,
    reps: u64,
    seed: u64,
) -> f64 {
    // Build histograms directly (bin choice is the variable here).
    let mut pop = nettrace::Histogram::new(spec.clone());
    for p in packets {
        pop.observe(u64::from(p.size));
    }
    let mean_pps = {
        let dur = packets
            .last()
            .unwrap()
            .timestamp
            .saturating_sub(packets[0].timestamp)
            .as_secs_f64();
        packets.len() as f64 / dur.max(1e-9)
    };
    let method = family.at_granularity(k, mean_pps);
    let mut sum = 0.0;
    let mut scored = 0u64;
    for rep in 0..reps {
        let mut sampler = method.build(packets.len(), packets[0].timestamp, rep, seed);
        let selected = select_indices(sampler.as_mut(), packets);
        let mut sam = nettrace::Histogram::new(spec.clone());
        for &i in &selected {
            sam.observe(u64::from(packets[i].size));
        }
        if let Some(r) = disparity(&pop, &sam) {
            sum += r.phi;
            scored += 1;
        }
    }
    if scored > 0 {
        sum / scored as f64
    } else {
        f64::NAN
    }
}

/// Render the bin-sensitivity table.
#[must_use]
pub fn run(trace: &Trace, seed: u64) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "## §7.1 ablation — sensitivity to the bin choice (packet-size target)"
    )
    .unwrap();
    let window = trace.window(Micros::ZERO, Micros::from_secs(1024));

    let binnings: [(&str, BinSpec); 3] = [
        ("paper 3-bin", BinSpec::paper_packet_size()),
        ("T1 50-byte", BinSpec::t1_packet_length()),
        ("coarse 2-bin", BinSpec::Edges(vec![181])),
    ];
    let families = [
        MethodFamily::Systematic,
        MethodFamily::StratifiedRandom,
        MethodFamily::SimpleRandom,
    ];

    for (name, spec) in &binnings {
        writeln!(out, "\nbinning: {name} ({} bins)", spec.bin_count()).unwrap();
        writeln!(
            out,
            "{:>9} {:>12} {:>12} {:>12}",
            "1/k", "systematic", "stratified", "random"
        )
        .unwrap();
        let mut last_sys = 0.0;
        let mut monotone = true;
        for k in [16usize, 256, 4096] {
            write!(out, "{k:>9}").unwrap();
            for (fi, f) in families.iter().enumerate() {
                let phi = phi_for(window, spec, *f, k, 5, seed);
                write!(out, " {phi:>12.5}").unwrap();
                if fi == 0 {
                    if phi < last_sys {
                        monotone = false;
                    }
                    last_sys = phi;
                }
            }
            writeln!(out).unwrap();
        }
        writeln!(
            out,
            "  degradation with granularity monotone: {}",
            if monotone { "yes" } else { "NO" }
        )
        .unwrap();
    }
    writeln!(
        out,
        "\nshape check: absolute phi scales with bin count, but under every binning the\n\
         packet-driven methods tie and phi degrades monotonically — the paper's\n\
         conclusions do not hinge on its three protocol-motivated bins."
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use netsynth::TraceProfile;

    #[test]
    fn orderings_survive_all_binnings() {
        let t = netsynth::generate(&TraceProfile::short(120), 19);
        let s = super::run(&t, 19);
        assert!(s.contains("paper 3-bin"));
        assert!(s.contains("T1 50-byte"));
        assert!(s.contains("coarse 2-bin"));
        assert!(
            !s.contains("monotone: NO"),
            "degradation should be monotone under every binning:\n{s}"
        );
    }
}
