//! Figures 6 and 7: the distribution of systematic-sampling φ scores
//! versus sampling fraction (packet size, 1024 s interval).
//!
//! Figure 6 shows boxplots over replications (start-offset variation);
//! Figure 7 plots the means of those boxes. Both effects the paper
//! highlights must be visible: φ grows as the fraction falls, and the
//! spread across replications grows with it.

use nettrace::{Micros, Trace};
use sampling::experiment::{Experiment, MethodFamily};
use sampling::Target;
use std::fmt::Write;

/// Granularities from every 4th packet up (the paper's Figure 6 starts
/// at 1/4).
#[must_use]
pub fn figure6_granularities() -> Vec<usize> {
    (2..=15).map(|i| 1usize << i).collect()
}

/// Render Figure 6 (boxplots) and Figure 7 (means) in one pass.
#[must_use]
pub fn run(trace: &Trace) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "## Figure 6 — systematic phi boxplots vs fraction (packet size, 1024 s interval)"
    )
    .unwrap();
    writeln!(
        out,
        "{:>8}  lower |-- [q1 {{median}} q3] --| upper  mean, n, outliers",
        "1/k"
    )
    .unwrap();

    let exp = Experiment::over_window(
        trace,
        Micros::ZERO,
        Micros::from_secs(1024),
        Target::PacketSize,
    );
    let mut means = Vec::new();
    // One flattened grid over all granularities: replications (spread
    // across distinct start offsets, up to 20) fan out on the session
    // pool instead of running k-by-k serially.
    let ks = figure6_granularities();
    let cells: Vec<(MethodFamily, usize)> =
        ks.iter().map(|&k| (MethodFamily::Systematic, k)).collect();
    let results = exp.run_grid_with(
        &parkit::Pool::with_default_jobs(),
        &cells,
        20,
        crate::STUDY_SEED,
    );
    for (k, result) in ks.into_iter().zip(results) {
        match result.phi_boxplot() {
            Some(b) => {
                writeln!(out, "{k:>8}  {}", b.render()).unwrap();
                means.push((k, b.mean));
            }
            None => writeln!(out, "{k:>8}  (all samples empty)").unwrap(),
        }
    }

    writeln!(out, "\n## Figure 7 — means of the Figure 6 boxplots").unwrap();
    writeln!(out, "{:>8} {:>10}", "1/k", "mean phi").unwrap();
    for (k, m) in &means {
        writeln!(out, "{k:>8} {m:>10.5}").unwrap();
    }
    if let (Some(first), Some(last)) = (means.first(), means.last()) {
        writeln!(
            out,
            "\nshape check: mean phi rises from {:.5} (1/{}) to {:.5} (1/{}); fine fractions are near-perfect zeros.",
            first.1, first.0, last.1, last.0
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsynth::TraceProfile;

    #[test]
    fn renders_boxplots_and_means() {
        let t = netsynth::generate(&TraceProfile::short(30), 5);
        let s = run(&t);
        assert!(s.contains("Figure 6"));
        assert!(s.contains("Figure 7"));
        assert!(s.contains("mean phi"));
    }
}
