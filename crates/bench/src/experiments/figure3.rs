//! Figure 3: all disparity metrics as a function of sampling
//! granularity, over a 2048-second interval, systematic sampling.
//!
//! The paper uses this figure to pick its metric: χ² and the
//! significance level are erratic/saturating, while cost, X², and φ rise
//! together as the sampling fraction falls; φ is adopted for the rest of
//! the study.

use crate::paper_granularities;
use nettrace::{Micros, Trace};
use sampling::experiment::{Experiment, MethodFamily};
use sampling::Target;
use std::fmt::Write;

/// Render the metric table: one row per granularity, one column per
/// metric, for the given target.
#[must_use]
pub fn run(trace: &Trace, target: Target) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "## Figure 3 — disparity metrics vs granularity (2048 s interval, systematic, target: {target})"
    )
    .unwrap();
    writeln!(
        out,
        "{:>9} {:>10} {:>12} {:>8} {:>12} {:>10} {:>10} {:>9} {:>9}",
        "1/k", "n", "chi2", "1-sig", "cost", "rcost", "X2", "k_avg", "phi"
    )
    .unwrap();

    let exp = Experiment::over_window(trace, Micros::ZERO, Micros::from_secs(2048), target);
    for k in paper_granularities() {
        let result = exp.run_family(MethodFamily::Systematic, k, 5, crate::STUDY_SEED);
        if result.replications.is_empty() {
            writeln!(out, "{k:>9} (all samples empty)").unwrap();
            continue;
        }
        // Average each metric across replications.
        let n = result.replications.len() as f64;
        let avg = |f: &dyn Fn(&sampling::DisparityReport) -> f64| {
            result
                .replications
                .iter()
                .map(|r| f(&r.report))
                .sum::<f64>()
                / n
        };
        writeln!(
            out,
            "{:>9} {:>10.0} {:>12.2} {:>8.4} {:>12.0} {:>10.1} {:>10.5} {:>9.5} {:>9.5}",
            k,
            avg(&|r| r.sample_size as f64),
            avg(&|r| r.chi2),
            avg(&|r| r.one_minus_significance()),
            avg(&|r| r.cost),
            avg(&|r| r.relative_cost),
            avg(&|r| r.x2),
            avg(&|r| r.k_avg),
            avg(&|r| r.phi),
        )
        .unwrap();
    }
    writeln!(
        out,
        "\nshape check: cost, X2 and phi rise monotonically as the fraction falls;\nchi2/significance do not separate granularities cleanly — the paper's reason for adopting phi."
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsynth::TraceProfile;

    #[test]
    fn renders_metric_columns() {
        let t = netsynth::generate(&TraceProfile::short(60), 3);
        // Shorter interval than 2048 s: window clamps to the trace.
        let s = run(&t, Target::PacketSize);
        assert!(s.contains("phi"));
        assert!(s.contains("rcost"));
        assert!(s.lines().count() > 10);
    }
}
