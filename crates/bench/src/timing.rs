//! Span-structured wall-clock timing for the `repro_all` driver, plus
//! the parallel-speedup probe.
//!
//! Each experiment runs under a labeled `repro_experiment` span nested
//! in the driver's `repro_all` root; report serialization runs under a
//! separate `bench_report` span that is a **sibling** of the experiment
//! spans. Per-experiment wall times therefore never absorb report
//! serialization cost — the regression test below pins the tree shape.

use obskit::SpanGuard;
use sampling::experiment::MethodFamily;
use sampling::{Experiment, Target};
use std::time::{Duration, Instant};

/// Per-experiment wall clocks for one driver run.
#[derive(Debug, Default)]
pub struct Timings(Vec<(&'static str, Duration)>);

impl Timings {
    /// An empty timing table.
    #[must_use]
    pub fn new() -> Self {
        Timings(Vec::new())
    }

    /// Run one experiment under a `repro_experiment` span (labeled with
    /// its name), record its wall time, and return its rendered output.
    pub fn timed(&mut self, name: &'static str, run: impl FnOnce() -> String) -> String {
        let _span = obskit::span_labeled("repro_experiment", &[("experiment", name)]);
        let start = Instant::now();
        let out = run();
        self.0.push((name, start.elapsed()));
        out
    }

    /// The recorded `(name, wall)` entries, in run order.
    #[must_use]
    pub fn entries(&self) -> &[(&'static str, Duration)] {
        &self.0
    }

    /// Sum of all recorded walls.
    #[must_use]
    pub fn total(&self) -> Duration {
        self.0.iter().map(|(_, d)| *d).sum()
    }

    /// Render the per-experiment timing table `repro_all` prints.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<20} {:>10}\n", "experiment", "seconds"));
        for (name, d) in &self.0 {
            out.push_str(&format!("{name:<20} {:>10.3}\n", d.as_secs_f64()));
        }
        out.push_str(&format!(
            "{:<20} {:>10.3}\n",
            "total",
            self.total().as_secs_f64()
        ));
        out
    }

    /// The entries as perfkit experiment rows (µs).
    #[must_use]
    pub fn to_experiment_times(&self) -> Vec<perfkit::ExperimentTime> {
        self.0
            .iter()
            .map(|(name, d)| perfkit::ExperimentTime {
                name: (*name).to_string(),
                wall_us: d.as_micros() as u64,
            })
            .collect()
    }
}

/// Open the driver's root span; every `repro_experiment` and the
/// `bench_report` span nest under it.
#[must_use]
pub fn root_span() -> SpanGuard {
    obskit::span("repro_all")
}

/// Open the report-serialization span. Call it **after** all experiment
/// spans have closed, so it aggregates as a sibling of
/// `repro_experiment` — never as a child that would fold serialization
/// time into an experiment's subtree.
#[must_use]
pub fn report_span() -> SpanGuard {
    obskit::span("bench_report")
}

/// Number of packets the speedup probe samples from the study trace.
pub const SPEEDUP_PROBE_PACKETS: usize = 100_000;

/// Measure the parallel speedup on this machine: the five paper methods
/// at interval 50, 20 replications each, over the first
/// [`SPEEDUP_PROBE_PACKETS`] packets of `packets` — once on a `jobs`-wide
/// pool, once serially — and record the ratio as gauges
/// (`parkit_speedup_x1000`, `parkit_speedup_jobs`) that perfkit's
/// report collection picks up. Returns the speedup (serial / parallel).
pub fn record_speedup(packets: &[nettrace::PacketRecord], jobs: usize, seed: u64) -> f64 {
    let _span = obskit::span("parkit_speedup_probe");
    let probe = &packets[..packets.len().min(SPEEDUP_PROBE_PACKETS)];
    let exp = Experiment::new(probe, Target::PacketSize);
    let cells: Vec<(MethodFamily, usize)> = MethodFamily::paper_five()
        .into_iter()
        .map(|f| (f, 50))
        .collect();
    let wall = |pool: &parkit::Pool| {
        let start = Instant::now();
        let results = exp.run_grid_with(pool, &cells, 20, seed);
        assert_eq!(results.len(), cells.len());
        start.elapsed().as_secs_f64()
    };
    let parallel = wall(&parkit::Pool::new(jobs));
    let serial = wall(&parkit::Pool::serial());
    let speedup = if parallel > 0.0 {
        serial / parallel
    } else {
        1.0
    };
    obskit::gauge("parkit_speedup_x1000").set((speedup * 1000.0).round() as i64);
    obskit::gauge("parkit_speedup_jobs").set(jobs as i64);
    speedup
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Satellite regression test: the serialization span must aggregate
    /// as a sibling of the experiment spans under the root — per-
    /// experiment subtrees (and their wall times) exclude it.
    #[test]
    fn report_span_is_sibling_not_child_of_experiments() {
        {
            let _root = root_span();
            let mut t = Timings::new();
            let out = t.timed("span_probe", || "rendered".to_string());
            assert_eq!(out, "rendered");
            assert_eq!(t.entries().len(), 1);
            // The experiment span is already closed when the report span
            // opens — exactly the call order the driver uses.
            let _report = report_span();
        }
        let folded = obskit::tree::render_folded();
        assert!(
            folded.contains("repro_all;repro_experiment"),
            "experiment span not under root:\n{folded}"
        );
        assert!(
            folded.contains("repro_all;bench_report"),
            "report span not under root:\n{folded}"
        );
        assert!(
            !folded.contains("repro_experiment;bench_report"),
            "serialization span nested inside an experiment:\n{folded}"
        );
    }

    #[test]
    fn timing_table_lists_total() {
        let mut t = Timings::new();
        let _ = t.timed("a", String::new);
        let _ = t.timed("b", String::new);
        let table = t.render_table();
        assert!(table.contains("experiment"));
        assert!(table.contains("total"));
        assert_eq!(t.to_experiment_times().len(), 2);
        assert!(t.total() >= t.entries()[0].1);
    }

    #[test]
    fn speedup_probe_sets_gauges() {
        // Tiny synthetic window: the probe must run, compute a finite
        // positive ratio, and publish both gauges.
        let packets: Vec<nettrace::PacketRecord> = (0..2_000)
            .map(|i| nettrace::PacketRecord::new(nettrace::Micros(1 + i as u64 * 500), 100))
            .collect();
        let s = record_speedup(&packets, 2, 7);
        assert!(s.is_finite() && s > 0.0, "speedup {s}");
        assert_eq!(obskit::gauge("parkit_speedup_jobs").get(), 2);
        assert!(obskit::gauge("parkit_speedup_x1000").get() > 0);
    }
}
