//! Reproduction harness for every table and figure of the paper.
//!
//! Each experiment lives in [`experiments`] as a function that renders
//! its table/series as text; the `src/bin/*` binaries are thin wrappers
//! (one per table/figure, per DESIGN.md's experiment index), and
//! `repro_all` runs the full set in order — its output is the source of
//! `EXPERIMENTS.md`.
//!
//! Run with `--release`: the study population is a 1.5-million-packet
//! synthetic hour.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod timing;

use nettrace::Trace;

/// The seed all reproduction binaries use for the study hour, so every
/// experiment runs over the *same* parent population (as the paper's
/// did).
pub const STUDY_SEED: u64 = 1993;

/// Generate the study population: the calibrated synthetic SDSC hour.
#[must_use]
pub fn study_trace() -> Trace {
    netsynth::sdsc_hour(STUDY_SEED)
}

/// Granularities used by the paper's sweeps: powers of two from 2 to
/// 32 768 ("starting at every other packet, and decreasing the fraction
/// down to one in 32,768 packets", §7).
#[must_use]
pub fn paper_granularities() -> Vec<usize> {
    (1..=15).map(|i| 1usize << i).collect()
}

/// Format a float series as a compact aligned row.
#[must_use]
pub fn fmt_row(label: &str, values: &[f64], width: usize, precision: usize) -> String {
    let mut s = format!("{label:<14}");
    for v in values {
        s.push_str(&format!(" {v:>width$.precision$}"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn granularities_are_the_papers() {
        let ks = paper_granularities();
        assert_eq!(ks.first(), Some(&2));
        assert_eq!(ks.last(), Some(&32_768));
        assert_eq!(ks.len(), 15);
    }

    #[test]
    fn fmt_row_alignment() {
        let r = fmt_row("phi", &[0.1, 0.22], 8, 3);
        assert!(r.starts_with("phi"));
        assert!(r.contains("0.100"));
        assert!(r.contains("0.220"));
    }
}
