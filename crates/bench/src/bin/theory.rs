//! Run the §5 theory ablation: efficiency orderings on structured populations.
fn main() {
    print!("{}", bench::experiments::theory::run(bench::STUDY_SEED));
}
