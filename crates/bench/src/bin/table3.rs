//! Reproduce Table 3: population packet-size and interarrival summaries.
fn main() {
    print!(
        "{}",
        bench::experiments::table2_3::run_table3(&bench::study_trace())
    );
}
