//! Run the ACF ablation: why packet-driven methods tie on this traffic.
fn main() {
    print!(
        "{}",
        bench::experiments::acf_ablation::run(&bench::study_trace(), bench::STUDY_SEED)
    );
}
