//! Reproduce Figure 6 (phi boxplots vs fraction); Figure 7's means are appended.
fn main() {
    print!(
        "{}",
        bench::experiments::figure6_7::run(&bench::study_trace())
    );
}
