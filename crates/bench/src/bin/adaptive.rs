//! Run the adaptive-vs-fixed sampling ablation.
fn main() {
    print!(
        "{}",
        bench::experiments::adaptive_ablation::run(bench::STUDY_SEED)
    );
}
