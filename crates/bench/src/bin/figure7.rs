//! Reproduce Figure 7 (means of the Figure 6 boxplots; printed with Figure 6).
fn main() {
    print!(
        "{}",
        bench::experiments::figure6_7::run(&bench::study_trace())
    );
}
