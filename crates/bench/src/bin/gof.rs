//! Demonstrate why K-S and Anderson-Darling are hard to apply to WAN data (§5.2).
fn main() {
    print!(
        "{}",
        bench::experiments::gof_difficulty::run(bench::STUDY_SEED)
    );
}
