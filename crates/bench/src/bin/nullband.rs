//! Run the phi null-band extension: the paper's missing acceptance threshold.
fn main() {
    print!(
        "{}",
        bench::experiments::nullband::run(&bench::study_trace(), bench::STUDY_SEED)
    );
}
