//! Reproduce Table 2: per-second packet/byte/mean-size summary statistics.
fn main() {
    print!(
        "{}",
        bench::experiments::table2_3::run_table2(&bench::study_trace())
    );
}
