//! Run the footnote-3 robustness check: SDSC vs FIX-West profiles.
fn main() {
    print!("{}", bench::experiments::robustness::run(bench::STUDY_SEED));
}
