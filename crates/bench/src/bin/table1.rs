//! Reproduce Table 1: the per-node statistical object inventory, built live.
fn main() {
    print!("{}", bench::experiments::table1::run(&bench::study_trace()));
}
