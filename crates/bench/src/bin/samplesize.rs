//! Reproduce the §5.1 Cochran sample-size worked examples.
fn main() {
    print!(
        "{}",
        bench::experiments::samplesize::run(&bench::study_trace())
    );
}
