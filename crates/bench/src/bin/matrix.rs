//! Run the §8 hard case: sampled traffic-matrix estimation error by volume decile.
fn main() {
    print!(
        "{}",
        bench::experiments::matrix::run(&bench::study_trace(), 100)
    );
}
