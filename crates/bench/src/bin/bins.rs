//! Run the bin-choice sensitivity ablation (§7.1).
fn main() {
    print!(
        "{}",
        bench::experiments::bins::run(&bench::study_trace(), bench::STUDY_SEED)
    );
}
