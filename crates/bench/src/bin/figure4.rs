//! Reproduce Figure 4: packet-size histograms at five systematic granularities.
fn main() {
    let t = bench::study_trace();
    print!(
        "{}",
        bench::experiments::figure4_5::run(&t, sampling::Target::PacketSize)
    );
}
