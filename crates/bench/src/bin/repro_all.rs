//! Run every reproduction in order; the output is the source of EXPERIMENTS.md.
//!
//! Each experiment is wall-clock timed under a `repro_experiment` span
//! and a per-figure timing table is appended, so regressions in
//! reproduction cost are visible run-to-run. Report serialization runs
//! under a sibling `bench_report` span — experiment wall times never
//! include it.
//!
//! Flags:
//! * `--jobs <n>` — worker-pool width for every experiment grid
//!   (default: available parallelism / `NETSAMPLE_JOBS`; `1` forces the
//!   serial path). Results are bit-identical at any width.
//! * `--bench-json <dir>` — also write the run as the next
//!   `BENCH_<n>.json` in `<dir>` and diff it against the newest prior
//!   report there (see the perfkit crate).
//! * `--profile-out <file>` — write the aggregated span tree in
//!   collapsed-stack format (one `path;path;leaf self_us` line each),
//!   consumable by `inferno-flamegraph` or speedscope.
use bench::experiments as ex;
use bench::timing::Timings;
use sampling::Target;
use std::path::PathBuf;

struct Flags {
    bench_json: Option<PathBuf>,
    profile_out: Option<PathBuf>,
    jobs: usize,
}

fn parse_flags() -> Flags {
    let mut flags = Flags {
        bench_json: None,
        profile_out: None,
        jobs: parkit::default_jobs(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bench-json" => match args.next() {
                Some(dir) => flags.bench_json = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--bench-json needs a directory argument");
                    std::process::exit(64);
                }
            },
            "--profile-out" => match args.next() {
                Some(file) => flags.profile_out = Some(PathBuf::from(file)),
                None => {
                    eprintln!("--profile-out needs a file argument");
                    std::process::exit(64);
                }
            },
            "--jobs" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => flags.jobs = n,
                _ => {
                    eprintln!("--jobs needs a positive integer argument");
                    std::process::exit(64);
                }
            },
            other => {
                eprintln!(
                    "unknown flag {other}; known: --jobs <n>, --bench-json <dir>, --profile-out <file>"
                );
                std::process::exit(64);
            }
        }
    }
    flags
}

fn main() {
    let flags = parse_flags();
    parkit::set_default_jobs(flags.jobs);
    // Any JSONL trace sink installed via env gets flushed even if an
    // experiment panics partway through the run.
    let _flush = obskit::trace::flush_on_drop();
    let root = bench::timing::root_span();
    let t = bench::study_trace();
    println!(
        "# Reproduction run (seed {}, {} packets, {} jobs)\n",
        bench::STUDY_SEED,
        t.len(),
        flags.jobs
    );
    let mut timings = Timings::new();
    let tm = &mut timings;
    let show = |out: String| println!("{out}");
    show(tm.timed("table1", || ex::table1::run(&t)));
    show(tm.timed("figure1", ex::figure1::run));
    show(tm.timed("table2", || ex::table2_3::run_table2(&t)));
    show(tm.timed("table3", || ex::table2_3::run_table3(&t)));
    show(tm.timed("samplesize", || ex::samplesize::run(&t)));
    show(tm.timed("figure3", || ex::figure3::run(&t, Target::PacketSize)));
    show(tm.timed("figure4_5/size", || {
        ex::figure4_5::run(&t, Target::PacketSize)
    }));
    show(tm.timed("figure4_5/ia", || {
        ex::figure4_5::run(&t, Target::Interarrival)
    }));
    show(tm.timed("figure6_7", || ex::figure6_7::run(&t)));
    show(tm.timed("figure8_9/size", || {
        ex::figure8_9::run(&t, Target::PacketSize)
    }));
    show(tm.timed("figure8_9/ia", || {
        ex::figure8_9::run(&t, Target::Interarrival)
    }));
    show(tm.timed("figure10_11/size", || {
        ex::figure10_11::run(&t, Target::PacketSize)
    }));
    show(tm.timed("figure10_11/ia", || {
        ex::figure10_11::run(&t, Target::Interarrival)
    }));
    show(tm.timed("chi2test", || ex::chi2test::run(&t)));
    show(tm.timed("proportions", || ex::proportions::run(&t)));
    show(tm.timed("theory", || ex::theory::run(bench::STUDY_SEED)));
    show(tm.timed("matrix", || ex::matrix::run(&t, 100)));
    show(tm.timed("acf_ablation", || {
        ex::acf_ablation::run(&t, bench::STUDY_SEED)
    }));
    show(tm.timed("robustness", || ex::robustness::run(bench::STUDY_SEED)));
    show(tm.timed("adaptive_ablation", || {
        ex::adaptive_ablation::run(bench::STUDY_SEED)
    }));
    show(tm.timed("correlation", || ex::correlation::run(bench::STUDY_SEED)));
    show(tm.timed("gof_difficulty", || {
        ex::gof_difficulty::run(bench::STUDY_SEED)
    }));
    show(tm.timed("volume", || ex::volume::run(&t)));
    show(tm.timed("bins", || ex::bins::run(&t, bench::STUDY_SEED)));
    show(tm.timed("nullband", || ex::nullband::run(&t, bench::STUDY_SEED)));

    // Measure this machine's parallel speedup on the 100k-packet probe
    // workload; the ratio is recorded as gauges and lands in the BENCH
    // report. Only meaningful with a multi-worker pool.
    if flags.jobs > 1 {
        let s = bench::timing::record_speedup(t.packets(), flags.jobs, bench::STUDY_SEED);
        eprintln!("parallel speedup probe: {s:.2}x at {} jobs", flags.jobs);
    }

    println!("## Timing\n");
    print!("{}", timings.render_table());

    if let Some(path) = &flags.profile_out {
        let folded = obskit::tree::render_folded();
        if let Err(e) = std::fs::write(path, folded) {
            eprintln!("cannot write profile {}: {e}", path.display());
            std::process::exit(74);
        }
        eprintln!("folded-stack profile written: {}", path.display());
    }
    if let Some(dir) = &flags.bench_json {
        // Sibling of the repro_experiment spans: serialization cost
        // stays out of every experiment's subtree and wall time.
        let _report_span = bench::timing::report_span();
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            std::process::exit(74);
        }
        let ts_us = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        let mut report = perfkit::BenchReport::collect(
            perfkit::RunMeta {
                ts_us,
                source: "repro_all".to_string(),
                seed: bench::STUDY_SEED,
                packets: t.len() as u64,
                jobs: flags.jobs as u64,
            },
            timings.to_experiment_times(),
        );
        match report.write_next(dir) {
            Ok(path) => {
                eprintln!("bench report written: {}", path.display());
                if let Some((base, _)) = perfkit::baseline_before(dir, report.bench_version) {
                    match perfkit::BenchReport::load(&base) {
                        Ok(old) => eprint!(
                            "{}",
                            perfkit::diff(&old, &report, perfkit::DEFAULT_THRESHOLD).render()
                        ),
                        Err(e) => eprintln!("cannot load baseline: {e}"),
                    }
                }
            }
            Err(e) => {
                eprintln!("bench report failed: {e}");
                std::process::exit(74);
            }
        }
    }
    drop(root);
}
