//! Run every reproduction in order; the output is the source of EXPERIMENTS.md.
use bench::experiments as ex;
use sampling::Target;

fn main() {
    let t = bench::study_trace();
    println!("# Reproduction run (seed {}, {} packets)\n", bench::STUDY_SEED, t.len());
    println!("{}", ex::table1::run(&t));
    println!("{}", ex::figure1::run());
    println!("{}", ex::table2_3::run_table2(&t));
    println!("{}", ex::table2_3::run_table3(&t));
    println!("{}", ex::samplesize::run(&t));
    println!("{}", ex::figure3::run(&t, Target::PacketSize));
    println!("{}", ex::figure4_5::run(&t, Target::PacketSize));
    println!("{}", ex::figure4_5::run(&t, Target::Interarrival));
    println!("{}", ex::figure6_7::run(&t));
    println!("{}", ex::figure8_9::run(&t, Target::PacketSize));
    println!("{}", ex::figure8_9::run(&t, Target::Interarrival));
    println!("{}", ex::figure10_11::run(&t, Target::PacketSize));
    println!("{}", ex::figure10_11::run(&t, Target::Interarrival));
    println!("{}", ex::chi2test::run(&t));
    println!("{}", ex::proportions::run(&t));
    println!("{}", ex::theory::run(bench::STUDY_SEED));
    println!("{}", ex::matrix::run(&t, 100));
    println!("{}", ex::acf_ablation::run(&t, bench::STUDY_SEED));
    println!("{}", ex::robustness::run(bench::STUDY_SEED));
    println!("{}", ex::adaptive_ablation::run(bench::STUDY_SEED));
    println!("{}", ex::correlation::run(bench::STUDY_SEED));
    println!("{}", ex::gof_difficulty::run(bench::STUDY_SEED));
    println!("{}", ex::volume::run(&t));
    println!("{}", ex::bins::run(&t, bench::STUDY_SEED));
    println!("{}", ex::nullband::run(&t, bench::STUDY_SEED));
}
