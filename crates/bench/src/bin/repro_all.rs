//! Run every reproduction in order; the output is the source of EXPERIMENTS.md.
//!
//! Each experiment is wall-clock timed and a per-figure timing table is
//! appended, so regressions in reproduction cost are visible run-to-run.
use bench::experiments as ex;
use sampling::Target;
use std::time::{Duration, Instant};

fn timed(
    timings: &mut Vec<(&'static str, Duration)>,
    name: &'static str,
    run: impl FnOnce() -> String,
) {
    let start = Instant::now();
    let out = run();
    timings.push((name, start.elapsed()));
    println!("{out}");
}

fn main() {
    let t = bench::study_trace();
    println!(
        "# Reproduction run (seed {}, {} packets)\n",
        bench::STUDY_SEED,
        t.len()
    );
    let mut timings = Vec::new();
    let tm = &mut timings;
    timed(tm, "table1", || ex::table1::run(&t));
    timed(tm, "figure1", ex::figure1::run);
    timed(tm, "table2", || ex::table2_3::run_table2(&t));
    timed(tm, "table3", || ex::table2_3::run_table3(&t));
    timed(tm, "samplesize", || ex::samplesize::run(&t));
    timed(tm, "figure3", || ex::figure3::run(&t, Target::PacketSize));
    timed(tm, "figure4_5/size", || {
        ex::figure4_5::run(&t, Target::PacketSize)
    });
    timed(tm, "figure4_5/ia", || {
        ex::figure4_5::run(&t, Target::Interarrival)
    });
    timed(tm, "figure6_7", || ex::figure6_7::run(&t));
    timed(tm, "figure8_9/size", || {
        ex::figure8_9::run(&t, Target::PacketSize)
    });
    timed(tm, "figure8_9/ia", || {
        ex::figure8_9::run(&t, Target::Interarrival)
    });
    timed(tm, "figure10_11/size", || {
        ex::figure10_11::run(&t, Target::PacketSize)
    });
    timed(tm, "figure10_11/ia", || {
        ex::figure10_11::run(&t, Target::Interarrival)
    });
    timed(tm, "chi2test", || ex::chi2test::run(&t));
    timed(tm, "proportions", || ex::proportions::run(&t));
    timed(tm, "theory", || ex::theory::run(bench::STUDY_SEED));
    timed(tm, "matrix", || ex::matrix::run(&t, 100));
    timed(tm, "acf_ablation", || {
        ex::acf_ablation::run(&t, bench::STUDY_SEED)
    });
    timed(tm, "robustness", || ex::robustness::run(bench::STUDY_SEED));
    timed(tm, "adaptive_ablation", || {
        ex::adaptive_ablation::run(bench::STUDY_SEED)
    });
    timed(tm, "correlation", || {
        ex::correlation::run(bench::STUDY_SEED)
    });
    timed(tm, "gof_difficulty", || {
        ex::gof_difficulty::run(bench::STUDY_SEED)
    });
    timed(tm, "volume", || ex::volume::run(&t));
    timed(tm, "bins", || ex::bins::run(&t, bench::STUDY_SEED));
    timed(tm, "nullband", || ex::nullband::run(&t, bench::STUDY_SEED));

    println!("## Timing\n");
    println!("{:<20} {:>10}", "experiment", "seconds");
    let mut total = Duration::ZERO;
    for (name, d) in &timings {
        println!("{name:<20} {:>10.3}", d.as_secs_f64());
        total += *d;
    }
    println!("{:<20} {:>10.3}", "total", total.as_secs_f64());
}
