//! Run every reproduction in order; the output is the source of EXPERIMENTS.md.
//!
//! Each experiment is wall-clock timed and a per-figure timing table is
//! appended, so regressions in reproduction cost are visible run-to-run.
//!
//! Flags:
//! * `--bench-json <dir>` — also write the run as the next
//!   `BENCH_<n>.json` in `<dir>` and diff it against the newest prior
//!   report there (see the perfkit crate).
//! * `--profile-out <file>` — write the aggregated span tree in
//!   collapsed-stack format (one `path;path;leaf self_us` line each),
//!   consumable by `inferno-flamegraph` or speedscope.
use bench::experiments as ex;
use sampling::Target;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn timed(
    timings: &mut Vec<(&'static str, Duration)>,
    name: &'static str,
    run: impl FnOnce() -> String,
) {
    let start = Instant::now();
    let out = run();
    timings.push((name, start.elapsed()));
    println!("{out}");
}

fn parse_flags() -> (Option<PathBuf>, Option<PathBuf>) {
    let mut bench_json = None;
    let mut profile_out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bench-json" => match args.next() {
                Some(dir) => bench_json = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--bench-json needs a directory argument");
                    std::process::exit(64);
                }
            },
            "--profile-out" => match args.next() {
                Some(file) => profile_out = Some(PathBuf::from(file)),
                None => {
                    eprintln!("--profile-out needs a file argument");
                    std::process::exit(64);
                }
            },
            other => {
                eprintln!("unknown flag {other}; known: --bench-json <dir>, --profile-out <file>");
                std::process::exit(64);
            }
        }
    }
    (bench_json, profile_out)
}

fn main() {
    let (bench_json, profile_out) = parse_flags();
    // Any JSONL trace sink installed via env gets flushed even if an
    // experiment panics partway through the run.
    let _flush = obskit::trace::flush_on_drop();
    let t = bench::study_trace();
    println!(
        "# Reproduction run (seed {}, {} packets)\n",
        bench::STUDY_SEED,
        t.len()
    );
    let mut timings = Vec::new();
    let tm = &mut timings;
    timed(tm, "table1", || ex::table1::run(&t));
    timed(tm, "figure1", ex::figure1::run);
    timed(tm, "table2", || ex::table2_3::run_table2(&t));
    timed(tm, "table3", || ex::table2_3::run_table3(&t));
    timed(tm, "samplesize", || ex::samplesize::run(&t));
    timed(tm, "figure3", || ex::figure3::run(&t, Target::PacketSize));
    timed(tm, "figure4_5/size", || {
        ex::figure4_5::run(&t, Target::PacketSize)
    });
    timed(tm, "figure4_5/ia", || {
        ex::figure4_5::run(&t, Target::Interarrival)
    });
    timed(tm, "figure6_7", || ex::figure6_7::run(&t));
    timed(tm, "figure8_9/size", || {
        ex::figure8_9::run(&t, Target::PacketSize)
    });
    timed(tm, "figure8_9/ia", || {
        ex::figure8_9::run(&t, Target::Interarrival)
    });
    timed(tm, "figure10_11/size", || {
        ex::figure10_11::run(&t, Target::PacketSize)
    });
    timed(tm, "figure10_11/ia", || {
        ex::figure10_11::run(&t, Target::Interarrival)
    });
    timed(tm, "chi2test", || ex::chi2test::run(&t));
    timed(tm, "proportions", || ex::proportions::run(&t));
    timed(tm, "theory", || ex::theory::run(bench::STUDY_SEED));
    timed(tm, "matrix", || ex::matrix::run(&t, 100));
    timed(tm, "acf_ablation", || {
        ex::acf_ablation::run(&t, bench::STUDY_SEED)
    });
    timed(tm, "robustness", || ex::robustness::run(bench::STUDY_SEED));
    timed(tm, "adaptive_ablation", || {
        ex::adaptive_ablation::run(bench::STUDY_SEED)
    });
    timed(tm, "correlation", || {
        ex::correlation::run(bench::STUDY_SEED)
    });
    timed(tm, "gof_difficulty", || {
        ex::gof_difficulty::run(bench::STUDY_SEED)
    });
    timed(tm, "volume", || ex::volume::run(&t));
    timed(tm, "bins", || ex::bins::run(&t, bench::STUDY_SEED));
    timed(tm, "nullband", || ex::nullband::run(&t, bench::STUDY_SEED));

    println!("## Timing\n");
    println!("{:<20} {:>10}", "experiment", "seconds");
    let mut total = Duration::ZERO;
    for (name, d) in &timings {
        println!("{name:<20} {:>10.3}", d.as_secs_f64());
        total += *d;
    }
    println!("{:<20} {:>10.3}", "total", total.as_secs_f64());

    if let Some(path) = &profile_out {
        let folded = obskit::tree::render_folded();
        if let Err(e) = std::fs::write(path, folded) {
            eprintln!("cannot write profile {}: {e}", path.display());
            std::process::exit(74);
        }
        eprintln!("folded-stack profile written: {}", path.display());
    }
    if let Some(dir) = &bench_json {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            std::process::exit(74);
        }
        let ts_us = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        let experiments = timings
            .iter()
            .map(|(name, d)| perfkit::ExperimentTime {
                name: (*name).to_string(),
                wall_us: d.as_micros() as u64,
            })
            .collect();
        let mut report = perfkit::BenchReport::collect(
            perfkit::RunMeta {
                ts_us,
                source: "repro_all".to_string(),
                seed: bench::STUDY_SEED,
                packets: t.len() as u64,
            },
            experiments,
        );
        match report.write_next(dir) {
            Ok(path) => {
                eprintln!("bench report written: {}", path.display());
                if let Some((base, _)) = perfkit::baseline_before(dir, report.bench_version) {
                    match perfkit::BenchReport::load(&base) {
                        Ok(old) => eprint!(
                            "{}",
                            perfkit::diff(&old, &report, perfkit::DEFAULT_THRESHOLD).render()
                        ),
                        Err(e) => eprintln!("cannot load baseline: {e}"),
                    }
                }
            }
            Err(e) => {
                eprintln!("bench report failed: {e}");
                std::process::exit(74);
            }
        }
    }
}
