//! Measure collection report volume against the paper's 25 MB/workday figure.
fn main() {
    print!("{}", bench::experiments::volume::run(&bench::study_trace()));
}
