//! Run the within-flow correlation ablation on flow-level traffic.
fn main() {
    print!(
        "{}",
        bench::experiments::correlation::run(bench::STUDY_SEED)
    );
}
