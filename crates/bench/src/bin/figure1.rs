//! Reproduce Figure 1: SNMP vs NNStat monthly totals and the Sept-91 sampling fix.
fn main() {
    print!("{}", bench::experiments::figure1::run());
}
