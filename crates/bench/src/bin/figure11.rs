//! Reproduce Figure 11: systematic phi vs elapsed time (interarrival).
fn main() {
    let t = bench::study_trace();
    print!(
        "{}",
        bench::experiments::figure10_11::run(&t, sampling::Target::Interarrival)
    );
}
