//! Reproduce Figure 8: mean phi vs fraction for all five methods (packet size).
fn main() {
    let t = bench::study_trace();
    print!(
        "{}",
        bench::experiments::figure8_9::run(&t, sampling::Target::PacketSize)
    );
}
