//! Run the §8 extension: proportion targets (protocol/port distributions).
fn main() {
    print!(
        "{}",
        bench::experiments::proportions::run(&bench::study_trace())
    );
}
