//! Reproduce Figure 9: mean phi vs fraction for all five methods (interarrival).
fn main() {
    let t = bench::study_trace();
    print!(
        "{}",
        bench::experiments::figure8_9::run(&t, sampling::Target::Interarrival)
    );
}
