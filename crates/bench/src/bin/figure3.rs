//! Reproduce Figure 3: all disparity metrics vs sampling granularity (2048 s).
fn main() {
    let t = bench::study_trace();
    print!(
        "{}",
        bench::experiments::figure3::run(&t, sampling::Target::PacketSize)
    );
}
