//! Reproduce the §6 chi-square compatibility test of 1-in-50 systematic sampling.
fn main() {
    print!(
        "{}",
        bench::experiments::chi2test::run(&bench::study_trace())
    );
}
