//! Reproduce Figure 10: systematic phi vs elapsed time (packet size).
fn main() {
    let t = bench::study_trace();
    print!(
        "{}",
        bench::experiments::figure10_11::run(&t, sampling::Target::PacketSize)
    );
}
