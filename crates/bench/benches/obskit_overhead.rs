//! Instrumentation overhead: what does obskit cost on the sampler hot
//! path?
//!
//! Three variants over the same 100k-packet window with a 1-in-50
//! systematic sampler:
//!
//! * `uninstrumented` — a hand-inlined selection loop with no metrics at
//!   all: the floor.
//! * `instrumented_batched` — the real [`select_indices`], which opens one
//!   span and flushes two labeled counters *per call* (the shipping
//!   configuration). The acceptance bar is < 5% over the floor.
//! * `per_packet_counter` — a counter increment on *every* offer: the
//!   anti-pattern the batch-at-boundary discipline avoids, kept here so
//!   the cost of getting it wrong stays measured.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nettrace::Micros;
use sampling::select_indices;
use sampling::MethodSpec;
use std::hint::black_box;

fn packets(n: usize) -> Vec<nettrace::PacketRecord> {
    (0..n)
        .map(|i| nettrace::PacketRecord::new(Micros(i as u64 * 2358), 232))
        .collect()
}

const SPEC: MethodSpec = MethodSpec::Systematic { interval: 50 };

fn bench_overhead(c: &mut Criterion) {
    let pkts = packets(100_000);
    let mut group = c.benchmark_group("obskit_overhead");
    group.throughput(Throughput::Elements(pkts.len() as u64));

    group.bench_function("uninstrumented", |b| {
        b.iter(|| {
            let mut s = SPEC.build(pkts.len(), Micros(0), 0, 42);
            let selected: Vec<usize> = black_box(&pkts)
                .iter()
                .enumerate()
                .filter_map(|(i, p)| s.offer(p).then_some(i))
                .collect();
            black_box(selected.len())
        });
    });

    group.bench_function("instrumented_batched", |b| {
        b.iter(|| {
            let mut s = SPEC.build(pkts.len(), Micros(0), 0, 42);
            black_box(select_indices(s.as_mut(), black_box(&pkts)).len())
        });
    });

    group.bench_function("per_packet_counter", |b| {
        let examined = obskit::counter("bench_per_packet_examined_total");
        b.iter(|| {
            let mut s = SPEC.build(pkts.len(), Micros(0), 0, 42);
            let selected: Vec<usize> = black_box(&pkts)
                .iter()
                .enumerate()
                .filter_map(|(i, p)| {
                    examined.inc();
                    s.offer(p).then_some(i)
                })
                .collect();
            black_box(selected.len())
        });
    });

    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
