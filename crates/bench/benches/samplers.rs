//! Criterion benches: per-packet overhead of every sampling method.
//!
//! The operational question behind the paper's §2: what does the
//! selection decision cost in the forwarding path? All packet-driven
//! methods must be O(1) per packet with no allocation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nettrace::Micros;
use sampling::experiment::MethodFamily;
use sampling::select_indices;
use std::hint::black_box;

fn packets(n: usize) -> Vec<nettrace::PacketRecord> {
    (0..n)
        .map(|i| nettrace::PacketRecord::new(Micros(i as u64 * 2358), 232))
        .collect()
}

fn bench_samplers(c: &mut Criterion) {
    let pkts = packets(100_000);
    let mut group = c.benchmark_group("sampler_offer");
    group.throughput(Throughput::Elements(pkts.len() as u64));
    let families = [
        MethodFamily::Systematic,
        MethodFamily::StratifiedRandom,
        MethodFamily::SimpleRandom,
        MethodFamily::SystematicTimer,
        MethodFamily::StratifiedTimer,
        MethodFamily::GeometricSkip,
    ];
    for family in families {
        group.bench_with_input(BenchmarkId::new(family.name(), 50), &family, |b, family| {
            let spec = family.at_granularity(50, 424.2);
            b.iter(|| {
                let mut s = spec.build(pkts.len(), Micros(0), 0, 42);
                black_box(select_indices(s.as_mut(), black_box(&pkts)).len())
            });
        });
    }
    group.finish();
}

fn bench_granularity_scaling(c: &mut Criterion) {
    let pkts = packets(100_000);
    let mut group = c.benchmark_group("systematic_granularity");
    group.throughput(Throughput::Elements(pkts.len() as u64));
    for k in [2usize, 50, 1024, 32_768] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let spec = MethodFamily::Systematic.at_granularity(k, 424.2);
            b.iter(|| {
                let mut s = spec.build(pkts.len(), Micros(0), 0, 42);
                black_box(select_indices(s.as_mut(), black_box(&pkts)).len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_samplers, bench_granularity_scaling);
criterion_main!(benches);
