//! Criterion benches: disparity-metric computation and target binning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nettrace::Micros;
use sampling::{disparity, Target};
use std::hint::black_box;

fn packets(n: usize) -> Vec<nettrace::PacketRecord> {
    (0..n)
        .map(|i| {
            let size = if i % 5 < 2 { 40 } else { 552 };
            nettrace::PacketRecord::new(Micros(i as u64 * 2358), size)
        })
        .collect()
}

fn bench_binning(c: &mut Criterion) {
    let mut group = c.benchmark_group("target_binning");
    for n in [10_000usize, 100_000] {
        let pkts = packets(n);
        group.throughput(Throughput::Elements(n as u64));
        for target in [Target::PacketSize, Target::Interarrival] {
            group.bench_with_input(BenchmarkId::new(target.to_string(), n), &pkts, |b, pkts| {
                b.iter(|| black_box(target.population_histogram(black_box(pkts))))
            });
        }
    }
    group.finish();
}

fn bench_disparity(c: &mut Criterion) {
    let pkts = packets(100_000);
    let pop = Target::PacketSize.population_histogram(&pkts);
    let selected: Vec<usize> = (0..pkts.len()).step_by(50).collect();
    let sam = Target::PacketSize.sample_histogram(&pkts, &selected);
    c.bench_function("disparity_suite", |b| {
        b.iter(|| black_box(disparity(black_box(&pop), black_box(&sam))))
    });
}

criterion_group!(benches, bench_binning, bench_disparity);
criterion_main!(benches);
