//! Criterion benches: the streaming engine against the batch path.
//!
//! The operational question behind `netsample stream`: what does
//! one-pass bounded-memory operation cost over the
//! materialize-everything batch pipeline, per capture byte? Both sides
//! do the same work — decode the pcap, sample 1-in-50, build the
//! histograms, score φ — so the gap is the price of chunked ingestion,
//! windowing, and the staged channels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nettrace::pcap::write_pcap;
use nettrace::read_capture;
use parkit::Pool;
use sampling::{Experiment, MethodSpec, Target};
use std::hint::black_box;
use streamkit::{run_stream, StreamConfig, StreamMethod, WindowSpec};

fn capture(n: usize) -> Vec<u8> {
    let trace = netsynth::canonical::randomly_ordered(n, 42);
    let mut buf = Vec::new();
    write_pcap(&mut buf, &trace).unwrap();
    buf
}

fn bench_stream_vs_batch(c: &mut Criterion) {
    let n = 100_000usize;
    let bytes = capture(n);
    let method = MethodSpec::Systematic { interval: 50 };
    let mut group = c.benchmark_group("ingest_and_score");
    group.throughput(Throughput::Bytes(bytes.len() as u64));

    group.bench_with_input(BenchmarkId::new("batch", n), &bytes, |b, bytes| {
        b.iter(|| {
            let trace = read_capture(black_box(bytes.as_slice())).unwrap();
            let exp = Experiment::new(trace.packets(), Target::PacketSize);
            let result = exp.run_with(&Pool::serial(), method, 1, 42);
            black_box(result.replications.len())
        });
    });

    // One whole-capture window: the exact batch-equivalent workload.
    group.bench_with_input(BenchmarkId::new("stream", n), &bytes, |b, bytes| {
        let mut cfg = StreamConfig::new(
            StreamMethod::Spec(method),
            Target::PacketSize,
            WindowSpec::Count(n as u64),
        );
        cfg.seed = 42;
        cfg.population_hint = Some(n);
        b.iter(|| {
            let summary = run_stream(black_box(bytes.as_slice()), &cfg).unwrap();
            black_box(summary.windows.len())
        });
    });

    // Small tumbling windows: bounded memory, many window closes.
    group.bench_with_input(
        BenchmarkId::new("stream_windowed", n),
        &bytes,
        |b, bytes| {
            let cfg = StreamConfig::new(
                StreamMethod::Spec(method),
                Target::PacketSize,
                WindowSpec::Count(1_000),
            );
            b.iter(|| {
                let summary = run_stream(black_box(bytes.as_slice()), &cfg).unwrap();
                black_box(summary.windows.len())
            });
        },
    );

    group.finish();
}

criterion_group!(benches, bench_stream_vs_batch);
criterion_main!(benches);
