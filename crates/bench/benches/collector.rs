//! Criterion benches: collector-node and object-categorization throughput.
//!
//! The whole point of sampling in the NSFNET pipeline was to keep the
//! per-packet categorization cost inside the processor budget; these
//! benches measure that cost directly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use netstat_sim::{CollectorNode, ObjectSet};
use nettrace::Micros;
use std::hint::black_box;

fn packets(n: usize) -> Vec<nettrace::PacketRecord> {
    (0..n)
        .map(|i| {
            let size = if i % 5 < 2 { 40 } else { 552 };
            nettrace::PacketRecord::new(Micros(i as u64 * 2358), size)
                .with_ports(1024 + (i % 3000) as u16, [20, 23, 25, 53][i % 4])
                .with_nets((i % 120) as u16 + 1, (i % 1500) as u16 + 1)
        })
        .collect()
}

fn bench_collector(c: &mut Criterion) {
    let pkts = packets(100_000);
    let mut group = c.benchmark_group("collector_offer");
    group.throughput(Throughput::Elements(pkts.len() as u64));
    for (label, set, sampling) in [
        ("t1_unsampled", ObjectSet::T1, 1u64),
        ("t1_1in50", ObjectSet::T1, 50),
        ("t3_unsampled", ObjectSet::T3, 1),
        ("t3_1in50", ObjectSet::T3, 50),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &pkts, |b, pkts| {
            b.iter(|| {
                let mut node = CollectorNode::new(set, u64::MAX / 2);
                node.deploy_sampling(sampling);
                for p in pkts {
                    black_box(node.offer(black_box(p)));
                }
                black_box(node.collect())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_collector);
criterion_main!(benches);
