//! Criterion benches: synthetic-trace generation rate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use netsynth::flows::FlowProfile;
use netsynth::TraceProfile;
use std::hint::black_box;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    group.sample_size(10);
    for secs in [10u32, 60] {
        let profile = TraceProfile::short(secs);
        group.throughput(Throughput::Elements(u64::from(secs) * 424));
        group.bench_with_input(BenchmarkId::from_parameter(secs), &profile, |b, p| {
            b.iter(|| black_box(netsynth::generate(black_box(p), 7)))
        });
    }
    group.finish();
}

fn bench_flow_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_generation");
    group.sample_size(10);
    for secs in [30u32, 120] {
        let profile = FlowProfile {
            duration_secs: secs,
            ..FlowProfile::default()
        };
        group.throughput(Throughput::Elements(u64::from(secs) * 420));
        group.bench_with_input(BenchmarkId::new("flows", secs), &profile, |b, p| {
            b.iter(|| black_box(netsynth::flows::generate_flows(black_box(p), 7)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generation, bench_flow_generation);
criterion_main!(benches);
