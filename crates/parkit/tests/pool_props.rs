//! Property tests for the pool's core contract (in-tree proptest shim):
//! for arbitrary task counts and pool widths, every slot is filled
//! exactly once with its own task's output; with panicking tasks, the
//! run still visits every task and reports a single deterministic
//! [`parkit::PoolError`].

use parkit::Pool;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Every slot holds its own task's output, for any (tasks, workers)
    // shape: serial, fewer tasks than workers, many more tasks than
    // workers.
    #[test]
    fn slots_filled_exactly_once(shape in (0usize..300, 1usize..16)) {
        let (tasks, workers) = shape;
        let ran = AtomicUsize::new(0);
        let out = Pool::new(workers)
            .run(tasks, |i| {
                ran.fetch_add(1, Ordering::Relaxed);
                i.wrapping_mul(2654435761) ^ 0x9e37
            })
            .unwrap();
        prop_assert_eq!(out.len(), tasks);
        // Each task ran exactly once — no slot double-filled, none lost.
        prop_assert_eq!(ran.load(Ordering::Relaxed), tasks);
        for (i, v) in out.iter().enumerate() {
            prop_assert_eq!(*v, i.wrapping_mul(2654435761) ^ 0x9e37, "slot {}", i);
        }
    }

    // Panicking tasks surface as ONE pool error carrying the lowest
    // panicked index and an exact panic count — and no other task is
    // lost to a neighbor's panic.
    #[test]
    fn panics_are_aggregated_not_lost(shape in (1usize..120, 1usize..9, 2usize..7)) {
        let (tasks, workers, modulus) = shape;
        let ran = AtomicUsize::new(0);
        let result = Pool::new(workers).run(tasks, |i| {
            ran.fetch_add(1, Ordering::Relaxed);
            assert!(i % modulus != 0, "task {i} fails");
            i
        });
        // Every task was attempted regardless of failures elsewhere.
        prop_assert_eq!(ran.load(Ordering::Relaxed), tasks);
        let expected_panics = (0..tasks).filter(|i| i % modulus == 0).count();
        // Task 0 always matches `i % modulus == 0`, so an error is
        // guaranteed and its first index is deterministic.
        let e = result.unwrap_err();
        prop_assert_eq!(e.panicked, expected_panics);
        prop_assert_eq!(e.first_task, 0);
        prop_assert_eq!(e.tasks, tasks);
        prop_assert!(e.first_message.contains("task 0 fails"), "{}", e);
    }

    // The same (tasks, seed-free) workload gives bit-identical output
    // at any width — the determinism contract the experiment layer
    // relies on.
    #[test]
    fn output_is_width_invariant(shape in (0usize..200, 2usize..12)) {
        let (tasks, workers) = shape;
        let work = |i: usize| {
            let mut x = (i as f64).mul_add(0.123_456_789, 1.0);
            for _ in 0..8 {
                x = x.sin() * 1e3 + i as f64;
            }
            x.to_bits()
        };
        let serial = Pool::serial().run(tasks, work).unwrap();
        let parallel = Pool::new(workers).run(tasks, work).unwrap();
        prop_assert_eq!(serial, parallel);
    }
}

/// The shapes the issue calls out by name, pinned exactly rather than
/// sampled: 0 tasks, 1 task, N < workers, N ≫ workers.
#[test]
fn named_shapes_are_exact() {
    let cases: &[(usize, usize)] = &[(0, 4), (1, 4), (3, 8), (5000, 4)];
    for &(tasks, workers) in cases {
        let out = Pool::new(workers).run(tasks, |i| i).unwrap();
        let expected: Vec<usize> = (0..tasks).collect();
        assert_eq!(out, expected, "tasks={tasks} workers={workers}");
    }
}

/// A panic in every single task still terminates with a full report.
#[test]
fn all_tasks_panicking_reports_all() {
    let e = Pool::new(4)
        .run(10, |i| -> usize { panic!("down {i}") })
        .unwrap_err();
    assert_eq!(e.panicked, 10);
    assert_eq!(e.first_task, 0);
    assert!(e.first_message.contains("down 0"));
}
