//! Concurrency test for obskit's sharded counters under the pool: 8
//! workers hammer one backing counter through per-task
//! [`obskit::CounterShard`]s, and the merged total must equal the sum
//! of the per-worker contributions exactly — no lost increments, no
//! double flush. Also pins that spans opened on worker threads appear
//! in the global span-tree aggregate.

use parkit::Pool;
use std::sync::Mutex;

const WORKERS: usize = 8;
const TASKS: usize = 32;
const HITS_PER_TASK: u64 = 10_000;

/// Both tests take before/after deltas of global counters that the
/// other test's pool also bumps — serialize them so the deltas stay
/// exact under any `--test-threads` width.
static GLOBAL_COUNTERS: Mutex<()> = Mutex::new(());

#[test]
fn sharded_counter_merges_to_exact_sum() {
    let _lock = GLOBAL_COUNTERS.lock().unwrap();
    let backing = obskit::counter("parkit_shard_test_total");
    let before = backing.get();
    let results = Pool::new(WORKERS)
        .run(TASKS, |i| {
            // One shard per task: unsynchronized local bumps, a single
            // atomic merge when the shard drops at task end.
            let shard = obskit::CounterShard::new(obskit::counter("parkit_shard_test_total"));
            let mut local = 0u64;
            for h in 0..HITS_PER_TASK {
                let n = (i as u64 + h) % 3 + 1;
                shard.add(n);
                local += n;
            }
            // Worker-thread spans must land in the global aggregate.
            let _s = obskit::span("parkit_shard_probe");
            local
        })
        .unwrap();

    let expected: u64 = results.iter().sum();
    assert!(expected > 0);
    assert_eq!(
        backing.get() - before,
        expected,
        "merged counter total must equal the per-worker sum"
    );

    // The span opened inside worker tasks is visible in the global
    // span-tree aggregate, as a root path (worker threads have fresh
    // span stacks), with one hit per task.
    let rendered = obskit::tree::render_tree();
    assert!(
        rendered.contains("parkit_shard_probe"),
        "worker-thread span missing from global tree:\n{rendered}"
    );
    let probe = obskit::tree::snapshot()
        .into_iter()
        .find(|n| n.name() == "parkit_shard_probe")
        .expect("probe span aggregated");
    assert_eq!(probe.depth(), 0, "worker span should be a root");
}

#[test]
fn pool_completion_counter_accounts_every_task() {
    let _lock = GLOBAL_COUNTERS.lock().unwrap();
    let completed = obskit::counter("parkit_tasks_completed_total");
    let before = completed.get();
    Pool::new(WORKERS).run(100, |i| i * 3).unwrap();
    assert_eq!(
        completed.get() - before,
        100,
        "per-worker completion shards must merge to the task count"
    );
}
