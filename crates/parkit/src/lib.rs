//! # parkit — a deterministic worker pool for experiment grids
//!
//! The paper's figure families are embarrassingly parallel: every
//! replication cell (method × granularity × offset/seed) scores
//! independently against the same precomputed parent distribution. This
//! crate provides the execution engine those loops run on — a
//! **std-only scoped-thread worker pool** (the workspace is offline, so
//! no rayon) with one hard guarantee:
//!
//! > Parallel results are **bit-identical** to serial results.
//!
//! [`Pool::run`] executes an *indexed* task list `0..tasks` and returns
//! the outputs in a slot vector ordered **by task index, never by
//! completion order**. Tasks must derive everything they need from
//! their index (the experiment layer derives per-cell seeds/offsets
//! from `(cell index, base seed)`), so scheduling — chunk stealing,
//! worker count, preemption — cannot leak into results.
//!
//! ## Scheduling
//!
//! Workers claim **chunks** of consecutive indices from a shared atomic
//! cursor (chunk stealing): cheap enough that thousands of sub-millisecond
//! cells amortize to one `fetch_add` per chunk, while the tail of the
//! list self-balances across workers. Each worker buffers its
//! `(index, output)` pairs locally and the pool merges them into the
//! slot vector after the scope joins — no locks on the task path.
//!
//! ## Serial path
//!
//! A pool with one worker (`--jobs 1`, [`Pool::serial`]) runs every task
//! **inline on the calling thread, in index order**, spawning nothing.
//! This keeps the serial path byte-for-byte equivalent to the historical
//! single-threaded loops — including `obskit` span nesting, which is
//! thread-local.
//!
//! ## Panics
//!
//! A panicking task does not take the pool down and does not lose other
//! tasks: every remaining task still runs, and [`Pool::run`] reports all
//! panics as a single [`PoolError`] naming the lowest panicked index.
//!
//! ## Observability
//!
//! Each parallel worker counts completed tasks in an
//! [`obskit::CounterShard`] — a local, unsynchronized cell merged into
//! the global `parkit_tasks_completed_total` counter exactly once, when
//! the worker drains. Spans opened inside tasks land on the worker's
//! thread-local span stack and fold into the global span-tree aggregate
//! as usual.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Session-wide default worker count override (0 = unset). Set once by
/// the CLI's `--jobs` flag; read by [`default_jobs`].
static DEFAULT_JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Override the session default worker count (the CLI's `--jobs N`).
///
/// # Panics
/// Panics if `jobs` is zero.
pub fn set_default_jobs(jobs: usize) {
    assert!(jobs >= 1, "a pool needs at least one worker");
    DEFAULT_JOBS_OVERRIDE.store(jobs, Ordering::Relaxed);
}

/// The session default worker count, resolved in precedence order:
/// [`set_default_jobs`] (the `--jobs` flag) > the `NETSAMPLE_JOBS`
/// environment variable > [`std::thread::available_parallelism`].
#[must_use]
pub fn default_jobs() -> usize {
    let explicit = DEFAULT_JOBS_OVERRIDE.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    if let Ok(v) = std::env::var("NETSAMPLE_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// One or more tasks panicked during a [`Pool::run`].
///
/// The pool still ran every task (nothing is lost to a neighbor's
/// panic); for determinism the error reports the **lowest** panicked
/// task index regardless of which panic happened first on the clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolError {
    /// Total tasks submitted to the run.
    pub tasks: usize,
    /// How many of them panicked.
    pub panicked: usize,
    /// The lowest panicked task index.
    pub first_task: usize,
    /// That task's panic message.
    pub first_message: String,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} of {} pool tasks panicked; first: task {}: {}",
            self.panicked, self.tasks, self.first_task, self.first_message
        )
    }
}

impl std::error::Error for PoolError {}

/// A fixed-width worker pool. Cheap to construct; threads are scoped to
/// each [`Pool::run`] call, so a `Pool` holds no OS resources between
/// runs.
#[derive(Debug, Clone)]
pub struct Pool {
    jobs: usize,
}

impl Pool {
    /// A pool with exactly `jobs` workers.
    ///
    /// # Panics
    /// Panics if `jobs` is zero.
    #[must_use]
    pub fn new(jobs: usize) -> Pool {
        assert!(jobs >= 1, "a pool needs at least one worker");
        Pool { jobs }
    }

    /// The single-worker pool: every task runs inline on the calling
    /// thread, in index order — the historical serial code path.
    #[must_use]
    pub fn serial() -> Pool {
        Pool::new(1)
    }

    /// A pool sized by [`default_jobs`] (the `--jobs` flag,
    /// `NETSAMPLE_JOBS`, or the machine's available parallelism).
    #[must_use]
    pub fn with_default_jobs() -> Pool {
        Pool::new(default_jobs())
    }

    /// This pool's worker count.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// True when the pool runs tasks inline on the calling thread.
    #[must_use]
    pub fn is_serial(&self) -> bool {
        self.jobs == 1
    }

    /// Run `task(i)` for every `i in 0..tasks` and return the outputs
    /// **in index order** (slot `i` holds `task(i)`'s output).
    ///
    /// Scheduling cannot affect the result: outputs are placed by task
    /// index, so as long as `task` is a pure function of its index the
    /// returned vector is bit-identical across any worker count.
    ///
    /// # Errors
    /// If any task panics, every other task still runs and the call
    /// returns a single [`PoolError`] naming the lowest panicked index.
    pub fn run<T, F>(&self, tasks: usize, task: F) -> Result<Vec<T>, PoolError>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if tasks == 0 {
            return Ok(Vec::new());
        }
        if obskit::recording_enabled() {
            obskit::counter("parkit_runs_total").inc();
            obskit::counter("parkit_tasks_submitted_total").add(tasks as u64);
        }
        let workers = self.jobs.min(tasks);
        if workers == 1 {
            run_serial(tasks, &task)
        } else {
            run_parallel(tasks, workers, &task)
        }
    }
}

/// Inline execution in index order on the calling thread. Panic
/// semantics match the parallel path so `--jobs 1` differs only in
/// scheduling, never in behavior.
fn run_serial<T, F: Fn(usize) -> T>(tasks: usize, task: &F) -> Result<Vec<T>, PoolError> {
    let mut done: Vec<T> = Vec::with_capacity(tasks);
    let mut panics: Vec<(usize, String)> = Vec::new();
    for i in 0..tasks {
        match catch_unwind(AssertUnwindSafe(|| task(i))) {
            Ok(v) => done.push(v),
            Err(p) => panics.push((i, panic_message(&*p))),
        }
    }
    if let Some((first_task, first_message)) = panics.first().cloned() {
        return Err(PoolError {
            tasks,
            panicked: panics.len(),
            first_task,
            first_message,
        });
    }
    if obskit::recording_enabled() {
        obskit::counter("parkit_tasks_completed_total").add(done.len() as u64);
    }
    Ok(done)
}

/// The chunk of consecutive indices a worker claims per steal. Small
/// enough that the tail of the task list balances across workers, large
/// enough that the shared cursor sees one RMW per chunk, not per task.
fn chunk_size(tasks: usize, workers: usize) -> usize {
    (tasks / (workers * 8)).clamp(1, 64)
}

/// One worker's output: its (index, value) buffer plus its panic log.
type WorkerBucket<T> = (Vec<(usize, T)>, Vec<(usize, String)>);

fn run_parallel<T, F>(tasks: usize, workers: usize, task: &F) -> Result<Vec<T>, PoolError>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let cursor = AtomicUsize::new(0);
    let chunk = chunk_size(tasks, workers);
    // Each worker's bucket, in worker order. Collected after the scope
    // joins; the panic branch covers a worker dying outside
    // catch_unwind (which the task wrapper makes unreachable in
    // practice).
    let mut buckets: Vec<WorkerBucket<T>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    // Per-worker sharded counter: local increments, one
                    // atomic merge into the global total at drain (drop).
                    let completed =
                        obskit::CounterShard::new(obskit::counter("parkit_tasks_completed_total"));
                    let mut done: Vec<(usize, T)> = Vec::new();
                    let mut panics: Vec<(usize, String)> = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= tasks {
                            break;
                        }
                        for i in start..(start + chunk).min(tasks) {
                            match catch_unwind(AssertUnwindSafe(|| task(i))) {
                                Ok(v) => {
                                    done.push((i, v));
                                    completed.inc();
                                }
                                Err(p) => panics.push((i, panic_message(&*p))),
                            }
                        }
                    }
                    (done, panics)
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(bucket) => buckets.push(bucket),
                Err(p) => buckets.push((Vec::new(), vec![(usize::MAX, panic_message(&*p))])),
            }
        }
    });

    // Merge by task index — never by completion order.
    let mut slots: Vec<Option<T>> = (0..tasks).map(|_| None).collect();
    let mut panics: Vec<(usize, String)> = Vec::new();
    for (done, p) in buckets {
        panics.extend(p);
        for (i, v) in done {
            assert!(
                slots[i].replace(v).is_none(),
                "pool task {i} produced two outputs"
            );
        }
    }
    if !panics.is_empty() {
        panics.sort_by_key(|&(i, _)| i);
        let (first_task, first_message) = panics[0].clone();
        return Err(PoolError {
            tasks,
            panicked: panics.len(),
            first_task,
            first_message,
        });
    }
    Ok(slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| s.unwrap_or_else(|| panic!("pool task {i} left its slot empty")))
        .collect())
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order_any_width() {
        for jobs in [1, 2, 3, 8, 33] {
            let pool = Pool::new(jobs);
            let out = pool.run(100, |i| i * i).unwrap();
            let expected: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(out, expected, "jobs={jobs}");
        }
    }

    #[test]
    fn zero_and_one_task_edge_cases() {
        let pool = Pool::new(4);
        assert_eq!(pool.run(0, |i| i).unwrap(), Vec::<usize>::new());
        assert_eq!(pool.run(1, |i| i + 7).unwrap(), vec![7]);
    }

    #[test]
    fn fewer_tasks_than_workers() {
        let pool = Pool::new(16);
        assert_eq!(pool.run(3, |i| i).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn serial_pool_runs_inline_in_order() {
        // Observable inline execution: every task sees the caller's
        // thread id, and the order log comes back strictly ascending.
        let caller = std::thread::current().id();
        let order = std::sync::Mutex::new(Vec::new());
        let pool = Pool::serial();
        let out = pool
            .run(5, |i| {
                assert_eq!(std::thread::current().id(), caller);
                order.lock().unwrap().push(i);
                i
            })
            .unwrap();
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
        assert!(pool.is_serial());
        assert!(!Pool::new(2).is_serial());
    }

    #[test]
    fn panic_reports_lowest_index_and_runs_the_rest() {
        for jobs in [1, 4] {
            let ran = AtomicUsize::new(0);
            let e = Pool::new(jobs)
                .run(20, |i| {
                    ran.fetch_add(1, Ordering::Relaxed);
                    assert!(i != 3 && i != 11, "boom {i}");
                    i
                })
                .unwrap_err();
            assert_eq!(e.panicked, 2, "jobs={jobs}");
            assert_eq!(e.first_task, 3, "jobs={jobs}");
            assert!(e.first_message.contains("boom 3"), "{e}");
            assert_eq!(e.tasks, 20);
            // Panicking neighbors lose nothing: all 20 tasks started.
            assert_eq!(ran.load(Ordering::Relaxed), 20, "jobs={jobs}");
            let msg = e.to_string();
            assert!(msg.contains("2 of 20"), "{msg}");
        }
    }

    #[test]
    fn chunk_size_is_bounded() {
        assert_eq!(chunk_size(1, 8), 1);
        assert_eq!(chunk_size(10_000, 2), 64);
        assert_eq!(chunk_size(64, 8), 1);
        assert!(chunk_size(1_000, 4) >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = Pool::new(0);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn parallel_matches_serial_bitwise_on_floats() {
        // f64 work derived from the index only: any scheduling must
        // reproduce the serial bits exactly.
        let work = |i: usize| {
            let mut x = i as f64 + 0.5;
            for _ in 0..100 {
                x = (x * 1.000_000_1).sin() + i as f64;
            }
            x
        };
        let serial = Pool::serial().run(257, work).unwrap();
        let parallel = Pool::new(7).run(257, work).unwrap();
        for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "slot {i}");
        }
    }
}
