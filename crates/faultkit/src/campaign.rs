//! Mutation campaigns over the capture readers.
//!
//! Every case builds a corrupted image from a valid corpus, then holds
//! the readers to their contract:
//!
//! * the strict reader ([`nettrace::read_capture`]) returns a typed
//!   [`TraceError`] or a valid [`Trace`](nettrace::Trace) — never a
//!   panic;
//! * the lossy reader ([`nettrace::lossy::salvage`]) never fails at
//!   all: it reports a consistent salvage (`bytes_consumed ≤ total`,
//!   `packets_salvaged = trace.len()`, fault offset within the image);
//! * the two agree: a clean lossy parse and a strict accept imply each
//!   other, with identical packet counts;
//! * the chunked streaming reader ([`nettrace::CaptureStream`]) agrees
//!   with the batch reader on every image: same accept/reject verdict,
//!   same error class on reject, same packets on accept.
//!
//! The campaign is a pure function of the seed; its [`Digest`] folds
//! every case's classification so cross-run identity is one comparison.

use crate::corpus::{pcap_corpus, pcapng_corpus, Corpus};
use crate::mutate::Mutation;
use crate::{Digest, Finding};
use nettrace::error::TraceError;
use nettrace::trace::Trace;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Mutation-campaign knobs.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Master seed; everything below derives from it.
    pub seed: u64,
    /// Random mutation cases to run (the structured truncation sweep
    /// over every corpus boundary runs in addition to these).
    pub iterations: u32,
    /// Packets per generated corpus.
    pub corpus_packets: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 1993,
            iterations: 10_000,
            corpus_packets: 60,
        }
    }
}

/// Outcome of a mutation campaign.
#[derive(Debug)]
pub struct CampaignReport {
    /// Total cases executed (boundary sweep + random mutations).
    pub cases: u64,
    /// Classification → count, e.g. `"pcap/ok"`, `"pcapng/truncated"`.
    pub outcomes: BTreeMap<String, u64>,
    /// Contract violations; empty on a healthy tree.
    pub findings: Vec<Finding>,
    /// Order-sensitive digest over every case's classification — equal
    /// digests mean byte-identical campaigns.
    pub digest: u64,
}

/// Stable short name for a strict-read outcome.
fn classify(result: &Result<Trace, TraceError>) -> &'static str {
    match result {
        Ok(_) => "ok",
        Err(e) => classify_error(e),
    }
}

/// Stable short name for a [`TraceError`] variant.
fn classify_error(error: &TraceError) -> &'static str {
    match error {
        TraceError::BadMagic(_) => "bad_magic",
        TraceError::TruncatedRecord { .. } => "truncated",
        TraceError::OversizedRecord { .. } => "oversized",
        TraceError::Io(_) => "io",
        _ => "other",
    }
}

struct Campaign {
    outcomes: BTreeMap<String, u64>,
    findings: Vec<Finding>,
    digest: Digest,
    cases: u64,
}

impl Campaign {
    fn run_case(&mut self, source: &str, image: &[u8], what: &str) {
        let case_id = self.cases;
        self.cases += 1;

        let strict = catch_unwind(AssertUnwindSafe(|| nettrace::read_capture(image)));
        let class = match &strict {
            Ok(result) => classify(result),
            Err(panic) => {
                self.findings.push(Finding {
                    case_id,
                    source: source.to_string(),
                    detail: format!(
                        "strict reader panicked on {what}: {}",
                        crate::panic_message(&**panic)
                    ),
                });
                "panic"
            }
        };
        *self
            .outcomes
            .entry(format!("{source}/{class}"))
            .or_insert(0) += 1;
        self.digest.update(source.as_bytes());
        self.digest.update(class.as_bytes());

        let lossy = catch_unwind(AssertUnwindSafe(|| nettrace::lossy::salvage(image)));
        match lossy {
            Err(panic) => {
                self.findings.push(Finding {
                    case_id,
                    source: source.to_string(),
                    detail: format!(
                        "lossy reader panicked on {what}: {}",
                        crate::panic_message(&*panic)
                    ),
                });
            }
            Ok(report) => {
                let mut violate = |detail: String| {
                    self.findings.push(Finding {
                        case_id,
                        source: source.to_string(),
                        detail: format!("{detail} ({what})"),
                    });
                };
                if report.bytes_consumed > report.bytes_total {
                    violate(format!(
                        "lossy consumed {} of {} bytes",
                        report.bytes_consumed, report.bytes_total
                    ));
                }
                if report.packets_salvaged != report.trace.len() {
                    violate(format!(
                        "salvage count {} != trace length {}",
                        report.packets_salvaged,
                        report.trace.len()
                    ));
                }
                for fault in &report.faults {
                    if fault.offset > report.bytes_total {
                        violate(format!(
                            "fault offset {} beyond image of {} bytes",
                            fault.offset, report.bytes_total
                        ));
                    }
                }
                for pair in report.faults.windows(2) {
                    if pair[0].offset >= pair[1].offset {
                        violate(format!(
                            "fault offsets not strictly increasing: {} then {}",
                            pair[0].offset, pair[1].offset
                        ));
                    }
                }
                match (&strict, report.is_clean()) {
                    (Ok(Ok(trace)), false) => violate(format!(
                        "strict accepted {} packets but lossy reported a fault",
                        trace.len()
                    )),
                    (Ok(Ok(trace)), true) if trace.len() != report.packets_salvaged => {
                        violate(format!(
                            "strict read {} packets, lossy salvaged {}",
                            trace.len(),
                            report.packets_salvaged
                        ));
                    }
                    (Ok(Err(_)), true) => {
                        violate("strict rejected a stream lossy called clean".to_string());
                    }
                    _ => {}
                }
                self.digest.update_u64(report.packets_salvaged as u64);
                self.digest.update_u64(report.bytes_consumed);
                self.digest.update_u64(report.faults.len() as u64);
            }
        }

        // The chunked streaming reader must agree with the batch reader
        // case by case: same accept/reject verdict, and on accept the
        // same packets (the stream yields file order; the batch reader
        // sorts, so compare through `Trace::from_unordered`).
        let streamed = catch_unwind(AssertUnwindSafe(|| {
            let mut stream = nettrace::CaptureStream::new(image)?;
            let mut packets = Vec::new();
            while let Some(packet) = stream.next_packet()? {
                packets.push(packet);
            }
            Ok::<_, TraceError>(packets)
        }));
        match streamed {
            Err(panic) => {
                self.findings.push(Finding {
                    case_id,
                    source: source.to_string(),
                    detail: format!(
                        "streaming reader panicked on {what}: {}",
                        crate::panic_message(&*panic)
                    ),
                });
            }
            Ok(streamed) => {
                let mut violate = |detail: String| {
                    self.findings.push(Finding {
                        case_id,
                        source: source.to_string(),
                        detail: format!("{detail} ({what})"),
                    });
                };
                match (&strict, &streamed) {
                    (Ok(Ok(trace)), Ok(packets)) => {
                        if Trace::from_unordered(packets.clone()).packets() != trace.packets() {
                            violate(format!(
                                "stream read {} packets that differ from strict's {}",
                                packets.len(),
                                trace.len()
                            ));
                        }
                    }
                    (Ok(Ok(trace)), Err(stream_err)) => violate(format!(
                        "strict accepted {} packets but stream failed: {stream_err}",
                        trace.len()
                    )),
                    (Ok(Err(strict_err)), Ok(packets)) => violate(format!(
                        "strict rejected ({strict_err}) a stream that streamed {} packets",
                        packets.len()
                    )),
                    (Ok(Err(strict_err)), Err(stream_err)) => {
                        let stream_class = classify_error(stream_err);
                        let strict_class = classify_error(strict_err);
                        if stream_class != strict_class {
                            violate(format!(
                                "strict failed as {strict_class} but stream as {stream_class}"
                            ));
                        }
                    }
                    (Err(_), _) => {} // strict panic already recorded
                }
                self.digest
                    .update_u64(streamed.as_ref().map_or(u64::MAX, |p| p.len() as u64));
            }
        }
    }
}

/// Run the full campaign: a truncation sweep at (and adjacent to) every
/// structure boundary of both corpora, then `iterations` random
/// mutation cases split across them.
#[must_use]
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let _span = obskit::span("faultkit_campaign");
    let corpora: [Corpus; 2] = [
        pcap_corpus(cfg.seed, cfg.corpus_packets),
        pcapng_corpus(cfg.seed, cfg.corpus_packets),
    ];
    let mut campaign = Campaign {
        outcomes: BTreeMap::new(),
        findings: Vec::new(),
        digest: Digest::new(),
        cases: 0,
    };

    // Structured sweep: truncate at every boundary and one byte to
    // either side — the exact cuts a crashed capture process produces.
    for corpus in &corpora {
        for &b in &corpus.boundaries {
            for cut in [b.saturating_sub(1), b, b + 1] {
                if cut <= corpus.bytes.len() {
                    campaign.run_case(
                        corpus.name,
                        &corpus.bytes[..cut],
                        &format!("truncate->{cut}"),
                    );
                }
            }
        }
    }

    // Random mutation phase: 1–3 stacked mutations per case.
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    for i in 0..cfg.iterations {
        let corpus = &corpora[(i % 2) as usize];
        let mut image = corpus.bytes.clone();
        let count = rng.random_range(1u32..=3);
        let described: Vec<String> = (0..count)
            .map(|_| {
                let m = Mutation::draw(&mut rng, image.len());
                m.apply(&mut image);
                m.to_string()
            })
            .collect();
        campaign.run_case(corpus.name, &image, &described.join("+"));
    }

    obskit::counter("faultkit_campaign_cases_total").add(campaign.cases);
    obskit::counter("faultkit_campaign_findings_total").add(campaign.findings.len() as u64);
    CampaignReport {
        cases: campaign.cases,
        outcomes: campaign.outcomes,
        findings: campaign.findings,
        digest: campaign.digest.finish(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CampaignConfig {
        CampaignConfig {
            seed: 42,
            iterations: 400,
            corpus_packets: 20,
        }
    }

    #[test]
    fn campaign_finds_nothing_on_a_healthy_tree() {
        let report = run_campaign(&small());
        assert!(
            report.findings.is_empty(),
            "campaign found real bugs:\n{}",
            report
                .findings
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(report.cases > 400, "sweep cases missing: {}", report.cases);
    }

    #[test]
    fn campaign_is_bit_identical_across_runs() {
        let a = run_campaign(&small());
        let b = run_campaign(&small());
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.cases, b.cases);
        let c = run_campaign(&CampaignConfig {
            seed: 43,
            ..small()
        });
        assert_ne!(a.digest, c.digest, "digest must track the seed");
    }

    #[test]
    fn campaign_exercises_every_outcome_class() {
        let report = run_campaign(&small());
        let classes: Vec<&str> = report
            .outcomes
            .keys()
            .map(|k| k.split('/').nth(1).expect("source/class"))
            .collect();
        for want in ["ok", "bad_magic", "truncated"] {
            assert!(classes.contains(&want), "missing class {want}: {classes:?}");
        }
        // Both corpora ran.
        assert!(report.outcomes.keys().any(|k| k.starts_with("pcap/")));
        assert!(report.outcomes.keys().any(|k| k.starts_with("pcapng/")));
    }
}
