//! Deterministic valid-capture corpora for the mutation campaigns.
//!
//! A mutation campaign is only as good as the territory its corpus
//! covers: the generators here exercise both timestamp magics, IPv4 and
//! opaque payloads, short and long records, and (for pcapng) interface
//! options, Enhanced and Simple packet blocks, and unknown block types.
//! Every corpus is a pure function of its seed.

use nettrace::packet::Protocol;
use nettrace::time::Micros;
use nettrace::trace::Trace;
use nettrace::PacketRecord;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A valid capture image plus the offsets a structure-aware mutator
/// needs.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// Which format the bytes are (`"pcap"` or `"pcapng"`).
    pub name: &'static str,
    /// The valid capture image.
    pub bytes: Vec<u8>,
    /// Start offset of every top-level structure (global header,
    /// records, blocks), plus the total length as a final sentinel —
    /// the truncation sweep cuts at each of these.
    pub boundaries: Vec<usize>,
    /// Packets a strict read of `bytes` yields.
    pub packets: usize,
}

/// Deterministic packet stream shared by both corpus builders.
fn synth_packets(seed: u64, count: usize) -> Vec<PacketRecord> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ts = 0u64;
    (0..count)
        .map(|_| {
            ts += rng.random_range(1u64..=5_000);
            let size = *[40u16, 64, 128, 552, 576, 1500]
                .get(rng.random_range(0usize..6))
                .expect("index in range");
            let proto = match rng.random_range(0u8..3) {
                0 => Protocol::Tcp,
                1 => Protocol::Udp,
                _ => Protocol::Icmp,
            };
            PacketRecord::new(Micros(ts), size)
                .with_protocol(proto)
                .with_ports(rng.random_range(1u16..=1024), rng.random_range(1u16..=1024))
                .with_nets(rng.random_range(0u16..256), rng.random_range(0u16..256))
        })
        .collect()
}

/// A valid classic-pcap corpus: `count` packets written by the
/// workspace's own writer (28-byte synthetic IPv4 records).
#[must_use]
pub fn pcap_corpus(seed: u64, count: usize) -> Corpus {
    let trace = Trace::new(synth_packets(seed, count)).expect("synth timestamps ascend");
    let mut bytes = Vec::new();
    nettrace::pcap::write_pcap(&mut bytes, &trace).expect("in-memory write");
    // The writer emits a 24-byte global header then fixed 16+28-byte
    // records.
    let mut boundaries = vec![0usize, 24];
    for i in 1..=count {
        boundaries.push(24 + i * (16 + 28));
    }
    assert_eq!(*boundaries.last().expect("nonempty"), bytes.len());
    Corpus {
        name: "pcap",
        bytes,
        boundaries,
        packets: count,
    }
}

/// A valid pcapng corpus: SHB, two IDBs (microsecond and millisecond
/// resolution), then a mix of Enhanced, Simple, and unknown blocks.
#[must_use]
pub fn pcapng_corpus(seed: u64, count: usize) -> Corpus {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x070c_ab19);
    let packets = synth_packets(seed, count);
    let mut bytes = Vec::new();
    let mut boundaries = Vec::new();

    let block = |bytes: &mut Vec<u8>, boundaries: &mut Vec<usize>, btype: u32, body: &[u8]| {
        boundaries.push(bytes.len());
        let total = 12 + body.len() as u32;
        bytes.extend_from_slice(&btype.to_le_bytes());
        bytes.extend_from_slice(&total.to_le_bytes());
        bytes.extend_from_slice(body);
        bytes.extend_from_slice(&total.to_le_bytes());
    };

    // SHB.
    let mut shb = Vec::new();
    shb.extend_from_slice(&0x1A2B_3C4Du32.to_le_bytes()); // BOM
    shb.extend_from_slice(&1u16.to_le_bytes());
    shb.extend_from_slice(&0u16.to_le_bytes());
    shb.extend_from_slice(&(-1i64).to_le_bytes());
    block(&mut bytes, &mut boundaries, 0x0A0D_0D0A, &shb);

    // IDB 0: default microsecond resolution, no options.
    let mut idb = Vec::new();
    idb.extend_from_slice(&101u16.to_le_bytes()); // linktype raw
    idb.extend_from_slice(&0u16.to_le_bytes());
    idb.extend_from_slice(&0u32.to_le_bytes());
    block(&mut bytes, &mut boundaries, 0x0000_0001, &idb);

    // IDB 1: millisecond resolution via if_tsresol option.
    let mut idb_ms = Vec::new();
    idb_ms.extend_from_slice(&101u16.to_le_bytes());
    idb_ms.extend_from_slice(&0u16.to_le_bytes());
    idb_ms.extend_from_slice(&0u32.to_le_bytes());
    idb_ms.extend_from_slice(&9u16.to_le_bytes()); // if_tsresol
    idb_ms.extend_from_slice(&1u16.to_le_bytes());
    idb_ms.extend_from_slice(&[3, 0, 0, 0]); // 10^-3 + pad
    idb_ms.extend_from_slice(&0u32.to_le_bytes()); // endofopt
    block(&mut bytes, &mut boundaries, 0x0000_0001, &idb_ms);

    for p in &packets {
        match rng.random_range(0u8..8) {
            // Mostly EPBs on interface 0 (microseconds) with a synthetic
            // IPv4 payload the parser can fully recover.
            0..=4 => {
                let mut payload = vec![0u8; 28];
                payload[0] = 0x45;
                payload[2..4].copy_from_slice(&p.size.to_be_bytes());
                payload[9] = p.protocol.number();
                payload[12] = 10;
                payload[13..15].copy_from_slice(&p.src_net.to_be_bytes());
                payload[16] = 10;
                payload[17..19].copy_from_slice(&p.dst_net.to_be_bytes());
                payload[20..22].copy_from_slice(&p.src_port.to_be_bytes());
                payload[22..24].copy_from_slice(&p.dst_port.to_be_bytes());
                let mut epb = Vec::new();
                epb.extend_from_slice(&0u32.to_le_bytes());
                let ticks = p.timestamp.as_u64();
                epb.extend_from_slice(&((ticks >> 32) as u32).to_le_bytes());
                epb.extend_from_slice(&((ticks & 0xffff_ffff) as u32).to_le_bytes());
                epb.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                epb.extend_from_slice(&u32::from(p.size).to_le_bytes());
                epb.extend_from_slice(&payload);
                block(&mut bytes, &mut boundaries, 0x0000_0006, &epb);
            }
            // Some EPBs on the millisecond interface, opaque payload.
            5 => {
                let mut epb = Vec::new();
                epb.extend_from_slice(&1u32.to_le_bytes());
                let ticks = p.timestamp.as_u64() / 1_000; // ms ticks
                epb.extend_from_slice(&((ticks >> 32) as u32).to_le_bytes());
                epb.extend_from_slice(&((ticks & 0xffff_ffff) as u32).to_le_bytes());
                epb.extend_from_slice(&4u32.to_le_bytes());
                epb.extend_from_slice(&u32::from(p.size).to_le_bytes());
                epb.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef]);
                block(&mut bytes, &mut boundaries, 0x0000_0006, &epb);
            }
            // Simple Packet Blocks: original length only.
            6 => {
                let mut spb = Vec::new();
                spb.extend_from_slice(&u32::from(p.size).to_le_bytes());
                spb.extend_from_slice(&[0u8; 8]);
                block(&mut bytes, &mut boundaries, 0x0000_0003, &spb);
            }
            // Unknown block types the reader must skip by length.
            _ => {
                block(&mut bytes, &mut boundaries, 0x0000_0BAD, &[0u8; 16]);
            }
        }
    }
    boundaries.push(bytes.len());
    let packets = nettrace::read_capture(bytes.as_slice())
        .expect("corpus must be valid")
        .len();
    Corpus {
        name: "pcapng",
        bytes,
        boundaries,
        packets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpora_are_valid_and_deterministic() {
        for build in [pcap_corpus, pcapng_corpus] {
            let a = build(1993, 40);
            let b = build(1993, 40);
            assert_eq!(a.bytes, b.bytes, "{} corpus must be seed-stable", a.name);
            assert_eq!(a.boundaries, b.boundaries);
            let strict = nettrace::read_capture(a.bytes.as_slice()).expect("valid corpus");
            assert_eq!(strict.len(), a.packets, "{}", a.name);
            assert!(a.packets > 0);
            // Boundaries are sorted, start at 0, end at the length.
            assert_eq!(a.boundaries[0], 0);
            assert_eq!(*a.boundaries.last().expect("nonempty"), a.bytes.len());
            assert!(a.boundaries.windows(2).all(|w| w[0] < w[1]));
            let c = build(7, 40);
            assert_ne!(a.bytes, c.bytes, "{} corpus must vary with seed", a.name);
        }
    }
}
