//! # faultkit — deterministic fault injection for the ingestion path
//!
//! The workspace's statistics are only as trustworthy as the bytes they
//! ingest: a parser that panics on a truncated capture, or a sampler
//! that hangs on an adversarial timestamp, poisons every number
//! downstream. This crate hardens those boundaries with two
//! seed-deterministic harnesses:
//!
//! * **Mutation campaigns** ([`campaign`]): byte-level corruption of
//!   *valid* pcap/pcapng corpora — bit flips, truncation at every block
//!   boundary, length-field corruption, byte-order swaps — driven
//!   through the strict reader ([`nettrace::read_capture`]) and the
//!   lossy salvage path ([`nettrace::lossy::salvage`]). The contract
//!   under test: every input yields a typed [`nettrace::TraceError`] or
//!   a valid trace, never a panic, and a corrupted length field never
//!   drives an allocation past the bytes actually present.
//! * **State-machine fuzzing** ([`statefuzz`]): `offer` sequences with
//!   adversarial timestamps (zero, equal runs, `u64::MAX`,
//!   non-monotone) through all eight samplers, plus degenerate-bin
//!   inputs through [`sampling::disparity`]. The contract: no panic, no
//!   hang, determinism under `reset`, and φ finite in `[0, √2]`.
//!
//! Everything is a pure function of the configured seed: two runs with
//! the same seed produce byte-identical reports (a stable `digest`
//! makes that cheap to assert), so the CI fuzz stage is reproducible
//! and an overnight finding replays from its case number alone. No
//! wall-clock, no global state, no network — std and the in-tree
//! [`rand`] shim only.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod campaign;
pub mod corpus;
pub mod mutate;
pub mod statefuzz;

pub use campaign::{run_campaign, CampaignConfig, CampaignReport};
pub use corpus::Corpus;
pub use mutate::Mutation;
pub use statefuzz::{run_state_fuzz, StateFuzzConfig, StateFuzzReport};

/// A single contract violation uncovered by a harness: enough context
/// to replay the case from the seed alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Harness-local case number (replay: same seed, same case).
    pub case_id: u64,
    /// Which harness/corpus produced it (e.g. `"pcap"`, `"sampler"`).
    pub source: String,
    /// What was violated, with the observed evidence.
    pub detail: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{} case {}] {}", self.source, self.case_id, self.detail)
    }
}

/// Extract a printable message from a caught panic payload.
pub(crate) fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// FNV-1a accumulator: a tiny order-sensitive digest over each case's
/// classification, so "two runs saw exactly the same outcomes" is one
/// integer comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Digest(u64);

impl Digest {
    /// FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    /// Fold `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Fold a `u64` into the digest (little-endian bytes).
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// The digest value so far.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Digest {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_order_sensitive_and_stable() {
        let mut a = Digest::new();
        a.update(b"ok");
        a.update_u64(7);
        let mut b = Digest::new();
        b.update(b"ok");
        b.update_u64(7);
        assert_eq!(a.finish(), b.finish());
        let mut c = Digest::new();
        c.update_u64(7);
        c.update(b"ok");
        assert_ne!(a.finish(), c.finish());
        // Known FNV-1a vector: empty input is the offset basis.
        assert_eq!(Digest::new().finish(), 0xcbf2_9ce4_8422_2325);
    }
}
