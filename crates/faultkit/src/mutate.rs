//! Byte-level mutations over a valid capture image.
//!
//! Four operators cover the corruption classes the readers must survive:
//! single-bit flips (checksumless formats propagate them silently),
//! truncation (full disks and killed capture processes), 32-bit field
//! corruption aligned to the little-endian words length fields live in
//! (the classic unbounded-allocation vector), and byte-order swaps
//! (foreign-endian captures and shuffled writes).

use rand::rngs::StdRng;
use rand::RngExt;

/// One deterministic byte-level mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mutation {
    /// Flip bit `bit` (0–7) of the byte at `offset`.
    BitFlip {
        /// Byte offset into the image.
        offset: usize,
        /// Bit index, 0 = least significant.
        bit: u8,
    },
    /// Cut the image down to `len` bytes.
    Truncate {
        /// New length; no-op if the image is already shorter.
        len: usize,
    },
    /// Overwrite the 4 bytes at `offset` with `value` (little-endian) —
    /// aimed at length/count fields.
    Corrupt32 {
        /// Byte offset of the word.
        offset: usize,
        /// Replacement value.
        value: u32,
    },
    /// Swap the bytes at offsets `a` and `b`.
    ByteSwap {
        /// First offset.
        a: usize,
        /// Second offset.
        b: usize,
    },
}

impl Mutation {
    /// Draw one mutation applicable to an image of `len` bytes.
    /// Degenerate lengths fall back to truncation-to-zero so the
    /// campaign still exercises the empty-input path.
    #[must_use]
    pub fn draw(rng: &mut StdRng, len: usize) -> Mutation {
        if len == 0 {
            return Mutation::Truncate { len: 0 };
        }
        match rng.random_range(0u8..4) {
            0 => Mutation::BitFlip {
                offset: rng.random_range(0..len),
                bit: rng.random_range(0u8..8),
            },
            1 => Mutation::Truncate {
                len: rng.random_range(0..len),
            },
            2 => {
                let offset = rng.random_range(0..len);
                // Bias toward the magnitudes that stress length fields:
                // huge values, off-by-small values, and sign-bit flips.
                let value = match rng.random_range(0u8..4) {
                    0 => u32::MAX,
                    1 => rng.random_range(0u32..64),
                    2 => 0x8000_0000 | rng.random_range(0u32..1024),
                    _ => rng.random::<u32>(),
                };
                Mutation::Corrupt32 { offset, value }
            }
            _ => Mutation::ByteSwap {
                a: rng.random_range(0..len),
                b: rng.random_range(0..len),
            },
        }
    }

    /// Apply the mutation in place. Offsets past the current end are
    /// clamped (an earlier truncation may have shortened the image).
    pub fn apply(&self, bytes: &mut Vec<u8>) {
        match *self {
            Mutation::BitFlip { offset, bit } => {
                if let Some(b) = bytes.get_mut(offset) {
                    *b ^= 1 << bit;
                }
            }
            Mutation::Truncate { len } => bytes.truncate(len),
            Mutation::Corrupt32 { offset, value } => {
                for (i, v) in value.to_le_bytes().into_iter().enumerate() {
                    if let Some(b) = bytes.get_mut(offset + i) {
                        *b = v;
                    }
                }
            }
            Mutation::ByteSwap { a, b } => {
                if a < bytes.len() && b < bytes.len() {
                    bytes.swap(a, b);
                }
            }
        }
    }
}

impl std::fmt::Display for Mutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Mutation::BitFlip { offset, bit } => write!(f, "bitflip@{offset}.{bit}"),
            Mutation::Truncate { len } => write!(f, "truncate->{len}"),
            Mutation::Corrupt32 { offset, value } => write!(f, "corrupt32@{offset}={value:#x}"),
            Mutation::ByteSwap { a, b } => write!(f, "swap@{a},{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn mutations_stay_in_bounds_and_are_deterministic() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let mut img = vec![0u8; 200];
        for _ in 0..500 {
            let ma = Mutation::draw(&mut a, img.len());
            let mb = Mutation::draw(&mut b, img.len());
            assert_eq!(ma, mb);
            ma.apply(&mut img);
            assert!(img.len() <= 200);
        }
    }

    #[test]
    fn empty_image_only_truncates() {
        let mut rng = StdRng::seed_from_u64(6);
        let m = Mutation::draw(&mut rng, 0);
        assert_eq!(m, Mutation::Truncate { len: 0 });
        let mut img = Vec::new();
        m.apply(&mut img);
        assert!(img.is_empty());
    }

    #[test]
    fn corrupt32_clamps_at_the_end() {
        let mut img = vec![0u8; 5];
        Mutation::Corrupt32 {
            offset: 3,
            value: u32::MAX,
        }
        .apply(&mut img);
        assert_eq!(img, vec![0, 0, 0, 0xff, 0xff]);
    }
}
