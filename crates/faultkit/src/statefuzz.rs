//! State-machine fuzzing of the samplers and the disparity metric.
//!
//! Samplers are driven with `offer` sequences whose timestamps are
//! deliberately hostile — zeros, long equal runs, `u64::MAX`, huge
//! forward jumps, and non-monotone reversals — far outside the
//! "packets arrive in order" contract, because a corrupted capture can
//! hand them exactly that. The contract under fuzz: construction via
//! `try_*` never panics (degenerate parameters are typed errors),
//! offers never panic or hang, and `reset` restores bit-identical
//! behavior. [`sampling::disparity`] gets degenerate-bin histograms and
//! must keep φ finite in `[0, √2]`. The telemetry server's
//! [`obskit::parse_request_line`] gets oversized, truncated, binary,
//! and byte-mutated request lines and must reject (never panic on)
//! every malformed one, deterministically. The same contract covers the
//! two text surfaces behind that server: the `/series` query parser
//! ([`obskit::parse_series_query`]) and the alert-rule grammar
//! ([`obskit::parse_rules`]) — anything they *accept* must satisfy the
//! documented caps (step/threshold/name bounds), and everything else
//! must come back as a typed error. The flow-inversion suite gets the
//! same treatment: [`nettrace::FlowTable`] is driven with hostile flow
//! identities (id 0, `u32::MAX`, colliding ids, random SYN placement)
//! and must keep its capacity bound and packet conservation, and the
//! `statkit::inversion` estimators get degenerate sampled-size vectors
//! (empty, zeros, overflowing sizes, `k == 0`) that must come back as
//! typed [`statkit::InversionError`]s — never a panic. Finally, the
//! columnar batch path is held to the per-packet path: walking a
//! [`nettrace::PacketBatch`]'s timestamp column through `offer_ts_batch`
//! in random-sized chunks must select bit-identical indices to the
//! per-packet `offer` loop, even on hostile timestamps. The sharded
//! collector gets hostile fleets and knobs — tenant ids carrying the
//! forbidden `"{}\,` label bytes, non-ASCII and oversized ids, zero
//! interfaces, zero shards, degenerate window/queue/budget values, and
//! mid-stream reshard attempts — and must reject each with a typed
//! error while every accepted run conserves packets.

use crate::{Digest, Finding};
use collectd::{route, CollectError, Collector, CollectorConfig, LaneSource, RoutingPlan};
use netstat_sim::Fleet;
use netsynth::FlowSizeDist;
use nettrace::time::Micros;
use nettrace::{BinSpec, FlowTable, Histogram, PacketBatch, PacketRecord};
use parkit::Pool;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sampling::{
    disparity, select_indices, AdaptiveConfig, AdaptiveSampler, GeometricSkipSampler,
    ReservoirSampler, Sampler, SimpleRandomSampler, StratifiedSampler, StratifiedTimerSampler,
    SystematicSampler, SystematicTimerSampler,
};
use sampling::{MethodSpec, Target};
use statkit::inversion::{em_invert, naive_scaling, syn_flow_count, tail_rescale};
use statkit::InversionError;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use streamkit::StreamMethod;
use streamkit::{Offer, ReservoirStream, StreamSampler};

/// State-machine fuzzing knobs.
#[derive(Debug, Clone, Copy)]
pub struct StateFuzzConfig {
    /// Master seed.
    pub seed: u64,
    /// Cases to run, spread round-robin over the eight batch samplers,
    /// the streaming reservoir, the disparity metric, the telemetry
    /// server's three text surfaces (HTTP request line, `/series`
    /// query, alert-rule grammar), the flow table, the flow-size
    /// inversion estimators, the columnar packet-batch path, and the
    /// sharded collector's fleet/routing/config surfaces.
    pub cases: u32,
}

impl Default for StateFuzzConfig {
    fn default() -> Self {
        StateFuzzConfig {
            seed: 1993,
            cases: 1_000,
        }
    }
}

/// Outcome of a state-machine fuzz run.
#[derive(Debug)]
pub struct StateFuzzReport {
    /// Cases executed.
    pub cases: u64,
    /// Packets offered across all sampler cases.
    pub offers: u64,
    /// Classification → count, e.g. `"systematic/ok"`,
    /// `"random/rejected"`.
    pub outcomes: BTreeMap<String, u64>,
    /// Contract violations; empty on a healthy tree.
    pub findings: Vec<Finding>,
    /// Order-sensitive digest over every case's classification.
    pub digest: u64,
}

/// An adversarial timestamp sequence: mixes zero, equal runs, maximal,
/// stepped, arbitrary, and backwards timestamps.
fn hostile_packets(rng: &mut StdRng) -> Vec<PacketRecord> {
    let len = rng.random_range(0usize..=200);
    let mut prev = 0u64;
    (0..len)
        .map(|_| {
            let ts = match rng.random_range(0u8..8) {
                0 => 0,
                1 => prev, // equal run
                2 => u64::MAX,
                3 => prev.saturating_add(rng.random_range(1u64..=5_000)),
                4 => prev.saturating_add(rng.random_range(1u64..=u64::MAX / 2)), // huge jump
                5 => rng.random::<u64>(), // arbitrary (non-monotone)
                6 => prev.saturating_sub(rng.random_range(0u64..=1_000)), // backwards
                _ => prev.saturating_add(400), // the paper's clock tick
            };
            prev = ts;
            PacketRecord::new(Micros(ts), 40 + (ts % 1460) as u16)
        })
        .collect()
}

struct Fuzzer {
    outcomes: BTreeMap<String, u64>,
    findings: Vec<Finding>,
    digest: Digest,
    cases: u64,
    offers: u64,
}

impl Fuzzer {
    fn record(&mut self, source: &str, class: &str) {
        *self
            .outcomes
            .entry(format!("{source}/{class}"))
            .or_insert(0) += 1;
        self.digest.update(source.as_bytes());
        self.digest.update(class.as_bytes());
    }

    fn violation(&mut self, source: &str, detail: String) {
        let case_id = self.cases;
        self.findings.push(Finding {
            case_id,
            source: source.to_string(),
            detail,
        });
    }

    /// Drive one sampler (or a constructor rejection) through a hostile
    /// sequence twice, checking panic-freedom and reset-determinism.
    fn fuzz_sampler(
        &mut self,
        source: &str,
        sampler: Result<Box<dyn Sampler>, String>,
        rng: &mut StdRng,
    ) {
        let mut sampler = match sampler {
            Ok(s) => s,
            Err(_) => {
                self.record(source, "rejected");
                return;
            }
        };
        let packets = hostile_packets(rng);
        self.offers += 2 * packets.len() as u64;
        let outcome = catch_unwind(AssertUnwindSafe(move || {
            let first = select_indices(&mut *sampler, &packets);
            sampler.reset();
            let second = select_indices(&mut *sampler, &packets);
            (first, second, packets.len())
        }));
        match outcome {
            Err(panic) => {
                let msg = crate::panic_message(&*panic);
                self.violation(source, format!("sampler panicked: {msg}"));
                self.record(source, "panic");
            }
            Ok((first, second, offered)) => {
                if first != second {
                    self.violation(
                        source,
                        format!(
                            "reset is not deterministic: {} vs {} selections",
                            first.len(),
                            second.len()
                        ),
                    );
                }
                if first.len() > offered {
                    self.violation(
                        source,
                        format!("selected {} of {} offered", first.len(), offered),
                    );
                }
                self.record(source, "ok");
                self.digest.update_u64(first.len() as u64);
            }
        }
    }

    fn fuzz_reservoir(&mut self, rng: &mut StdRng) {
        let capacity = rng.random_range(1usize..=100);
        let seed = rng.random::<u64>();
        let packets = hostile_packets(rng);
        self.offers += packets.len() as u64;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut r = ReservoirSampler::new(capacity, seed);
            for p in &packets {
                r.offer(p);
            }
            (r.sample().len(), r.seen())
        }));
        match outcome {
            Err(panic) => {
                let msg = crate::panic_message(&*panic);
                self.violation("reservoir", format!("panicked: {msg}"));
                self.record("reservoir", "panic");
            }
            Ok((held, seen)) => {
                if held > capacity || held > packets.len() {
                    self.violation(
                        "reservoir",
                        format!("holds {held} with capacity {capacity}"),
                    );
                }
                if seen != packets.len() as u64 {
                    self.violation(
                        "reservoir",
                        format!("saw {seen} of {} offered", packets.len()),
                    );
                }
                self.record("reservoir", "ok");
                self.digest.update_u64(held as u64);
            }
        }
    }

    /// Drive the streaming reservoir through a hostile offer schedule:
    /// adversarial timestamps plus adversarial window-local gaps (the
    /// engine never hands it `Some(u64::MAX)`, a corrupted window
    /// boundary computation might). Contracts: never decides at arrival
    /// (`Offer::Selected` is for event-driven methods), holds exactly
    /// `min(capacity, offered)`, same seed ⇒ bit-identical flush, and a
    /// flushed reservoir starts the next window from a clean count.
    fn fuzz_reservoir_stream(&mut self, rng: &mut StdRng) {
        let capacity = rng.random_range(1usize..=100);
        let seed = rng.random::<u64>();
        let packets = hostile_packets(rng);
        let gaps: Vec<Option<u64>> = packets
            .iter()
            .map(|_| match rng.random_range(0u8..4) {
                0 => None,
                1 => Some(0),
                2 => Some(u64::MAX),
                _ => Some(rng.random_range(0u64..=10_000)),
            })
            .collect();
        self.offers += 3 * packets.len() as u64;
        let offered = packets.len();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let drive = |r: &mut ReservoirStream| {
                let mut early = 0u64;
                for (p, g) in packets.iter().zip(&gaps) {
                    if matches!(r.offer(p, *g), Offer::Selected) {
                        early += 1;
                    }
                }
                let held = r.held();
                let keys: Vec<(Micros, u16, Option<u64>)> = r
                    .flush()
                    .iter()
                    .map(|item| (item.packet.timestamp, item.packet.size, item.gap_us))
                    .collect();
                (held, keys, early)
            };
            let mut a = ReservoirStream::new(capacity, seed);
            let mut b = ReservoirStream::new(capacity, seed);
            let (held, first, early) = drive(&mut a);
            let (_, twin, _) = drive(&mut b);
            let (held_reused, _, _) = drive(&mut a);
            (held, first, twin, held_reused, early)
        }));
        match outcome {
            Err(panic) => {
                let msg = crate::panic_message(&*panic);
                self.violation("reservoir_stream", format!("panicked: {msg}"));
                self.record("reservoir_stream", "panic");
            }
            Ok((held, first, twin, held_reused, early)) => {
                let want = capacity.min(offered);
                if held != want {
                    self.violation(
                        "reservoir_stream",
                        format!("held {held} of {offered} offered with capacity {capacity}"),
                    );
                }
                if first.len() != held {
                    self.violation(
                        "reservoir_stream",
                        format!("flushed {} but held {held}", first.len()),
                    );
                }
                if first != twin {
                    self.violation(
                        "reservoir_stream",
                        format!(
                            "same seed diverged: {} vs {} items",
                            first.len(),
                            twin.len()
                        ),
                    );
                }
                if early != 0 {
                    self.violation(
                        "reservoir_stream",
                        format!("decided {early} packets at arrival; reservoirs buffer"),
                    );
                }
                if held_reused != want {
                    self.violation(
                        "reservoir_stream",
                        format!("after flush held {held_reused}, want {want}"),
                    );
                }
                self.record("reservoir_stream", "ok");
                self.digest.update_u64(first.len() as u64);
                for (ts, _, _) in &first {
                    self.digest.update_u64(ts.as_u64());
                }
            }
        }
    }

    fn fuzz_disparity(&mut self, rng: &mut StdRng) {
        // Degenerate-prone bins: 1–4 edges over a tiny value domain so
        // empty and impossible bins occur constantly.
        let edge_count = rng.random_range(1usize..=4);
        let mut edges: Vec<u64> = (0..edge_count)
            .map(|_| rng.random_range(1u64..=40))
            .collect();
        edges.sort_unstable();
        edges.dedup();
        let bins = edges.len() + 1;
        let draw_counts = |rng: &mut StdRng, bins: usize| -> Vec<u64> {
            (0..bins)
                .map(|_| match rng.random_range(0u8..4) {
                    0 => 0,
                    1 => rng.random_range(0u64..3),
                    _ => rng.random_range(0u64..2_000),
                })
                .collect()
        };
        let mut pop = draw_counts(rng, bins);
        if pop.iter().all(|&c| c == 0) {
            pop[0] = 1; // contract: population must be nonempty
        }
        let sam = draw_counts(rng, bins);
        let fill = |counts: &[u64], edges: &[u64]| {
            Histogram::from_values(
                BinSpec::Edges(edges.to_vec()),
                counts.iter().enumerate().flat_map(|(i, &c)| {
                    // A value inside bin i: below the first edge, or at
                    // the previous edge.
                    let v = if i == 0 { 0 } else { edges[i - 1] };
                    std::iter::repeat_n(v, c as usize)
                }),
            )
        };
        let sample_total: u64 = sam.iter().sum();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            disparity(&fill(&pop, &edges), &fill(&sam, &edges))
                .map(|r| (r.phi, r.chi2, r.significance))
        }));
        match outcome {
            Err(panic) => {
                let msg = crate::panic_message(&*panic);
                self.violation("disparity", format!("panicked on {pop:?}/{sam:?}: {msg}"));
                self.record("disparity", "panic");
            }
            Ok(None) => {
                if sample_total != 0 {
                    self.violation(
                        "disparity",
                        format!("returned None for nonempty sample {sam:?}"),
                    );
                }
                self.record("disparity", "empty_sample");
            }
            Ok(Some((phi, chi2, significance))) => {
                if !phi.is_finite() || !(0.0..=std::f64::consts::SQRT_2 + 1e-9).contains(&phi) {
                    self.violation(
                        "disparity",
                        format!("phi {phi} outside [0, sqrt(2)] for {pop:?}/{sam:?}"),
                    );
                }
                if !chi2.is_finite() || chi2 < 0.0 {
                    self.violation("disparity", format!("chi2 {chi2} for {pop:?}/{sam:?}"));
                }
                if !(0.0..=1.0).contains(&significance) {
                    self.violation(
                        "disparity",
                        format!("significance {significance} for {pop:?}/{sam:?}"),
                    );
                }
                self.record("disparity", "ok");
                self.digest.update_u64(phi.to_bits());
            }
        }
    }

    /// Feed the telemetry server's request-line parser one hostile line:
    /// never panics, parses deterministically, and anything it *accepts*
    /// satisfies the documented method/path/version shape.
    fn fuzz_http_request(&mut self, rng: &mut StdRng) {
        let raw = hostile_request_line(rng);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            (
                obskit::parse_request_line(&raw),
                obskit::parse_request_line(&raw),
            )
        }));
        match outcome {
            Err(panic) => {
                let msg = crate::panic_message(&*panic);
                self.violation(
                    "http_request",
                    format!("parser panicked on {} bytes: {msg}", raw.len()),
                );
                self.record("http_request", "panic");
            }
            Ok((first, second)) => {
                if first != second {
                    self.violation(
                        "http_request",
                        format!("parse is not deterministic on {} bytes", raw.len()),
                    );
                }
                match first {
                    Ok(req) => {
                        let method_ok = !req.method.is_empty()
                            && req.method.len() <= 16
                            && req.method.bytes().all(|b| b.is_ascii_uppercase());
                        let path_ok = req.path.starts_with('/')
                            && req.path.len() <= 2048
                            && req.path.bytes().all(|b| b.is_ascii_graphic());
                        let version_ok = req.version == "HTTP/1.0" || req.version == "HTTP/1.1";
                        if !(method_ok && path_ok && version_ok) {
                            self.violation(
                                "http_request",
                                format!("accepted a malformed line as {req:?}"),
                            );
                        }
                        self.record("http_request", "ok");
                        self.digest.update(req.path.as_bytes());
                    }
                    Err(e) => {
                        self.record("http_request", "rejected");
                        self.digest.update(e.to_string().as_bytes());
                    }
                }
            }
        }
    }

    /// Feed the `/series` query parser one hostile query string: never
    /// panics, parses deterministically, and anything *accepted* stays
    /// inside the documented caps.
    fn fuzz_series_query(&mut self, rng: &mut StdRng) {
        let raw = hostile_series_query(rng);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            (
                obskit::parse_series_query(&raw),
                obskit::parse_series_query(&raw),
            )
        }));
        match outcome {
            Err(panic) => {
                let msg = crate::panic_message(&*panic);
                self.violation(
                    "series_query",
                    format!("parser panicked on {} bytes: {msg}", raw.len()),
                );
                self.record("series_query", "panic");
            }
            Ok((first, second)) => {
                if first != second {
                    self.violation(
                        "series_query",
                        format!("parse is not deterministic on {} bytes", raw.len()),
                    );
                }
                match first {
                    Ok(q) => {
                        let step_ok = (1..=1_000_000).contains(&q.step);
                        let name_ok = q.name.as_deref().is_none_or(|n| {
                            !n.is_empty()
                                && n.len() <= 256
                                && n.bytes().all(|b| b.is_ascii_graphic())
                        });
                        if !(step_ok && name_ok) {
                            self.violation(
                                "series_query",
                                format!("accepted an out-of-cap query as {q:?}"),
                            );
                        }
                        self.record("series_query", "ok");
                        self.digest.update_u64(q.step as u64);
                        self.digest.update_u64(q.since_us);
                    }
                    Err(e) => {
                        self.record("series_query", "rejected");
                        self.digest.update(e.to_string().as_bytes());
                    }
                }
            }
        }
    }

    /// Feed the alert-rule grammar one hostile document: never panics,
    /// parses deterministically, and every *accepted* rule satisfies
    /// the name/threshold/hysteresis caps with set-unique names.
    fn fuzz_rule_grammar(&mut self, rng: &mut StdRng) {
        let raw = hostile_rules_doc(rng);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            (obskit::parse_rules(&raw), obskit::parse_rules(&raw))
        }));
        match outcome {
            Err(panic) => {
                let msg = crate::panic_message(&*panic);
                self.violation(
                    "rule_grammar",
                    format!("parser panicked on {} bytes: {msg}", raw.len()),
                );
                self.record("rule_grammar", "panic");
            }
            Ok((first, second)) => {
                if first != second {
                    self.violation(
                        "rule_grammar",
                        format!("parse is not deterministic on {} bytes", raw.len()),
                    );
                }
                match first {
                    Ok(rules) => {
                        for r in &rules {
                            let name_ok = !r.name.is_empty()
                                && r.name.len() <= 64
                                && r.name
                                    .bytes()
                                    .all(|b| b.is_ascii_alphanumeric() || b == b'_');
                            let caps_ok = r.threshold.is_finite()
                                && (1..=10_000).contains(&r.for_ticks)
                                && r.metric.bytes().all(|b| b.is_ascii_graphic());
                            if !(name_ok && caps_ok) {
                                self.violation(
                                    "rule_grammar",
                                    format!("accepted an out-of-cap rule as {r:?}"),
                                );
                            }
                        }
                        let mut names: Vec<&str> = rules.iter().map(|r| r.name.as_str()).collect();
                        names.sort_unstable();
                        names.dedup();
                        if names.len() != rules.len() || rules.len() > 256 {
                            self.violation(
                                "rule_grammar",
                                format!("accepted {} rules with duplicate names", rules.len()),
                            );
                        }
                        self.record("rule_grammar", "ok");
                        self.digest.update_u64(rules.len() as u64);
                        for r in &rules {
                            self.digest.update(r.name.as_bytes());
                        }
                    }
                    Err(e) => {
                        self.record("rule_grammar", "rejected");
                        self.digest.update_u64(e.line as u64);
                        self.digest.update(e.reason.as_bytes());
                    }
                }
            }
        }
    }

    /// Drive the flow table through a hostile packet stream — the
    /// adversarial timestamps of [`hostile_packets`] decorated with
    /// adversarial flow identities — streamed, batched, and as a merge
    /// of unbounded halves. Contracts: no panic, the capacity bound
    /// holds, packet conservation (live + evicted == offered), batch
    /// aggregation is bit-identical to streaming, and merging two
    /// unbounded halves equals one unbounded pass.
    fn fuzz_flow_table(&mut self, rng: &mut StdRng) {
        let cap = rng.random_range(1usize..=64);
        let packets = hostile_flow_packets(rng);
        self.offers += 4 * packets.len() as u64;
        let offered = packets.len() as u64;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut streamed = FlowTable::with_capacity(cap);
            for p in &packets {
                streamed.offer(p);
            }
            let batch = FlowTable::from_packets(cap, &packets);
            let mid = packets.len() / 2;
            let mut merged = FlowTable::unbounded();
            merged.merge(&FlowTable::from_packets(usize::MAX, &packets[..mid]));
            merged.merge(&FlowTable::from_packets(usize::MAX, &packets[mid..]));
            let whole = FlowTable::from_packets(usize::MAX, &packets);
            (streamed, batch, merged, whole)
        }));
        match outcome {
            Err(panic) => {
                let msg = crate::panic_message(&*panic);
                self.violation(
                    "flow_table",
                    format!("panicked on {offered} packets with capacity {cap}: {msg}"),
                );
                self.record("flow_table", "panic");
            }
            Ok((streamed, batch, merged, whole)) => {
                if streamed.len() > cap {
                    self.violation(
                        "flow_table",
                        format!("holds {} flows with capacity {cap}", streamed.len()),
                    );
                }
                if streamed.offered() != offered
                    || streamed.live_packets() + streamed.evicted_packets() != offered
                {
                    self.violation(
                        "flow_table",
                        format!(
                            "lost packets: {} live + {} evicted of {offered} offered",
                            streamed.live_packets(),
                            streamed.evicted_packets()
                        ),
                    );
                }
                if streamed.sizes() != batch.sizes()
                    || streamed.evicted_flows() != batch.evicted_flows()
                    || streamed.syn_flows() != batch.syn_flows()
                {
                    self.violation(
                        "flow_table",
                        format!(
                            "batch and stream diverged: {} vs {} flows",
                            batch.len(),
                            streamed.len()
                        ),
                    );
                }
                let snapshot = |t: &FlowTable| t.flows().map(|(k, r)| (*k, *r)).collect::<Vec<_>>();
                if snapshot(&merged) != snapshot(&whole) || merged.offered() != whole.offered() {
                    self.violation(
                        "flow_table",
                        format!(
                            "merge of halves diverged from one pass: {} vs {} flows",
                            merged.len(),
                            whole.len()
                        ),
                    );
                }
                self.record("flow_table", "ok");
                self.digest.update_u64(streamed.len() as u64);
                self.digest.update_u64(streamed.evicted_packets());
                self.digest.update_u64(whole.syn_flows());
            }
        }
    }

    /// Feed the flow-size inversion estimators one hostile input:
    /// degenerate sampled-size vectors (empty, zero sizes, sizes whose
    /// rescaling overflows `u64`) under degenerate intervals (`k == 0`,
    /// `u64::MAX`). Contracts: typed errors — never a panic — with the
    /// documented error for each recognized degenerate shape, equal
    /// results on a second run, and every *accepted* estimate carries
    /// finite positive weights on strictly increasing parent sizes.
    fn fuzz_flow_inversion(&mut self, rng: &mut StdRng) {
        let sampled = hostile_sampled_sizes(rng);
        let k = hostile_interval(rng);
        let run = || {
            (
                naive_scaling(&sampled, k),
                tail_rescale(&sampled, k),
                em_invert(&sampled, k),
                syn_flow_count(sampled.len() as u64, k),
            )
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| (run(), run())));
        match outcome {
            Err(panic) => {
                let msg = crate::panic_message(&*panic);
                self.violation(
                    "flow_inversion",
                    format!(
                        "estimator panicked on {} sizes with k={k}: {msg}",
                        sampled.len()
                    ),
                );
                self.record("flow_inversion", "panic");
            }
            Ok((first, second)) => {
                if first != second {
                    self.violation(
                        "flow_inversion",
                        format!("estimators are not deterministic for k={k}"),
                    );
                }
                let (naive, tail, em, syn) = first;
                if k == 0 && naive != Err(InversionError::ZeroInterval) {
                    self.violation(
                        "flow_inversion",
                        "k=0 must map to InversionError::ZeroInterval".to_string(),
                    );
                }
                if k > 0 && sampled.is_empty() && naive != Err(InversionError::Empty) {
                    self.violation(
                        "flow_inversion",
                        "empty input must map to InversionError::Empty".to_string(),
                    );
                }
                let mut accepted = 0u32;
                for (name, est) in [("naive", &naive), ("tail", &tail), ("em", &em)] {
                    match est {
                        Ok(e) => {
                            accepted += 1;
                            let sizes_ok = e.points.windows(2).all(|w| w[0].0 < w[1].0);
                            let weights_ok = e
                                .points
                                .iter()
                                .all(|&(s, w)| s > 0 && w.is_finite() && w > 0.0);
                            let total_ok = e.total_flows.is_finite() && e.total_flows > 0.0;
                            if !(sizes_ok && weights_ok && total_ok) {
                                self.violation(
                                    "flow_inversion",
                                    format!("{name} accepted a malformed estimate for k={k}"),
                                );
                            }
                            self.digest.update_u64(e.total_flows.to_bits());
                        }
                        Err(e) => self.digest.update(e.to_string().as_bytes()),
                    }
                }
                match syn {
                    Ok(v) => {
                        if !(v.is_finite() && v >= 0.0) {
                            self.violation("flow_inversion", format!("syn count {v} for k={k}"));
                        }
                        self.digest.update_u64(v.to_bits());
                    }
                    Err(e) => self.digest.update(e.to_string().as_bytes()),
                }
                self.record(
                    "flow_inversion",
                    if accepted > 0 { "ok" } else { "rejected" },
                );
            }
        }
    }

    /// Drive one sampler through the columnar batch path: the chunked
    /// `offer_ts_batch` walk over a [`PacketBatch`] must select exactly
    /// the per-packet `offer` indices, at any chunk seam, even on
    /// hostile timestamps. This is the determinism contract the
    /// vectorized experiment hot path rests on.
    fn fuzz_packet_batch(&mut self, rng: &mut StdRng) {
        let sampler: Result<Box<dyn Sampler>, String> = match rng.random_range(0u8..6) {
            0 => SystematicSampler::try_with_offset(
                rng.random_range(0usize..=1_000),
                rng.random_range(0usize..=1_050),
            )
            .map(|s| Box::new(s) as Box<dyn Sampler>)
            .map_err(|e| e.to_string()),
            1 => StratifiedSampler::try_new(rng.random_range(0usize..=1_000), rng.random::<u64>())
                .map(|s| Box::new(s) as Box<dyn Sampler>)
                .map_err(|e| e.to_string()),
            2 => SimpleRandomSampler::try_new(
                rng.random_range(0usize..=5_000),
                rng.random_range(0usize..=5_500),
                rng.random::<u64>(),
            )
            .map(|s| Box::new(s) as Box<dyn Sampler>)
            .map_err(|e| e.to_string()),
            3 => {
                GeometricSkipSampler::try_new(rng.random_range(0usize..=1_000), rng.random::<u64>())
                    .map(|s| Box::new(s) as Box<dyn Sampler>)
                    .map_err(|e| e.to_string())
            }
            4 => SystematicTimerSampler::try_new(
                Micros(hostile_period(rng)),
                Micros(rng.random::<u64>()),
            )
            .map(|s| Box::new(s) as Box<dyn Sampler>)
            .map_err(|e| e.to_string()),
            _ => StratifiedTimerSampler::try_new(
                Micros(hostile_period(rng)),
                Micros(rng.random::<u64>()),
                rng.random::<u64>(),
            )
            .map(|s| Box::new(s) as Box<dyn Sampler>)
            .map_err(|e| e.to_string()),
        };
        let mut sampler = match sampler {
            Ok(s) => s,
            Err(_) => {
                self.record("packet_batch", "rejected");
                return;
            }
        };
        let packets = hostile_packets(rng);
        let chunk = rng.random_range(1usize..=64);
        self.offers += 2 * packets.len() as u64;
        let outcome = catch_unwind(AssertUnwindSafe(move || {
            let per_packet = select_indices(&mut *sampler, &packets);
            sampler.reset();
            let batch = PacketBatch::from_records(&packets);
            let mut batched = Vec::new();
            let mut base = 0usize;
            for ts in batch.ts.chunks(chunk) {
                sampler.offer_ts_batch(base, ts, &mut batched);
                base += ts.len();
            }
            (per_packet, batched, packets.len())
        }));
        match outcome {
            Err(panic) => {
                let msg = crate::panic_message(&*panic);
                self.violation("packet_batch", format!("batch path panicked: {msg}"));
                self.record("packet_batch", "panic");
            }
            Ok((per_packet, batched, offered)) => {
                if per_packet != batched {
                    self.violation(
                        "packet_batch",
                        format!(
                            "chunked batch diverged from per-packet: {} vs {} selections (chunk {chunk})",
                            batched.len(),
                            per_packet.len()
                        ),
                    );
                }
                if batched.iter().any(|&i| i >= offered) {
                    self.violation(
                        "packet_batch",
                        format!("batch selected an index past {offered} offered"),
                    );
                }
                self.record("packet_batch", "ok");
                self.digest.update_u64(batched.len() as u64);
            }
        }
    }

    /// Drive the sharded collector through one hostile configuration:
    /// tenant ids with quotes, braces, commas and backslashes, non-ASCII
    /// and oversized ids, empties and duplicates; zero-interface fleets;
    /// zero-shard routing; degenerate window/queue/budget knobs; and a
    /// mid-stream reshard. Contracts: every degenerate is a typed error
    /// — never a panic — a reshard after ingest is a typed
    /// [`CollectError::ShardMismatch`], and every accepted run conserves
    /// packets (`ingested == considered + shed`) with per-shard flows
    /// bounded by lanes × budget.
    fn fuzz_collector(&mut self, rng: &mut StdRng) {
        let tenants = hostile_tenants(rng);
        let interfaces = rng.random_range(0u32..=3);
        let shards = rng.random_range(0u32..=4);
        let windows = rng.random_range(0u64..=2);
        let window_packets = rng.random_range(0u64..=48);
        let lane_queue = rng.random_range(0u64..=48);
        let lane_flow_budget = rng.random_range(0usize..=12);
        let seed = rng.random::<u64>();
        let reshard_to = rng.random_range(0u32..=4);
        let interval = rng.random_range(1usize..=8);
        self.offers += windows * window_packets;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut problems: Vec<String> = Vec::new();
            // Stateless routing must reject zero shards, typed.
            if route(rng_free_tenant(seed), 0, 0).is_ok() {
                problems.push("route accepted zero shards".to_string());
            }
            let fleet = match Fleet::new(tenants.clone(), interfaces) {
                Err(_) => return (problems, "rejected", None),
                Ok(f) => f,
            };
            if shards > 0 && RoutingPlan::new(&fleet, shards).is_err() {
                problems.push(format!("plan rejected {shards} shards for a valid fleet"));
            }
            let cfg = CollectorConfig {
                fleet,
                shards,
                method: StreamMethod::Spec(MethodSpec::Systematic { interval }),
                target: Target::PacketSize,
                windows,
                window_packets,
                lane_queue,
                lane_flow_budget,
                seed,
                source: LaneSource::Synth {
                    flows_per_window: 4,
                    size_dist: FlowSizeDist::Geometric { p: 0.2 },
                    mean_gap_us: 10,
                },
            };
            let degenerate = shards == 0
                || windows == 0
                || window_packets < 4 // fewer packets than the 4 flows per window
                || lane_queue == 0
                || lane_flow_budget == 0;
            let mut collector = match Collector::new(cfg) {
                Err(CollectError::NoShards | CollectError::BadConfig(_)) if degenerate => {
                    return (problems, "rejected", None);
                }
                Err(e) => {
                    problems.push(format!("unexpected rejection: {e}"));
                    return (problems, "rejected", None);
                }
                Ok(_) if degenerate => {
                    problems.push("accepted a degenerate config".to_string());
                    return (problems, "rejected", None);
                }
                Ok(c) => c,
            };
            let pool = Pool::serial();
            let lanes = u64::from(collector.plan().lane_count());
            for _ in 0..windows {
                match collector.run_round(&pool) {
                    Ok(stats) => {
                        if stats.ingested != stats.considered + stats.shed {
                            problems.push(format!(
                                "round broke conservation: {} != {} + {}",
                                stats.ingested, stats.considered, stats.shed
                            ));
                        }
                        if stats
                            .shard_flows
                            .iter()
                            .any(|&f| f > lanes * lane_flow_budget as u64)
                        {
                            problems.push(format!(
                                "a shard holds more than {lanes} lanes × {lane_flow_budget} flows"
                            ));
                        }
                    }
                    Err(e) => problems.push(format!("round failed: {e}")),
                }
            }
            if windows > 0 {
                // Ingest has started: a reshard must be a typed mismatch
                // (or a typed NoShards for zero), never a silent re-key.
                match collector.reshard(reshard_to) {
                    Err(CollectError::ShardMismatch { expected, got })
                        if expected == shards && got == reshard_to => {}
                    Err(CollectError::NoShards) if reshard_to == 0 => {}
                    Err(e) => problems.push(format!("reshard gave the wrong error: {e}")),
                    Ok(()) => problems.push("reshard succeeded mid-stream".to_string()),
                }
            }
            match collector.finish() {
                Err(e) => {
                    problems.push(format!("finish failed: {e}"));
                    (problems, "ok", None)
                }
                Ok(out) => {
                    let s = out.summary;
                    if s.ingested != s.considered + s.shed {
                        problems.push(format!(
                            "summary broke conservation: {} != {} + {}",
                            s.ingested, s.considered, s.shed
                        ));
                    }
                    (
                        problems,
                        "ok",
                        Some((s.ingested, s.selected, s.flows_reported)),
                    )
                }
            }
        }));
        match outcome {
            Err(panic) => {
                let msg = crate::panic_message(&*panic);
                self.violation("collector", format!("panicked: {msg}"));
                self.record("collector", "panic");
            }
            Ok((problems, class, digest)) => {
                for p in problems {
                    self.violation("collector", p);
                }
                self.record("collector", class);
                if let Some((ingested, selected, flows)) = digest {
                    self.digest.update_u64(ingested);
                    self.digest.update_u64(selected);
                    self.digest.update_u64(flows);
                }
            }
        }
    }
}

/// A deterministic pseudo-tenant index for the zero-shard routing probe.
fn rng_free_tenant(seed: u64) -> u32 {
    (seed % 1_000) as u32
}

/// A hostile tenant-id list: empties, oversized ids, ids carrying the
/// forbidden `"{}\,` label bytes, non-ASCII, and valid short ids that
/// may duplicate — possibly an empty list.
fn hostile_tenants(rng: &mut StdRng) -> Vec<String> {
    let len = rng.random_range(0usize..=4);
    (0..len)
        .map(|_| match rng.random_range(0u8..9) {
            0 => String::new(),
            1 => "a".repeat(rng.random_range(60usize..=80)),
            2 => format!("t{}\"quoted", rng.random_range(0u32..4)),
            3 => format!("t{{{}}}", rng.random_range(0u32..4)),
            4 => format!("t,{}", rng.random_range(0u32..4)),
            5 => format!("t\\{}", rng.random_range(0u32..4)),
            6 => format!("t\u{e9}{}", rng.random_range(0u32..4)),
            7 => format!("t {}", rng.random_range(0u32..4)),
            _ => format!("t{}", rng.random_range(0u32..4)),
        })
        .collect()
}

/// A hostile `/series` query string: valid queries, oversized values,
/// percent-escape abuse, duplicate/unknown keys, lossy-decoded random
/// bytes, and byte-flipped valid queries.
fn hostile_series_query(rng: &mut StdRng) -> String {
    match rng.random_range(0u8..6) {
        0 => {
            let names = [
                "proc_rss_kb",
                "stream_channel_depth{stage=\"transform\"}",
                "telemetry_samples_total",
            ];
            format!(
                "name={}&since={}&step={}",
                names[rng.random_range(0usize..names.len())],
                rng.random::<u64>(),
                rng.random_range(0usize..=2_000_000)
            )
        }
        1 => {
            // Oversized: straddle the MAX_QUERY_LEN / value-length caps.
            let n = rng.random_range(200usize..=2_300);
            let mut s = String::from("name=");
            for _ in 0..n {
                s.push('a');
            }
            s
        }
        2 => {
            // Percent-escape abuse: truncated, non-hex, non-UTF-8.
            let frags = ["%", "%2", "%zz", "%ff%fe", "%20", "%00", "%252f"];
            let mut s = String::from("name=x");
            for _ in 0..rng.random_range(1usize..=4) {
                s.push_str(frags[rng.random_range(0usize..frags.len())]);
            }
            s
        }
        3 => {
            // Key abuse: duplicates, unknowns, empty pairs, missing '='.
            let pairs = [
                "name=a", "name=b", "since=1", "step=2", "depth=9", "", "step",
            ];
            let mut parts = Vec::new();
            for _ in 0..rng.random_range(1usize..=5) {
                parts.push(pairs[rng.random_range(0usize..pairs.len())]);
            }
            parts.join("&")
        }
        4 => {
            let len = rng.random_range(0usize..=64);
            let bytes: Vec<u8> = (0..len).map(|_| rng.random::<u8>()).collect();
            String::from_utf8_lossy(&bytes).into_owned()
        }
        _ => {
            // Byte-flip a valid query (staying valid UTF-8 via char map).
            let mut v: Vec<char> = "name=proc_rss_kb&since=100&step=5".chars().collect();
            for _ in 0..rng.random_range(1usize..=3) {
                let i = rng.random_range(0usize..v.len());
                v[i] = char::from(rng.random_range(0x20u8..0x7f));
            }
            v.into_iter().collect()
        }
    }
}

/// A hostile alert-rules document: valid rules, token abuse, oversized
/// names and lines, comment/blank interleaving, lossy-decoded random
/// bytes, and byte-flipped valid lines.
fn hostile_rules_doc(rng: &mut StdRng) -> String {
    match rng.random_range(0u8..6) {
        0 => {
            let funcs = ["value", "rate", "delta", "stale"];
            let ops = [">", "<", ">=", "<="];
            format!(
                "# soak gate\n\nrule r{} {}(m_total) {} {} for {}\n",
                rng.random_range(0u32..3),
                funcs[rng.random_range(0usize..funcs.len())],
                ops[rng.random_range(0usize..ops.len())],
                rng.random_range(-5_000i64..=5_000),
                rng.random_range(0u32..=11_000)
            )
        }
        1 => {
            // Token abuse: wrong keyword order, bad funcs/ops/thresholds.
            let lines = [
                "rule x value(m) >> 1",
                "rule x median(m) > 1",
                "rule x value(m) > inf",
                "rule x value(m) > nan",
                "rule x value(m) > 1 for",
                "rule x value(m) > 1 within 3",
                "alert x value(m) > 1",
                "rule x value(m > 1",
                "rule x value() > 1",
                "rule 9x value(m) > 1",
            ];
            let mut doc = String::new();
            for _ in 0..rng.random_range(1usize..=3) {
                doc.push_str(lines[rng.random_range(0usize..lines.len())]);
                doc.push('\n');
            }
            doc
        }
        2 => {
            // Oversized: name and line straddle their byte caps.
            let n = rng.random_range(50usize..=1_100);
            let mut s = String::from("rule ");
            for _ in 0..n {
                s.push('a');
            }
            s.push_str(" value(m_total) > 1\n");
            s
        }
        3 => {
            // Duplicate names across lines, straddling the set cap.
            let mut doc = String::new();
            for i in 0..rng.random_range(2usize..=6) {
                let name = if rng.random_range(0u8..2) == 0 { 0 } else { i };
                let _ = std::fmt::write(
                    &mut doc,
                    format_args!("rule dup{name} value(m_total) > {i}\n"),
                );
            }
            doc
        }
        4 => {
            let len = rng.random_range(0usize..=96);
            let bytes: Vec<u8> = (0..len).map(|_| rng.random::<u8>()).collect();
            String::from_utf8_lossy(&bytes).into_owned()
        }
        _ => {
            let mut v: Vec<char> = "rule ok value(proc_rss_kb) >= 100 for 2".chars().collect();
            for _ in 0..rng.random_range(1usize..=3) {
                let i = rng.random_range(0usize..v.len());
                v[i] = char::from(rng.random_range(0x20u8..0x7f));
            }
            let mut s: String = v.into_iter().collect();
            s.push('\n');
            s
        }
    }
}

/// A hostile HTTP request line: valid scrapes, oversized and truncated
/// lines, raw binary (usually not UTF-8), slowloris-style fragments,
/// byte-mutated valid lines, and token/terminator abuse.
fn hostile_request_line(rng: &mut StdRng) -> Vec<u8> {
    match rng.random_range(0u8..6) {
        0 => {
            let paths = ["/metrics", "/healthz", "/snapshot", "/", "/missing"];
            let path = paths[rng.random_range(0usize..paths.len())];
            format!("GET {path} HTTP/1.0\r\n").into_bytes()
        }
        1 => {
            // Oversized: straddle the MAX_REQUEST_LINE boundary.
            let n = rng.random_range(8_150usize..=9_000);
            let mut v = b"GET /".to_vec();
            v.resize(v.len() + n, b'a');
            v.extend_from_slice(b" HTTP/1.1\r\n");
            v
        }
        2 => {
            // Truncated mid-line, as a dead or slowloris peer leaves it.
            let full = b"GET /metrics HTTP/1.0\r\n";
            full[..rng.random_range(0usize..full.len())].to_vec()
        }
        3 => {
            let len = rng.random_range(0usize..=64);
            (0..len).map(|_| rng.random::<u8>()).collect()
        }
        4 => {
            // Byte-flip a valid line.
            let mut v = b"GET /metrics HTTP/1.1\r\n".to_vec();
            for _ in 0..rng.random_range(1usize..=3) {
                let i = rng.random_range(0usize..v.len());
                v[i] = rng.random::<u8>();
            }
            v
        }
        _ => {
            let methods = ["GET", "get", "POST", "G E T", ""];
            let paths = ["/metrics", "//", "metrics", "/sp ace", "/\t"];
            let versions = ["HTTP/1.0", "HTTP/2.0", "http/1.1", "HTTP/1.1 x"];
            let ends = ["\r\n", "\n", "\r", ""];
            format!(
                "{} {} {}{}",
                methods[rng.random_range(0usize..methods.len())],
                paths[rng.random_range(0usize..paths.len())],
                versions[rng.random_range(0usize..versions.len())],
                ends[rng.random_range(0usize..ends.len())]
            )
            .into_bytes()
        }
    }
}

/// Hostile timestamps from [`hostile_packets`] decorated with hostile
/// flow identities: no id at all (the 5-tuple path, with colliding
/// ports), `u32::MAX`, arbitrary ids, a tiny colliding id range, and
/// random SYN placement.
fn hostile_flow_packets(rng: &mut StdRng) -> Vec<PacketRecord> {
    hostile_packets(rng)
        .into_iter()
        .map(|p| {
            let syn = rng.random_range(0u8..4) == 0;
            match rng.random_range(0u8..4) {
                0 => p.with_ports(rng.random_range(0u16..4), rng.random_range(0u16..4)),
                1 => p.with_flow(u32::MAX, syn),
                2 => p.with_flow(rng.random::<u32>(), syn),
                _ => p.with_flow(rng.random_range(1u32..=8), syn),
            }
        })
        .collect()
}

/// A hostile sampled-flow-size vector: zeros (an upstream aggregation
/// bug), single packets, sizes whose `j·k` rescaling overflows `u64`,
/// arbitrary sizes, and realistic small sizes — possibly empty.
fn hostile_sampled_sizes(rng: &mut StdRng) -> Vec<u64> {
    let len = rng.random_range(0usize..=48);
    (0..len)
        .map(|_| match rng.random_range(0u8..6) {
            0 => 0,
            1 => 1,
            2 => u64::MAX,
            3 => u64::MAX / 2,
            4 => rng.random::<u64>(),
            _ => rng.random_range(1u64..=500),
        })
        .collect()
}

/// Sampling intervals that stress the inversion arithmetic.
fn hostile_interval(rng: &mut StdRng) -> u64 {
    match rng.random_range(0u8..5) {
        0 => 0, // rejected: not a sampling process
        1 => 1,
        2 => u64::MAX,
        3 => rng.random::<u64>(),
        _ => rng.random_range(2u64..=1_000),
    }
}

/// Timer periods that stress the schedule arithmetic.
fn hostile_period(rng: &mut StdRng) -> u64 {
    match rng.random_range(0u8..5) {
        0 => 0, // rejected by try_new
        1 => 1,
        2 => 400,
        3 => rng.random_range(1u64..=2_000_000),
        _ => u64::MAX,
    }
}

/// Run the state-machine fuzz: `cases` hostile sequences spread over
/// the eight batch samplers, the streaming reservoir, the disparity
/// metric, the telemetry server's three text surfaces (HTTP request
/// line, `/series` query, alert-rule grammar), the flow table, the
/// flow-size inversion estimators, the columnar packet-batch path
/// (chunked `offer_ts_batch` vs the per-packet loop), and the sharded
/// collector (hostile fleets, zero-shard routing, mid-stream reshards).
#[must_use]
pub fn run_state_fuzz(cfg: &StateFuzzConfig) -> StateFuzzReport {
    let _span = obskit::span("faultkit_statefuzz");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut fuzzer = Fuzzer {
        outcomes: BTreeMap::new(),
        findings: Vec::new(),
        digest: Digest::new(),
        cases: 0,
        offers: 0,
    };
    for case in 0..cfg.cases {
        fuzzer.cases += 1;
        match case % 17 {
            0 => {
                let interval = rng.random_range(0usize..=1_000);
                let offset = rng.random_range(0usize..=1_050);
                let s = SystematicSampler::try_with_offset(interval, offset)
                    .map(|s| Box::new(s) as Box<dyn Sampler>)
                    .map_err(|e| e.to_string());
                fuzzer.fuzz_sampler("systematic", s, &mut rng);
            }
            1 => {
                let bucket = rng.random_range(0usize..=1_000);
                let s = StratifiedSampler::try_new(bucket, rng.random::<u64>())
                    .map(|s| Box::new(s) as Box<dyn Sampler>)
                    .map_err(|e| e.to_string());
                fuzzer.fuzz_sampler("stratified", s, &mut rng);
            }
            2 => {
                let population = rng.random_range(0usize..=5_000);
                let sample = rng.random_range(0usize..=5_500);
                let s = SimpleRandomSampler::try_new(population, sample, rng.random::<u64>())
                    .map(|s| Box::new(s) as Box<dyn Sampler>)
                    .map_err(|e| e.to_string());
                fuzzer.fuzz_sampler("random", s, &mut rng);
            }
            3 => {
                let mean = rng.random_range(0usize..=1_000);
                let s = GeometricSkipSampler::try_new(mean, rng.random::<u64>())
                    .map(|s| Box::new(s) as Box<dyn Sampler>)
                    .map_err(|e| e.to_string());
                fuzzer.fuzz_sampler("geometric", s, &mut rng);
            }
            4 => {
                let period = hostile_period(&mut rng);
                let start = rng.random::<u64>();
                let s = SystematicTimerSampler::try_new(Micros(period), Micros(start))
                    .map(|s| Box::new(s) as Box<dyn Sampler>)
                    .map_err(|e| e.to_string());
                fuzzer.fuzz_sampler("systematic_timer", s, &mut rng);
            }
            5 => {
                let period = hostile_period(&mut rng);
                let start = rng.random::<u64>();
                let s = StratifiedTimerSampler::try_new(
                    Micros(period),
                    Micros(start),
                    rng.random::<u64>(),
                )
                .map(|s| Box::new(s) as Box<dyn Sampler>)
                .map_err(|e| e.to_string());
                fuzzer.fuzz_sampler("stratified_timer", s, &mut rng);
            }
            6 => {
                let config = AdaptiveConfig {
                    budget_per_period: rng.random_range(1u32..=100),
                    period_us: *[1u64, 1_000, 1_000_000]
                        .get(rng.random_range(0usize..3))
                        .expect("index in range"),
                    increase_factor: 2.0,
                    decrease_step: rng.random_range(1usize..=5),
                    min_interval: 1,
                    max_interval: 1 << 20,
                };
                let interval = rng.random_range(1usize..=1_000);
                let s: Result<Box<dyn Sampler>, String> =
                    Ok(Box::new(AdaptiveSampler::new(interval, config)));
                fuzzer.fuzz_sampler("adaptive", s, &mut rng);
            }
            7 => fuzzer.fuzz_reservoir(&mut rng),
            8 => fuzzer.fuzz_reservoir_stream(&mut rng),
            9 => fuzzer.fuzz_disparity(&mut rng),
            10 => fuzzer.fuzz_http_request(&mut rng),
            11 => fuzzer.fuzz_series_query(&mut rng),
            12 => fuzzer.fuzz_rule_grammar(&mut rng),
            13 => fuzzer.fuzz_flow_table(&mut rng),
            14 => fuzzer.fuzz_flow_inversion(&mut rng),
            15 => fuzzer.fuzz_packet_batch(&mut rng),
            _ => fuzzer.fuzz_collector(&mut rng),
        }
    }
    obskit::counter("faultkit_statefuzz_cases_total").add(fuzzer.cases);
    obskit::counter("faultkit_statefuzz_findings_total").add(fuzzer.findings.len() as u64);
    StateFuzzReport {
        cases: fuzzer.cases,
        offers: fuzzer.offers,
        outcomes: fuzzer.outcomes,
        findings: fuzzer.findings,
        digest: fuzzer.digest.finish(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> StateFuzzConfig {
        StateFuzzConfig {
            seed: 42,
            cases: 450,
        }
    }

    #[test]
    fn state_fuzz_finds_nothing_on_a_healthy_tree() {
        let report = run_state_fuzz(&small());
        assert!(
            report.findings.is_empty(),
            "state fuzz found real bugs:\n{}",
            report
                .findings
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert_eq!(report.cases, 450);
        assert!(report.offers > 0);
    }

    #[test]
    fn state_fuzz_is_bit_identical_across_runs() {
        let a = run_state_fuzz(&small());
        let b = run_state_fuzz(&small());
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.outcomes, b.outcomes);
        let c = run_state_fuzz(&StateFuzzConfig {
            seed: 43,
            cases: 450,
        });
        assert_ne!(a.digest, c.digest);
    }

    #[test]
    fn state_fuzz_covers_every_machine() {
        let report = run_state_fuzz(&small());
        for source in [
            "systematic",
            "stratified",
            "random",
            "geometric",
            "systematic_timer",
            "stratified_timer",
            "adaptive",
            "reservoir",
            "reservoir_stream",
            "disparity",
            "http_request",
            "series_query",
            "rule_grammar",
            "flow_table",
            "flow_inversion",
            "packet_batch",
            "collector",
        ] {
            assert!(
                report
                    .outcomes
                    .keys()
                    .any(|k| k.starts_with(&format!("{source}/"))),
                "no cases for {source}: {:?}",
                report.outcomes.keys().collect::<Vec<_>>()
            );
        }
        // Degenerate constructions are exercised, not just valid ones.
        assert!(report.outcomes.keys().any(|k| k.ends_with("/rejected")));
    }
}
