//! End-to-end tests driving the compiled `netsample` binary.

use std::process::Command;

fn netsample(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_netsample"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmp(name: &str) -> String {
    std::env::temp_dir()
        .join(format!("netsample_bin_{name}_{}.pcap", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

#[test]
fn full_pipeline_through_the_binary() {
    let pop = tmp("pop");
    let sam = tmp("sam");

    let out = netsample(&["synth", &pop, "--seconds", "15", "--seed", "11"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("wrote"));

    let out = netsample(&["analyze", &pop]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("packet size"));
    assert!(text.contains("protocol distribution"));

    let out = netsample(&[
        "sample",
        &pop,
        &sam,
        "--method",
        "stratified",
        "--interval",
        "25",
    ]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("selected"));

    let out = netsample(&["score", &pop, "--interval", "50", "--target", "ia"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("mean phi"));

    let out = netsample(&["compare", &pop, &sam]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("phi="));

    std::fs::remove_file(&pop).ok();
    std::fs::remove_file(&sam).ok();
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = netsample(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn bad_option_is_a_clean_error() {
    let out = netsample(&["synth", "/tmp/x.pcap", "--sed", "1"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("unknown option --sed"), "{err}");
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = netsample(&["analyze", "/nonexistent/trace.pcap"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot open"));
}

#[test]
fn help_succeeds() {
    let out = netsample(&["help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("sweep"));
}

#[test]
fn exit_codes_distinguish_error_classes() {
    // I/O failure (missing file): EX_IOERR.
    let out = netsample(&["analyze", "/nonexistent/trace.pcap"]);
    assert_eq!(out.status.code(), Some(74));
    // Usage failures: EX_USAGE.
    let out = netsample(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(64));
    let out = netsample(&["synth", "/tmp/x.pcap", "--sed", "1"]);
    assert_eq!(out.status.code(), Some(64));
    // Readable but malformed input: EX_DATAERR.
    let garbage = tmp("garbage");
    std::fs::write(&garbage, b"not a capture").unwrap();
    let out = netsample(&["analyze", &garbage]);
    assert_eq!(out.status.code(), Some(65));
    std::fs::remove_file(&garbage).ok();
}

/// Regression: `sample` on a valid-but-empty capture used to reach the
/// selection-rate arithmetic (0/0 → NaN percentage). It must exit 65
/// with the same typed message `flows` reports.
#[test]
fn empty_capture_is_a_clean_data_error_for_sample_and_flows() {
    let empty = tmp("empty");
    let sink = tmp("empty_out");
    let trace = nettrace::Trace::new(Vec::new()).unwrap();
    let mut buf = Vec::new();
    nettrace::pcap::write_pcap(&mut buf, &trace).unwrap();
    std::fs::write(&empty, &buf).unwrap();

    let out = netsample(&["sample", &empty, &sink, "--interval", "10"]);
    assert_eq!(out.status.code(), Some(65));
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("trace is empty"), "{err}");
    assert!(!err.contains("NaN"), "{err}");

    let out = netsample(&["flows", &empty, "--interval", "10"]);
    assert_eq!(out.status.code(), Some(65));
    assert!(String::from_utf8_lossy(&out.stderr).contains("trace is empty"));

    std::fs::remove_file(&empty).ok();
    std::fs::remove_file(&sink).ok();
}

#[test]
fn metrics_flag_dumps_registry_to_stderr() {
    let pop = tmp("metrics");
    let out = netsample(&["synth", &pop, "--seconds", "5", "--metrics"]);
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("netsynth_packets_generated_total"), "{err}");
    assert!(err.contains("netsynth_generate_duration_us"), "{err}");

    let out = netsample(&[
        "score",
        &pop,
        "--interval",
        "10",
        "--replications",
        "3",
        "--metrics",
    ]);
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("nettrace_packets_read_total"), "{err}");
    assert!(err.contains("sampling_packets_selected_total"), "{err}");
    assert!(err.contains("sampling_disparity_tests_total"), "{err}");
    assert!(err.contains("statkit_chi2_sf_duration_us"), "{err}");

    // The dump also appears when the command fails.
    let out = netsample(&["score", &pop, "--method", "magic", "--metrics"]);
    assert_eq!(out.status.code(), Some(64));
    assert!(String::from_utf8_lossy(&out.stderr).contains("nettrace_packets_read_total"));

    std::fs::remove_file(&pop).ok();
}

#[test]
fn trace_flag_writes_jsonl_events() {
    let pop = tmp("tracein");
    let sink = std::env::temp_dir()
        .join(format!("netsample_bin_trace_{}.jsonl", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let out = netsample(&["synth", &pop, "--seconds", "5"]);
    assert!(out.status.success());
    let out = netsample(&["analyze", &pop, "--trace", &sink]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let body = std::fs::read_to_string(&sink).unwrap();
    assert!(!body.trim().is_empty(), "trace sink stayed empty");
    for line in body.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}') && line.contains("\"kind\""),
            "not a JSONL event: {line}"
        );
    }
    std::fs::remove_file(&pop).ok();
    std::fs::remove_file(&sink).ok();
}

#[test]
fn trace_is_flushed_even_when_the_command_fails() {
    let sink = std::env::temp_dir()
        .join(format!(
            "netsample_bin_failtrace_{}.jsonl",
            std::process::id()
        ))
        .to_string_lossy()
        .into_owned();
    // A data-class failure deep in the run: the pcap is unreadable.
    let garbage = tmp("failtrace");
    std::fs::write(&garbage, b"definitely not a capture").unwrap();
    let out = netsample(&["analyze", &garbage, "--trace", &sink]);
    assert_eq!(out.status.code(), Some(65));
    let body = std::fs::read_to_string(&sink).unwrap();
    assert!(
        !body.trim().is_empty(),
        "failed run wrote no trace events at all"
    );
    // Every line the failing run wrote is complete JSON.
    for line in body.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}') && line.contains("\"kind\""),
            "torn trace line from failing run: {line}"
        );
    }
    std::fs::remove_file(&garbage).ok();
    std::fs::remove_file(&sink).ok();
}

fn perf_tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("netsample_bin_perf_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn perf_record_report_and_profile_out_work_end_to_end() {
    let dir = perf_tmpdir("record");
    let dir_s = dir.to_str().unwrap().to_string();
    let folded = dir.join("profile.folded");
    let out = netsample(&[
        "perf",
        "record",
        "--dir",
        &dir_s,
        "--packets",
        "2000",
        "--seed",
        "7",
        "--profile-out",
        folded.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("BENCH_1.json"), "{text}");
    assert!(text.contains("cell/systematic"), "{text}");

    // The BENCH file is valid versioned JSON with the documented keys.
    let body = std::fs::read_to_string(dir.join("BENCH_1.json")).unwrap();
    for key in [
        "schema_version",
        "bench_version",
        "experiments",
        "samplers",
        "spans",
    ] {
        assert!(body.contains(key), "BENCH_1.json missing {key}: {body}");
    }

    // The folded profile nests the workload under the record root span.
    let profile = std::fs::read_to_string(&folded).unwrap();
    assert!(
        profile.lines().any(|l| l.starts_with("perf_record;")),
        "no nested spans in profile: {profile}"
    );

    // `perf report` renders the file it just wrote.
    let out = netsample(&["perf", "report", "--dir", &dir_s]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("experiments"), "{text}");

    // A second record diffs against the first and stays within the gate
    // (same workload, same machine).
    let out = netsample(&[
        "perf",
        "record",
        "--dir",
        &dir_s,
        "--packets",
        "2000",
        "--seed",
        "7",
        "--threshold",
        "400",
    ]);
    assert!(
        out.status.success(),
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("BENCH_2.json"), "{text}");
    assert!(text.contains("perf diff: BENCH_1 -> BENCH_2"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn perf_diff_gate_fails_on_regression_and_env_bypasses_it() {
    let dir = perf_tmpdir("gatebin");
    let fast = r#"{
  "schema_version": 1, "bench_version": 1,
  "run": {"ts_us": 1, "source": "test", "seed": 7, "packets": 2000},
  "experiments": [{"name": "cell/systematic", "wall_us": 200000}],
  "samplers": [], "timings": [], "benches": [], "spans": []
}"#;
    let slow = fast
        .replace("200000", "900000")
        .replace("\"bench_version\": 1", "\"bench_version\": 2");
    let old = dir.join("BENCH_1.json");
    let new = dir.join("BENCH_2.json");
    std::fs::write(&old, fast).unwrap();
    std::fs::write(&new, slow).unwrap();

    let out = netsample(&["perf", "diff", old.to_str().unwrap(), new.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("REGRESSED"), "{err}");
    assert!(err.contains("regression gate failed"), "{err}");

    // PERF_ALLOW_REGRESSION=1 downgrades the gate to a report.
    let out = Command::new(env!("CARGO_BIN_EXE_netsample"))
        .args(["perf", "diff", old.to_str().unwrap(), new.to_str().unwrap()])
        .env("PERF_ALLOW_REGRESSION", "1")
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("REGRESSED"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn degenerate_interval_exits_64_through_the_binary() {
    let pop = tmp("zero_k");
    let out = netsample(&["synth", &pop, "--seconds", "5"]);
    assert!(out.status.success());
    // Before the try_* constructors this panicked (exit 101); now it is
    // a classified usage error.
    let out = netsample(&["sample", &pop, &tmp("zero_k_out"), "--interval", "0"]);
    assert_eq!(out.status.code(), Some(64));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--interval"));
    std::fs::remove_file(&pop).ok();
}

#[test]
fn lossy_analyze_and_fuzz_through_the_binary() {
    let pop = tmp("lossy");
    let out = netsample(&["synth", &pop, "--seconds", "10"]);
    assert!(out.status.success());
    let bytes = std::fs::read(&pop).unwrap();
    let cut = tmp("lossy_cut");
    std::fs::write(&cut, &bytes[..bytes.len() - 5]).unwrap();

    // Strict analyze refuses the damaged file; --lossy salvages it.
    let out = netsample(&["analyze", &cut]);
    assert_eq!(out.status.code(), Some(65));
    let out = netsample(&["analyze", &cut, "--lossy"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("lossy ingest (pcap)"), "{text}");
    assert!(text.contains("first fault at byte"), "{text}");

    // A small seeded fuzz run succeeds and prints its digests.
    let out = netsample(&[
        "fuzz",
        "--seed",
        "7",
        "--mutations",
        "60",
        "--cases",
        "45",
        "--corpus-packets",
        "8",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("findings: 0"), "{text}");
    assert!(text.contains("digest"), "{text}");

    std::fs::remove_file(&pop).ok();
    std::fs::remove_file(&cut).ok();
}
