//! End-to-end tests driving the compiled `netsample` binary.

use std::process::Command;

fn netsample(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_netsample"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmp(name: &str) -> String {
    std::env::temp_dir()
        .join(format!("netsample_bin_{name}_{}.pcap", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

#[test]
fn full_pipeline_through_the_binary() {
    let pop = tmp("pop");
    let sam = tmp("sam");

    let out = netsample(&["synth", &pop, "--seconds", "15", "--seed", "11"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("wrote"));

    let out = netsample(&["analyze", &pop]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("packet size"));
    assert!(text.contains("protocol distribution"));

    let out = netsample(&[
        "sample",
        &pop,
        &sam,
        "--method",
        "stratified",
        "--interval",
        "25",
    ]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("selected"));

    let out = netsample(&["score", &pop, "--interval", "50", "--target", "ia"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("mean phi"));

    let out = netsample(&["compare", &pop, &sam]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("phi="));

    std::fs::remove_file(&pop).ok();
    std::fs::remove_file(&sam).ok();
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = netsample(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn bad_option_is_a_clean_error() {
    let out = netsample(&["synth", "/tmp/x.pcap", "--sed", "1"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("unknown option --sed"), "{err}");
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = netsample(&["analyze", "/nonexistent/trace.pcap"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot open"));
}

#[test]
fn help_succeeds() {
    let out = netsample(&["help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("sweep"));
}

#[test]
fn exit_codes_distinguish_error_classes() {
    // I/O failure (missing file): EX_IOERR.
    let out = netsample(&["analyze", "/nonexistent/trace.pcap"]);
    assert_eq!(out.status.code(), Some(74));
    // Usage failures: EX_USAGE.
    let out = netsample(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(64));
    let out = netsample(&["synth", "/tmp/x.pcap", "--sed", "1"]);
    assert_eq!(out.status.code(), Some(64));
    // Readable but malformed input: EX_DATAERR.
    let garbage = tmp("garbage");
    std::fs::write(&garbage, b"not a capture").unwrap();
    let out = netsample(&["analyze", &garbage]);
    assert_eq!(out.status.code(), Some(65));
    std::fs::remove_file(&garbage).ok();
}

#[test]
fn metrics_flag_dumps_registry_to_stderr() {
    let pop = tmp("metrics");
    let out = netsample(&["synth", &pop, "--seconds", "5", "--metrics"]);
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("netsynth_packets_generated_total"), "{err}");
    assert!(err.contains("netsynth_generate_duration_us"), "{err}");

    let out = netsample(&[
        "score",
        &pop,
        "--interval",
        "10",
        "--replications",
        "3",
        "--metrics",
    ]);
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("nettrace_packets_read_total"), "{err}");
    assert!(err.contains("sampling_packets_selected_total"), "{err}");
    assert!(err.contains("sampling_disparity_tests_total"), "{err}");
    assert!(err.contains("statkit_chi2_sf_duration_us"), "{err}");

    // The dump also appears when the command fails.
    let out = netsample(&["score", &pop, "--method", "magic", "--metrics"]);
    assert_eq!(out.status.code(), Some(64));
    assert!(String::from_utf8_lossy(&out.stderr).contains("nettrace_packets_read_total"));

    std::fs::remove_file(&pop).ok();
}

#[test]
fn trace_flag_writes_jsonl_events() {
    let pop = tmp("tracein");
    let sink = std::env::temp_dir()
        .join(format!("netsample_bin_trace_{}.jsonl", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let out = netsample(&["synth", &pop, "--seconds", "5"]);
    assert!(out.status.success());
    let out = netsample(&["analyze", &pop, "--trace", &sink]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let body = std::fs::read_to_string(&sink).unwrap();
    assert!(!body.trim().is_empty(), "trace sink stayed empty");
    for line in body.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}') && line.contains("\"kind\""),
            "not a JSONL event: {line}"
        );
    }
    std::fs::remove_file(&pop).ok();
    std::fs::remove_file(&sink).ok();
}
