//! End-to-end tests driving the compiled `netsample` binary.

use std::process::Command;

fn netsample(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_netsample"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmp(name: &str) -> String {
    std::env::temp_dir()
        .join(format!("netsample_bin_{name}_{}.pcap", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

#[test]
fn full_pipeline_through_the_binary() {
    let pop = tmp("pop");
    let sam = tmp("sam");

    let out = netsample(&["synth", &pop, "--seconds", "15", "--seed", "11"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("wrote"));

    let out = netsample(&["analyze", &pop]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("packet size"));
    assert!(text.contains("protocol distribution"));

    let out = netsample(&[
        "sample", &pop, &sam, "--method", "stratified", "--interval", "25",
    ]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("selected"));

    let out = netsample(&["score", &pop, "--interval", "50", "--target", "ia"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("mean phi"));

    let out = netsample(&["compare", &pop, &sam]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("phi="));

    std::fs::remove_file(&pop).ok();
    std::fs::remove_file(&sam).ok();
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = netsample(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn bad_option_is_a_clean_error() {
    let out = netsample(&["synth", "/tmp/x.pcap", "--sed", "1"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("unknown option --sed"), "{err}");
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = netsample(&["analyze", "/nonexistent/trace.pcap"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot open"));
}

#[test]
fn help_succeeds() {
    let out = netsample(&["help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("sweep"));
}
