//! `netsample serve` — the sharded multi-interface collector daemon.
//!
//! Front end for [`collectd`]: builds a tenant × interface fleet,
//! routes it onto shards, runs the windowed round loop on the parkit
//! pool, and emits per-tenant JSONL reports plus a run summary. With
//! the global `--serve` flag the run also exposes the live
//! `collectd_shard_*` gauges on /metrics; `--shard-rss-budget-kb`
//! installs per-shard alert rules over them and gates the exit code on
//! the modeled per-shard budget, `--target-flows` gates on the peak
//! aggregate live-flow count — the ROADMAP's soak contract.

use crate::args::Args;
use crate::commands::{expect_positionals, parse_stream_method, parse_target, CmdError};
use collectd::{report_jsonl, run_collector, summary_jsonl, CollectorConfig, LaneSource};
use netstat_sim::Fleet;
use netsynth::FlowSizeDist;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::time::{Duration, Instant};

/// Parse `--size-dist zipf|lognormal|geometric` into the netsynth
/// parent-mix family (fixed shape parameters; the experiment grids
/// sweep shapes, the daemon picks representative heavy tails).
fn parse_size_dist(name: &str) -> Result<FlowSizeDist, CmdError> {
    match name {
        "zipf" => Ok(FlowSizeDist::Zipf {
            max_size: 10_000,
            alpha: 1.2,
        }),
        "lognormal" => Ok(FlowSizeDist::LogNormal {
            mean: 2.0,
            std: 1.2,
        }),
        "geometric" => Ok(FlowSizeDist::Geometric { p: 0.05 }),
        other => Err(CmdError::usage(format!(
            "unknown size dist '{other}' (zipf|lognormal|geometric)"
        ))),
    }
}

/// `netsample serve [--shards S] [--tenants M] [--interfaces N] ...` —
/// run the collector daemon for a bounded number of windows (or until
/// `--duration-ms`), reporting per-tenant windows as JSONL.
pub fn serve(args: &Args) -> Result<String, CmdError> {
    expect_positionals(args, 0)?;
    let shards: u32 = args.opt_num("shards", 4u32)?;
    let tenants: u32 = args.opt_num("tenants", 2u32)?;
    let interfaces: u32 = args.opt_num("interfaces", 4u32)?;
    let windows: u64 = args.opt_num("windows", 2u64)?;
    let window_packets: u64 = args.opt_num("window-packets", 20_000u64)?;
    let lane_queue: u64 = args.opt_num("lane-queue", 0u64)?;
    let lane_queue = if lane_queue == 0 {
        window_packets
    } else {
        lane_queue
    };
    let lane_flow_budget: usize = args.opt_num("lane-flow-budget", 1 << 20)?;
    let flows_per_window: u32 = args.opt_num("flows-per-window", 2_000u32)?;
    let mean_gap_us: u64 = args.opt_num("mean-gap-us", 20u64)?;
    let seed: u64 = args.opt_num("seed", 1993u64)?;
    let target = parse_target(args.opt_or("target", "packet-size"))?;
    let method = parse_stream_method(args)?;
    let source = match args.opt_or("source", "synth") {
        "synth" => LaneSource::Synth {
            flows_per_window,
            size_dist: parse_size_dist(args.opt_or("size-dist", "zipf"))?,
            mean_gap_us,
        },
        "replay" => LaneSource::Replay {
            pace_pps: args.opt_num("pace-pps", 0u64)?,
        },
        other => {
            return Err(CmdError::usage(format!(
                "unknown source '{other}' (synth|replay)"
            )))
        }
    };
    let duration_ms: u64 = args.opt_num("duration-ms", 0u64)?;
    let deadline = if duration_ms > 0 {
        Some(Instant::now() + Duration::from_millis(duration_ms))
    } else {
        None
    };
    let target_flows: u64 = args.opt_num("target-flows", 0u64)?;
    let shard_budget_kb: u64 = args.opt_num("shard-rss-budget-kb", 0u64)?;
    let rss_budget_kb: u64 = args.opt_num("rss-budget-kb", 0u64)?;

    let fleet =
        Fleet::anonymous(tenants, interfaces).map_err(|e| CmdError::usage(e.to_string()))?;
    let cfg = CollectorConfig {
        fleet,
        shards,
        method,
        target,
        windows,
        window_packets,
        lane_queue,
        lane_flow_budget,
        seed,
        source,
    };
    cfg.validate().map_err(|e| CmdError::usage(e.to_string()))?;

    // Mirror the exit-code gates as live alert rules so a scraper (or
    // `netsample watch --fail-on`) sees a breach while it happens. The
    // per-shard rules watch the modeled per-shard flow-state gauge; the
    // process-wide rule watches real RSS against a pre-run baseline.
    obskit::series::ensure_global_series(obskit::SeriesConfig::default());
    let engine = obskit::rules::global_engine();
    if shard_budget_kb > 0 {
        for s in 0..shards {
            let name = format!("collectd_shard_rss_{s}");
            if engine.has_rule(&name) {
                continue;
            }
            let text = format!(
                "rule {name} value(collectd_shard_rss_kb{{shard=\"{s}\"}}) > {shard_budget_kb} for 2"
            );
            let parsed = obskit::parse_rules(&text)
                .map_err(|e| CmdError::data(format!("--shard-rss-budget-kb: {e}")))?;
            engine
                .add_rules(parsed)
                .map_err(|e| CmdError::data(format!("--shard-rss-budget-kb: {e}")))?;
        }
    }
    let baseline_kb = obskit::telemetry::rss_kb();
    if rss_budget_kb > 0 {
        if let Some(baseline) = baseline_kb {
            if !engine.has_rule("rss_budget") {
                let text = format!(
                    "rule rss_budget value(proc_rss_kb) > {} for 2",
                    baseline + rss_budget_kb
                );
                if let Ok(parsed) = obskit::parse_rules(&text) {
                    let _ = engine.add_rules(parsed);
                }
            }
        }
    }
    let telemetry = obskit::telemetry::ensure_global(obskit::TelemetryConfig::standard());

    let pool = parkit::Pool::with_default_jobs();
    let mut progress = String::new();
    let mut max_shard_rss_kb = 0u64;
    let out = run_collector(cfg, &pool, deadline, |r| {
        max_shard_rss_kb = max_shard_rss_kb.max(r.shard_rss_kb.iter().copied().max().unwrap_or(0));
        // Push the fresh gauges into the series rings so the alert
        // rules fire on round cadence, not only on background ticks.
        telemetry.sample_now();
        let _ = writeln!(
            progress,
            "  round {:>3}: live_flows={:<9} shed={:<9} selected={}",
            r.round, r.live_flows, r.shed, r.selected
        );
    })
    .map_err(|e| CmdError::data(e.to_string()))?;
    telemetry.sample_now();

    if let Some(jsonl) = args.opt("jsonl") {
        let f =
            File::create(jsonl).map_err(|e| CmdError::io(format!("cannot create {jsonl}: {e}")))?;
        let mut sink = BufWriter::new(f);
        for r in &out.reports {
            writeln!(sink, "{}", report_jsonl(r))
                .map_err(|e| CmdError::io(format!("cannot write {jsonl}: {e}")))?;
        }
        writeln!(sink, "{}", summary_jsonl(&out.summary))
            .map_err(|e| CmdError::io(format!("cannot write {jsonl}: {e}")))?;
        sink.flush()
            .map_err(|e| CmdError::io(format!("cannot write {jsonl}: {e}")))?;
    }

    let s = &out.summary;
    let mut text = String::new();
    writeln!(
        text,
        "serve: shards={} tenants={} interfaces={} lanes={} method={} seed={}",
        s.shards, s.tenants, s.interfaces, s.lanes, s.method, s.seed
    )?;
    text.push_str(&progress);
    writeln!(
        text,
        "windows {}/{} ({} packets/lane/window), ingested={} considered={} shed={} selected={}{}",
        s.windows_completed,
        s.windows_configured,
        s.window_packets,
        s.ingested,
        s.considered,
        s.shed,
        s.selected,
        if s.drained { " (drained)" } else { "" }
    )?;
    writeln!(
        text,
        "flows: max_live={} max_shard={} evicted={} imbalance_x1000={}",
        s.max_live_flows, s.max_shard_flows, s.evicted_flows, s.routing_imbalance_x1000
    )?;
    for r in out.reports.iter().take(6) {
        writeln!(
            text,
            "  window {:>3} {}: packets={:<8} flows={:<8} syn={:<8} phi={}",
            r.window,
            r.tenant,
            r.packets,
            r.flows,
            r.syn_flows,
            r.phi.map_or("empty".to_string(), |p| format!("{p:.5}")),
        )?;
    }
    if out.reports.len() > 6 {
        writeln!(text, "  ... {} more report(s)", out.reports.len() - 6)?;
    }

    // Gates (exit 1 regression) after the report so the evidence prints
    // even on failure paths that a CI log needs.
    if s.ingested != s.considered + s.shed {
        return Err(CmdError::data(format!(
            "conservation violated: ingested {} != considered {} + shed {}",
            s.ingested, s.considered, s.shed
        )));
    }
    if shard_budget_kb > 0 {
        if max_shard_rss_kb > shard_budget_kb {
            return Err(CmdError::regression(format!(
                "shard flow state {max_shard_rss_kb} kB exceeded the per-shard budget {shard_budget_kb} kB"
            )));
        }
        writeln!(
            text,
            "shard budget: max_shard_rss_kb={max_shard_rss_kb} budget_kb={shard_budget_kb} ok"
        )?;
    }
    if target_flows > 0 {
        if s.max_live_flows < target_flows {
            return Err(CmdError::regression(format!(
                "peak live flows {} below the --target-flows {} soak target",
                s.max_live_flows, target_flows
            )));
        }
        writeln!(
            text,
            "soak: max_live_flows={} target={target_flows} ok",
            s.max_live_flows
        )?;
    }
    if rss_budget_kb > 0 {
        let max = telemetry.max_rss_kb();
        match baseline_kb {
            Some(baseline) if max > 0 => {
                if max > baseline + rss_budget_kb {
                    return Err(CmdError::regression(format!(
                        "serve RSS {max} kB exceeded baseline {baseline} kB + budget {rss_budget_kb} kB"
                    )));
                }
                writeln!(
                    text,
                    "rss: max_rss_kb={max} baseline_rss_kb={baseline} budget_kb={rss_budget_kb} ok"
                )?;
            }
            _ => writeln!(text, "rss: unavailable, budget not asserted")?,
        }
    }
    Ok(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(argv: &[&str]) -> Args {
        Args::parse(
            argv.iter().map(|s| s.to_string()),
            &[
                "shards",
                "tenants",
                "interfaces",
                "windows",
                "window-packets",
                "lane-queue",
                "lane-flow-budget",
                "flows-per-window",
                "mean-gap-us",
                "seed",
                "target",
                "method",
                "interval",
                "capacity",
                "source",
                "size-dist",
                "pace-pps",
                "duration-ms",
                "target-flows",
                "shard-rss-budget-kb",
                "rss-budget-kb",
                "jsonl",
            ],
        )
        .unwrap()
    }

    #[test]
    fn small_serve_run_reports_conservation_and_flows() {
        let a = parse(&[
            "--shards",
            "2",
            "--tenants",
            "2",
            "--interfaces",
            "2",
            "--windows",
            "2",
            "--window-packets",
            "400",
            "--lane-queue",
            "300",
            "--flows-per-window",
            "40",
            "--interval",
            "5",
        ]);
        let out = serve(&a).unwrap();
        assert!(out.contains("serve: shards=2 tenants=2 interfaces=2 lanes=4"));
        assert!(out.contains("ingested=3200 considered=2400 shed=800"));
        assert!(out.contains("windows 2/2"));
    }

    #[test]
    fn jsonl_reports_are_deterministic_across_runs_and_shard_counts() {
        let dir = std::env::temp_dir();
        let run = |shards: &str, tag: &str| {
            let path = dir.join(format!(
                "netsample_serve_{}_{tag}.jsonl",
                std::process::id()
            ));
            let p = path.to_string_lossy().into_owned();
            let a = parse(&[
                "--shards",
                shards,
                "--windows",
                "2",
                "--window-packets",
                "300",
                "--flows-per-window",
                "30",
                "--jsonl",
                &p,
            ]);
            serve(&a).unwrap();
            let text = std::fs::read_to_string(&path).unwrap();
            std::fs::remove_file(&path).ok();
            text
        };
        let a1 = run("4", "a");
        let a2 = run("4", "b");
        assert_eq!(a1, a2, "same config twice is byte-identical");
        let single = run("1", "c");
        let strip_summary = |t: &str| {
            t.lines()
                .filter(|l| !l.contains("\"summary\":true"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(
            strip_summary(&a1),
            strip_summary(&single),
            "reports are bit-identical across shard counts"
        );
    }

    #[test]
    fn soak_target_gate_fails_with_exit_1() {
        let a = parse(&[
            "--windows",
            "1",
            "--window-packets",
            "200",
            "--flows-per-window",
            "10",
            "--target-flows",
            "1000000",
        ]);
        let e = serve(&a).unwrap_err();
        assert_eq!(e.exit_code(), 1);
        assert!(e.to_string().contains("below the --target-flows"));
    }

    #[test]
    fn bad_knobs_are_usage_errors() {
        let a = parse(&["--shards", "0"]);
        assert_eq!(serve(&a).unwrap_err().exit_code(), 64);
        let a = parse(&["--source", "quantum"]);
        assert_eq!(serve(&a).unwrap_err().exit_code(), 64);
        let a = parse(&["--size-dist", "uniformish"]);
        assert_eq!(serve(&a).unwrap_err().exit_code(), 64);
        let a = parse(&["--windows", "0"]);
        assert_eq!(serve(&a).unwrap_err().exit_code(), 64);
    }

    #[test]
    fn duration_drain_emits_partial_summary() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "netsample_serve_drain_{}.jsonl",
            std::process::id()
        ));
        let p = path.to_string_lossy().into_owned();
        let a = parse(&[
            "--windows",
            "100000",
            "--window-packets",
            "2000000",
            "--flows-per-window",
            "1000",
            "--duration-ms",
            "60",
            "--jsonl",
            &p,
        ]);
        let out = serve(&a).unwrap();
        assert!(out.contains("(drained)"));
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let summary = text
            .lines()
            .find(|l| l.contains("\"summary\":true"))
            .expect("summary line");
        assert!(summary.contains("\"drained\":true"));
    }
}
