//! `netsample` — synthesize, analyze, sample, and score packet traces.
//!
//! The command-line face of the SIGCOMM 1993 sampling-methodology
//! reproduction:
//!
//! ```text
//! netsample synth   <out.pcap>  [--profile sdsc|fixwest|flows|zipf] [--seconds N] [--seed S]
//! netsample analyze <trace.pcap> [--lossy]
//! netsample sample  <in.pcap> <out.pcap> [--method systematic|stratified|random|geometric]
//!                   [--interval k] [--seed S]
//! netsample score   <population.pcap> [--method M] [--interval k]
//!                   [--target packet-size|interarrival|protocol|port] [--replications R]
//! netsample compare <a.pcap> <b.pcap> [--target T]
//! netsample sweep   <trace.pcap> [--target T] [--max-interval K] [--replications R]
//! netsample stream  <trace.pcap|-> [--window N|DUR] [--method M] [--interval k]
//! netsample fuzz    [--seed S] [--mutations N] [--cases M]
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod args;
mod commands;
mod perf;
mod serve;
mod watch;

use args::Args;
use std::process::ExitCode;

const USAGE: &str = "netsample — packet-sampling toolkit (SIGCOMM 1993 reproduction)

USAGE:
  netsample synth   <out.pcap>  [--profile sdsc|fixwest|flows|zipf] [--seconds N] [--seed S]
  netsample analyze <trace.pcap> [--lossy]   (--lossy salvages damaged captures)
  netsample sample  <in.pcap> <out.pcap> [--method M] [--interval k] [--seed S]
  netsample score   <population.pcap> [--method M] [--interval k] [--target T] [--replications R]
  netsample compare <a.pcap> <b.pcap> [--target T]
  netsample sweep   <trace.pcap> [--target T] [--max-interval K] [--replications R]
  netsample flows   <trace.pcap> [--method systematic] [--interval k]
                    [--replications R] [--jsonl out.jsonl]
                    (recover the parent flow-size distribution from the
                    1-in-k sampled stream; scores naive / tail-rescale /
                    EM inversion plus the SYN flow count with phi against
                    the trace's true flow table; traces from
                    `synth --profile zipf` carry the flow ids this needs)
  netsample stream  <trace.pcap|-> [--window N|DUR] [--slide N|DUR] [--method M]
                    [--interval k] [--capacity c] [--target T] [--seed S]
                    [--backpressure block|drop-newest] [--jsonl out.jsonl]
                    [--reference ref.pcap] [--adaptive-shed RULE]
                    (- reads the capture from stdin; one-pass, O(window)
                    memory; DUR like 500ms, 10s, 1m; --adaptive-shed widens
                    shedding while alert RULE fires — a built-in channel
                    high-water rule is installed if RULE is not loaded)
  netsample stream  --soak N [--pace-pps R] [--rss-budget-kb KB] [stream options]
                    (no trace argument: replays N synthetic windows, paced at
                    R pkt/s, and fails with exit 1 if RSS grows past the budget)
  netsample fuzz    [--seed S] [--mutations N] [--cases M] [--corpus-packets P]
  netsample serve   [--shards S] [--tenants N] [--interfaces I] [--windows W]
                    [--window-packets P] [--lane-queue Q] [--lane-flow-budget B]
                    [--flows-per-window F] [--method M] [--interval k]
                    [--source synth|replay] [--size-dist zipf|lognormal|geometric]
                    [--seed S] [--duration-ms MS] [--target-flows N]
                    [--shard-rss-budget-kb KB] [--rss-budget-kb KB]
                    [--jsonl out.jsonl]
                    (sharded multi-tenant collector daemon: N tenants ×
                    I interfaces routed onto S shards, per-window per-tenant
                    reports with inversion estimates; output is bit-identical
                    at any shard count; --duration-ms drains gracefully with
                    a partial-window flush; exit 1 if --target-flows or an
                    RSS budget is missed, 65 if conservation breaks)
  netsample watch   <addr> [--for N] [--interval-ms MS] [--step K]
                    [--series CSV] [--fail-on RULE]
                    (poll a serving netsample's /series and /alerts,
                    render sparklines; with --fail-on, exit 1 if RULE
                    fires, 65 if RULE is unknown to the server)
  netsample perf    record|report|diff ...   (see `netsample perf`)

global options (any position):
  --serve <addr>       serve live telemetry over HTTP for the duration of the
                       run: GET /metrics (Prometheus text), /healthz
                       (liveness + ingest staleness), /snapshot (JSONL),
                       /series (ring-buffer history), /alerts (rule state);
                       <addr> like 127.0.0.1:9184, port 0 picks one (the
                       bound address is printed to stderr)
  --rules <path>       load alert rules (one `rule NAME FUNC(METRIC) OP
                       THRESHOLD [for TICKS]` per line) and evaluate them
                       every telemetry tick; state appears on /alerts
  --telemetry-interval-ms <ms>  background sampler cadence (default 200)
  --stale-after-ms <ms>         /healthz ingest-staleness threshold
                                (default 5000)
  --jobs <n>           worker-pool width for experiment grids (default:
                       available parallelism; NETSAMPLE_JOBS=<n> does
                       the same; 1 forces the serial path — results are
                       bit-identical at any width)
  --metrics            dump the metrics registry to stderr at exit
  --trace <path>       write structured JSONL trace events to <path>
                       (NETSAMPLE_TRACE=<path> does the same)
  --profile-out <path> write the run's span tree as collapsed stacks
                       (flamegraph/'inferno' input) to <path> at exit

methods: systematic | stratified | random | geometric (stream adds: reservoir)
targets: packet-size | interarrival | protocol | port

exit codes: 0 ok, 1 failed gate (perf regression, fuzz finding),
            64 usage error, 65 bad data, 74 I/O error
";

/// The global flags every subcommand accepts without listing them.
#[derive(Debug, Default, PartialEq)]
struct GlobalFlags {
    metrics: bool,
    trace_path: Option<String>,
    profile_out: Option<String>,
    jobs: Option<usize>,
    serve: Option<String>,
    rules_path: Option<String>,
    telemetry_interval_ms: Option<u64>,
    stale_after_ms: Option<u64>,
}

/// Pull `--metrics`, `--jobs <n>`/`--jobs=<n>`,
/// `--trace <path>`/`--trace=<path>`,
/// `--profile-out <path>`/`--profile-out=<path>`,
/// `--serve <addr>`/`--serve=<addr>`, `--rules <path>`,
/// `--telemetry-interval-ms <ms>`, and `--stale-after-ms <ms>` out of
/// the argument list (each value flag accepts both spellings).
fn extract_global_flags(argv: &mut Vec<String>) -> Result<GlobalFlags, String> {
    let mut flags = GlobalFlags::default();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--metrics" => {
                flags.metrics = true;
                argv.remove(i);
            }
            "--trace" => {
                argv.remove(i);
                if i >= argv.len() {
                    return Err("--trace needs a value".to_string());
                }
                flags.trace_path = Some(argv.remove(i));
            }
            "--profile-out" => {
                argv.remove(i);
                if i >= argv.len() {
                    return Err("--profile-out needs a value".to_string());
                }
                flags.profile_out = Some(argv.remove(i));
            }
            "--jobs" => {
                argv.remove(i);
                if i >= argv.len() {
                    return Err("--jobs needs a value".to_string());
                }
                flags.jobs = Some(parse_jobs(&argv.remove(i))?);
            }
            "--serve" => {
                argv.remove(i);
                if i >= argv.len() {
                    return Err("--serve needs a listen address like 127.0.0.1:9184".to_string());
                }
                flags.serve = Some(argv.remove(i));
            }
            "--rules" => {
                argv.remove(i);
                if i >= argv.len() {
                    return Err("--rules needs a file path".to_string());
                }
                flags.rules_path = Some(argv.remove(i));
            }
            "--telemetry-interval-ms" => {
                argv.remove(i);
                if i >= argv.len() {
                    return Err("--telemetry-interval-ms needs a value".to_string());
                }
                flags.telemetry_interval_ms =
                    Some(parse_ms(&argv.remove(i), "telemetry-interval-ms")?);
            }
            "--stale-after-ms" => {
                argv.remove(i);
                if i >= argv.len() {
                    return Err("--stale-after-ms needs a value".to_string());
                }
                flags.stale_after_ms = Some(parse_ms(&argv.remove(i), "stale-after-ms")?);
            }
            other => {
                if let Some(v) = other.strip_prefix("--serve=") {
                    flags.serve = Some(v.to_string());
                    argv.remove(i);
                } else if let Some(v) = other.strip_prefix("--rules=") {
                    flags.rules_path = Some(v.to_string());
                    argv.remove(i);
                } else if let Some(v) = other.strip_prefix("--telemetry-interval-ms=") {
                    flags.telemetry_interval_ms = Some(parse_ms(v, "telemetry-interval-ms")?);
                    argv.remove(i);
                } else if let Some(v) = other.strip_prefix("--stale-after-ms=") {
                    flags.stale_after_ms = Some(parse_ms(v, "stale-after-ms")?);
                    argv.remove(i);
                } else if let Some(v) = other.strip_prefix("--trace=") {
                    flags.trace_path = Some(v.to_string());
                    argv.remove(i);
                } else if let Some(v) = other.strip_prefix("--profile-out=") {
                    flags.profile_out = Some(v.to_string());
                    argv.remove(i);
                } else if let Some(v) = other.strip_prefix("--jobs=") {
                    flags.jobs = Some(parse_jobs(v)?);
                    argv.remove(i);
                } else {
                    i += 1;
                }
            }
        }
    }
    Ok(flags)
}

fn parse_jobs(v: &str) -> Result<usize, String> {
    match v.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!("--jobs needs a positive integer, got '{v}'")),
    }
}

fn parse_ms(v: &str, flag: &str) -> Result<u64, String> {
    match v.parse::<u64>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!(
            "--{flag} needs a positive millisecond count, got '{v}'"
        )),
    }
}

/// Load `--rules <path>` into the global engine. Installs the series
/// store first so the rules have rings to evaluate against on the next
/// telemetry tick.
fn install_rules(path: &str) -> Result<usize, (u8, String)> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| (74, format!("cannot read rules file {path}: {e}")))?;
    let rules = obskit::parse_rules(&text).map_err(|e| (65, format!("{path}: {e}")))?;
    obskit::series::ensure_global_series(obskit::SeriesConfig::default());
    obskit::rules::global_engine()
        .add_rules(rules)
        .map_err(|e| (65, format!("{path}: {e}")))
}

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let flags = match extract_global_flags(&mut argv) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("netsample: {e}");
            return ExitCode::from(64);
        }
    };
    if let Some(jobs) = flags.jobs {
        parkit::set_default_jobs(jobs);
    }
    if let Some(path) = &flags.trace_path {
        if let Err(e) = obskit::trace::enable_path(path) {
            eprintln!("netsample: cannot open trace sink {path}: {e}");
            return ExitCode::from(74);
        }
    } else {
        obskit::trace::init_from_env();
    }
    // Flush buffered trace events even if a command panics mid-run: the
    // partial trace up to the failure is the debugging artifact.
    let _flush = obskit::trace::flush_on_drop();

    // Cadence must be set before any ensure_global: a sampler already
    // running keeps its original interval.
    if let Some(ms) = flags.telemetry_interval_ms {
        obskit::telemetry::set_default_interval_ms(ms);
    }
    if let Some(path) = &flags.rules_path {
        match install_rules(path) {
            Ok(n) => {
                eprintln!("netsample: loaded {n} alert rule(s) from {path}");
                // Rules only evaluate on telemetry ticks; make sure the
                // sampler runs even without --serve.
                obskit::telemetry::ensure_global(obskit::TelemetryConfig::standard());
            }
            Err((code, msg)) => {
                eprintln!("netsample: {msg}");
                return ExitCode::from(code);
            }
        }
    }

    let server = match &flags.serve {
        Some(addr) => {
            // The series store must exist before the sampler's first
            // tick for /series to carry history from t=0.
            obskit::series::ensure_global_series(obskit::SeriesConfig::default());
            // The background sampler keeps proc_rss_kb/open-fd gauges
            // fresh between scrapes even while a command is CPU-bound.
            obskit::telemetry::ensure_global(obskit::TelemetryConfig::standard());
            let mut cfg = obskit::ServeConfig {
                addr: addr.clone(),
                ..obskit::ServeConfig::default()
            };
            if let Some(ms) = flags.stale_after_ms {
                cfg.stale_after = std::time::Duration::from_millis(ms);
            }
            match obskit::serve(&cfg) {
                Ok(handle) => {
                    eprintln!("netsample: serving on {}", handle.addr());
                    Some(handle)
                }
                Err(e) => {
                    eprintln!("netsample: cannot serve on {addr}: {e}");
                    return ExitCode::from(74);
                }
            }
        }
        None => None,
    };

    let code = match argv.split_first() {
        None => {
            eprint!("{USAGE}");
            ExitCode::from(64)
        }
        Some((cmd, rest)) => match run(cmd, rest.to_vec()) {
            Ok(output) => {
                print!("{output}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("netsample {cmd}: {e}");
                ExitCode::from(e.exit_code())
            }
        },
    };

    if let Some(handle) = server {
        let addr = handle.addr();
        // Graceful: stop accepting, drain in-flight handlers, then report.
        handle.shutdown();
        let served: u64 = ["/metrics", "/healthz", "/snapshot", "/series", "/alerts"]
            .iter()
            .map(|p| obskit::counter_labeled("serve_requests_total", &[("path", p)]).get())
            .sum();
        let bad = obskit::counter("serve_bad_requests_total").get();
        eprintln!("netsample: telemetry server {addr} served {served} request(s), {bad} rejected as malformed");
    }

    // The dump runs on failures too: a crashed run's partial counters are
    // exactly what one wants when debugging it.
    if flags.metrics {
        eprint!("{}", obskit::global().render_summary());
    }
    if let Some(path) = &flags.profile_out {
        if let Err(e) = std::fs::write(path, obskit::tree::render_folded()) {
            eprintln!("netsample: cannot write profile {path}: {e}");
            return ExitCode::from(74);
        }
    }
    obskit::trace::flush();
    code
}

fn run(cmd: &str, rest: Vec<String>) -> Result<String, commands::CmdError> {
    match cmd {
        "synth" => {
            let a = Args::parse(rest, &["profile", "seconds", "seed"])?;
            commands::synth(&a)
        }
        "analyze" => {
            let a = Args::parse_with_flags(rest, &[], &["lossy"])?;
            commands::analyze(&a)
        }
        "fuzz" => {
            let a = Args::parse(rest, &["seed", "mutations", "cases", "corpus-packets"])?;
            commands::fuzz(&a)
        }
        "sample" => {
            let a = Args::parse(rest, &["method", "interval", "seed"])?;
            commands::sample(&a)
        }
        "score" => {
            let a = Args::parse(
                rest,
                &["method", "interval", "seed", "target", "replications"],
            )?;
            commands::score(&a)
        }
        "compare" => {
            let a = Args::parse(rest, &["target"])?;
            commands::compare(&a)
        }
        "sweep" => {
            let a = Args::parse(rest, &["target", "replications", "seed", "max-interval"])?;
            commands::sweep(&a)
        }
        "flows" => {
            let a = Args::parse(rest, &["method", "interval", "replications", "jsonl"])?;
            commands::flows(&a)
        }
        "stream" => {
            let a = Args::parse(
                rest,
                &[
                    "window",
                    "slide",
                    "method",
                    "interval",
                    "capacity",
                    "target",
                    "seed",
                    "replication",
                    "population",
                    "batch",
                    "queue",
                    "backpressure",
                    "jsonl",
                    "reference",
                    "soak",
                    "pace-pps",
                    "rss-budget-kb",
                    "adaptive-shed",
                ],
            )?;
            commands::stream(&a)
        }
        "serve" => {
            let a = Args::parse(
                rest,
                &[
                    "shards",
                    "tenants",
                    "interfaces",
                    "windows",
                    "window-packets",
                    "lane-queue",
                    "lane-flow-budget",
                    "flows-per-window",
                    "mean-gap-us",
                    "seed",
                    "target",
                    "method",
                    "interval",
                    "capacity",
                    "source",
                    "size-dist",
                    "pace-pps",
                    "duration-ms",
                    "target-flows",
                    "shard-rss-budget-kb",
                    "rss-budget-kb",
                    "jsonl",
                ],
            )?;
            serve::serve(&a)
        }
        "watch" => {
            let a = Args::parse(rest, &["for", "interval-ms", "fail-on", "series", "step"])?;
            watch::watch(&a)
        }
        "perf" => perf::perf(&rest),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(commands::CmdError::usage(format!(
            "unknown command '{other}'\n\n{USAGE}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_prints_usage() {
        let out = run("help", vec![]).unwrap();
        assert!(out.contains("USAGE"));
        assert!(out.contains("sweep"));
    }

    #[test]
    fn jobs_flag_is_extracted_in_both_forms() {
        let mut argv = vec!["score".into(), "--jobs".into(), "4".into(), "x.pcap".into()];
        let f = extract_global_flags(&mut argv).unwrap();
        assert_eq!(f.jobs, Some(4));
        assert_eq!(argv, vec!["score".to_string(), "x.pcap".to_string()]);
        let mut argv = vec!["--jobs=8".into()];
        assert_eq!(extract_global_flags(&mut argv).unwrap().jobs, Some(8));
        assert!(argv.is_empty());
        for bad in ["0", "-2", "many"] {
            let mut argv = vec!["--jobs".into(), bad.into()];
            assert!(extract_global_flags(&mut argv).is_err(), "{bad}");
        }
        let mut argv = vec!["--jobs".into()];
        assert!(extract_global_flags(&mut argv).is_err());
    }

    #[test]
    fn serve_flag_is_extracted_in_both_forms() {
        let mut argv = vec![
            "stream".into(),
            "--serve".into(),
            "127.0.0.1:0".into(),
            "x.pcap".into(),
        ];
        let f = extract_global_flags(&mut argv).unwrap();
        assert_eq!(f.serve.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(argv, vec!["stream".to_string(), "x.pcap".to_string()]);
        let mut argv = vec!["--serve=0.0.0.0:9184".into()];
        assert_eq!(
            extract_global_flags(&mut argv).unwrap().serve.as_deref(),
            Some("0.0.0.0:9184")
        );
        assert!(argv.is_empty());
        let mut argv = vec!["--serve".into()];
        assert!(extract_global_flags(&mut argv).is_err());
    }

    #[test]
    fn telemetry_flags_are_extracted_in_both_forms() {
        let mut argv = vec![
            "stream".into(),
            "--telemetry-interval-ms".into(),
            "50".into(),
            "--stale-after-ms=2500".into(),
            "--rules".into(),
            "alerts.rules".into(),
            "x.pcap".into(),
        ];
        let f = extract_global_flags(&mut argv).unwrap();
        assert_eq!(f.telemetry_interval_ms, Some(50));
        assert_eq!(f.stale_after_ms, Some(2500));
        assert_eq!(f.rules_path.as_deref(), Some("alerts.rules"));
        assert_eq!(argv, vec!["stream".to_string(), "x.pcap".to_string()]);
        for bad in ["0", "-5", "soon"] {
            let mut argv = vec!["--telemetry-interval-ms".into(), bad.into()];
            assert!(extract_global_flags(&mut argv).is_err(), "{bad}");
            let mut argv = vec![format!("--stale-after-ms={bad}")];
            assert!(extract_global_flags(&mut argv).is_err(), "{bad}");
        }
        let mut argv = vec!["--rules".into()];
        assert!(extract_global_flags(&mut argv).is_err());
    }

    #[test]
    fn rules_install_reports_missing_file_and_bad_grammar() {
        let missing = install_rules("/nonexistent/netsample.rules").unwrap_err();
        assert_eq!(missing.0, 74);
        let bad = std::env::temp_dir().join(format!("netsample_rules_{}.bad", std::process::id()));
        std::fs::write(&bad, "rule broken nonsense\n").unwrap();
        let e = install_rules(&bad.to_string_lossy()).unwrap_err();
        assert_eq!(e.0, 65);
        assert!(e.1.contains("rule line 1"));
        std::fs::remove_file(&bad).ok();
    }

    #[test]
    fn unknown_command_errors_with_usage() {
        let e = run("frobnicate", vec![]).unwrap_err();
        assert!(e.to_string().contains("unknown command"));
        assert!(e.to_string().contains("USAGE"));
    }

    #[test]
    fn end_to_end_via_dispatcher() {
        let pop = std::env::temp_dir()
            .join(format!("netsample_main_{}.pcap", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let out = run("synth", vec![pop.clone(), "--seconds".into(), "10".into()]).unwrap();
        assert!(out.contains("wrote"));
        let out = run("analyze", vec![pop.clone()]).unwrap();
        assert!(out.contains("packets/s") || out.contains("packet size"));
        std::fs::remove_file(&pop).ok();
    }
}
