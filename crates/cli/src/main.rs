//! `netsample` — synthesize, analyze, sample, and score packet traces.
//!
//! The command-line face of the SIGCOMM 1993 sampling-methodology
//! reproduction:
//!
//! ```text
//! netsample synth   <out.pcap>  [--profile sdsc|fixwest|flows] [--seconds N] [--seed S]
//! netsample analyze <trace.pcap>
//! netsample sample  <in.pcap> <out.pcap> [--method systematic|stratified|random|geometric]
//!                   [--interval k] [--seed S]
//! netsample score   <population.pcap> [--method M] [--interval k]
//!                   [--target packet-size|interarrival|protocol|port] [--replications R]
//! netsample compare <a.pcap> <b.pcap> [--target T]
//! netsample sweep   <trace.pcap> [--target T] [--max-interval K] [--replications R]
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod args;
mod commands;

use args::Args;
use std::process::ExitCode;

const USAGE: &str = "netsample — packet-sampling toolkit (SIGCOMM 1993 reproduction)

USAGE:
  netsample synth   <out.pcap>  [--profile sdsc|fixwest|flows] [--seconds N] [--seed S]
  netsample analyze <trace.pcap>
  netsample sample  <in.pcap> <out.pcap> [--method M] [--interval k] [--seed S]
  netsample score   <population.pcap> [--method M] [--interval k] [--target T] [--replications R]
  netsample compare <a.pcap> <b.pcap> [--target T]
  netsample sweep   <trace.pcap> [--target T] [--max-interval K] [--replications R]

methods: systematic | stratified | random | geometric
targets: packet-size | interarrival | protocol | port
";

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let Some(cmd) = argv.next() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest: Vec<String> = argv.collect();
    let result = run(&cmd, rest);
    match result {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("netsample {cmd}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(cmd: &str, rest: Vec<String>) -> Result<String, commands::CmdError> {
    match cmd {
        "synth" => {
            let a = Args::parse(rest, &["profile", "seconds", "seed"])?;
            commands::synth(&a)
        }
        "analyze" => {
            let a = Args::parse(rest, &[])?;
            commands::analyze(&a)
        }
        "sample" => {
            let a = Args::parse(rest, &["method", "interval", "seed"])?;
            commands::sample(&a)
        }
        "score" => {
            let a = Args::parse(
                rest,
                &["method", "interval", "seed", "target", "replications"],
            )?;
            commands::score(&a)
        }
        "compare" => {
            let a = Args::parse(rest, &["target"])?;
            commands::compare(&a)
        }
        "sweep" => {
            let a = Args::parse(rest, &["target", "replications", "seed", "max-interval"])?;
            commands::sweep(&a)
        }
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(format!("unknown command '{other}'\n\n{USAGE}").into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_prints_usage() {
        let out = run("help", vec![]).unwrap();
        assert!(out.contains("USAGE"));
        assert!(out.contains("sweep"));
    }

    #[test]
    fn unknown_command_errors_with_usage() {
        let e = run("frobnicate", vec![]).unwrap_err();
        assert!(e.to_string().contains("unknown command"));
        assert!(e.to_string().contains("USAGE"));
    }

    #[test]
    fn end_to_end_via_dispatcher() {
        let pop = std::env::temp_dir()
            .join(format!("netsample_main_{}.pcap", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let out = run(
            "synth",
            vec![pop.clone(), "--seconds".into(), "10".into()],
        )
        .unwrap();
        assert!(out.contains("wrote"));
        let out = run("analyze", vec![pop.clone()]).unwrap();
        assert!(out.contains("packets/s") || out.contains("packet size"));
        std::fs::remove_file(&pop).ok();
    }
}
